"""Tracing subsystem: span structure, clock model, exports, zero cost."""

from __future__ import annotations

import json

import pytest

from repro.obs import EstimateRecord, Tracer, q_error
from repro.optimizers import OPTIMIZERS
from tests.conftest import build_star_session, star_query


class TestQError:
    def test_perfect_estimate(self):
        assert q_error(100.0, 100.0) == 1.0

    def test_symmetric(self):
        assert q_error(10.0, 1000.0) == q_error(1000.0, 10.0) == 100.0

    def test_both_empty_is_perfect(self):
        assert q_error(0.0, 0.0) == 1.0

    def test_one_sided_emptiness_is_unbounded(self):
        assert q_error(0.0, 5.0) == float("inf")
        assert q_error(5.0, 0.0) == float("inf")

    def test_record_property(self):
        record = EstimateRecord("final", "join", 50.0, 200.0)
        assert record.q_error == 4.0
        assert record.to_dict()["q_error"] == 4.0


@pytest.fixture(scope="module")
def traced_star():
    """One dynamic execution of the star query, trace attached."""
    session = build_star_session()
    result = session.execute(star_query(), "dynamic")
    return session, result


class TestSpanStructure:
    def test_root_is_query_span(self, traced_star):
        _, result = traced_star
        assert result.trace.root.kind == "query"
        assert result.trace.root.start_seconds == 0.0
        assert result.trace.root.end_seconds == pytest.approx(result.seconds)

    def test_phase_spans_match_result_phases(self, traced_star):
        _, result = traced_star
        names = [span.name for span in result.trace.phase_spans()]
        assert names == result.phases

    def test_phase_spans_are_root_children(self, traced_star):
        _, result = traced_star
        root = result.trace.root
        assert [child.kind for child in root.children] == ["phase"] * len(
            root.children
        )

    def test_spans_nest_in_time(self, traced_star):
        _, result = traced_star
        for span in result.trace.spans():
            assert span.end_seconds >= span.start_seconds
            for child in span.children:
                assert child.start_seconds >= span.start_seconds - 1e-9
                assert child.end_seconds <= span.end_seconds + 1e-9

    def test_phases_are_contiguous_on_the_clock(self, traced_star):
        _, result = traced_star
        phases = result.trace.phase_spans()
        cursor = 0.0
        for span in phases:
            assert span.start_seconds == pytest.approx(cursor)
            cursor = span.end_seconds
        assert cursor == pytest.approx(result.seconds)

    def test_operator_spans_under_every_phase(self, traced_star):
        _, result = traced_star
        for phase in result.trace.phase_spans():
            kinds = {s.kind for s in phase.children}
            assert kinds == {"operator"}

    def test_operator_costs_never_negative(self, traced_star):
        _, result = traced_star
        for span in result.trace.spans():
            for component, value in span.cost.items():
                assert value >= 0.0, (span.name, component, value)
            for counter, value in span.counters.items():
                assert value >= 0, (span.name, counter, value)

    def test_scan_counters_attributed_to_scan_operators(self, traced_star):
        _, result = traced_star
        for span in result.trace.spans():
            if span.counters.get("tuples_scanned"):
                assert span.name.startswith("Scan"), span.name


class TestEstimateRecords:
    def test_every_reoptimization_point_recorded(self, traced_star):
        """Each pushdown and each join stage compares estimate vs actual."""
        _, result = traced_star
        trace = result.trace
        recorded_phases = {record.phase for record in trace.estimates}
        expected = {
            phase
            for phase in result.phases
            if phase.startswith(("pushdown:", "join:")) or phase == "final"
        }
        assert expected <= recorded_phases

    def test_actuals_are_measured_modeled_rows(self, traced_star):
        _, result = traced_star
        for record in result.trace.estimates:
            assert record.actual_rows >= 0.0
            assert record.estimated_rows >= 0.0

    def test_final_estimate_is_last(self, traced_star):
        _, result = traced_star
        trace = result.trace
        assert trace.final_estimate() is trace.estimates[-1]
        assert trace.final_estimate().phase == "final"
        assert trace.final_q_error() >= 1.0
        assert trace.max_q_error() >= trace.final_q_error() or (
            trace.max_q_error() == trace.final_q_error()
        )


class TestExports:
    def test_to_json_round_trips(self, traced_star):
        _, result = traced_star
        payload = json.loads(result.trace.to_json())
        assert payload["query"].startswith("dynamic:")
        assert payload["total_seconds"] == pytest.approx(result.seconds)
        assert payload["spans"]["kind"] == "query"
        assert len(payload["estimates"]) == len(result.trace.estimates)

    def test_to_json_indent(self, traced_star):
        _, result = traced_star
        assert json.loads(result.trace.to_json(indent=2)) == json.loads(
            result.trace.to_json()
        )

    def test_chrome_trace_round_trips(self, traced_star):
        _, result = traced_star
        payload = json.loads(result.trace.to_chrome_trace())
        events = payload["traceEvents"]
        assert len(events) == len(result.trace.spans())
        assert {event["ph"] for event in events} == {"X"}
        root = events[0]
        assert root["dur"] == pytest.approx(result.seconds * 1e6)

    def test_explain_analyze_renders(self, traced_star):
        _, result = traced_star
        report = result.explain_analyze()
        assert "EXPLAIN ANALYZE" in report
        for phase in result.phases:
            assert f"phase {phase}" in report
        assert "est=" in report
        assert "q=" in report
        assert "estimate accuracy (re-optimization points):" in report


class TestAllOptimizersTraced:
    """Every registered strategy must produce a usable trace + report."""

    @pytest.mark.parametrize("name", sorted(OPTIMIZERS))
    def test_trace_with_estimates(self, name):
        session = build_star_session()
        result = session.execute(star_query(), name)
        trace = result.trace
        assert trace is not None
        assert [s.name for s in trace.phase_spans()] == result.phases
        assert trace.estimates, name
        report = result.explain_analyze()
        assert "est=" in report
        assert "q=" in report
        json.loads(trace.to_json())


class TestZeroCost:
    def test_tracer_does_not_change_metrics(self):
        """Tracing only reads JobMetrics: same job, same simulated time."""
        from repro.algebra.jobgen import build_final_job
        from repro.core.driver import greedy_full_plan

        session = build_star_session()
        query = star_query()
        plan = greedy_full_plan(query, session, session.statistics.copy(), False)
        job = build_final_job(plan, query, session.datasets)
        data_plain, metrics_plain = session.executor.execute(
            job, query.parameters, session.statistics.copy()
        )
        data_traced, metrics_traced = session.executor.execute(
            job, query.parameters, session.statistics.copy(), tracer=Tracer()
        )
        assert metrics_plain == metrics_traced
        assert data_plain.all_rows() == data_traced.all_rows()

    def test_result_seconds_equal_trace_end(self):
        session = build_star_session()
        result = session.execute(star_query(), "dynamic")
        assert result.trace.root.end_seconds == pytest.approx(result.seconds)
