"""``qerror_stats`` must stay finite under unbounded (inf) Q-error records.

A one-sided-empty stage (estimate > 0, actual = 0, or vice versa) has
Q-error = inf by convention. Before the guard, a single such record turned
the ``worst``/``mean`` aggregates into inf/NaN, which poisoned every report
(and, downstream, any adaptive threshold derived from them).
"""

from __future__ import annotations

import math

from repro.obs.report import qerror_stats
from repro.obs.trace import Tracer


def trace_with(*pairs):
    tracer = Tracer()
    for estimated, actual in pairs:
        tracer.record_estimate("join:a+b", "hash-join", estimated, actual)
    return tracer.finish()


class TestQErrorStatsGuard:
    def test_empty_trace(self):
        stats = qerror_stats(trace_with())
        assert stats["records"] == 0
        assert stats["infinite"] == 0
        assert stats["final"] is None
        assert stats["worst"] is None
        assert stats["mean"] is None

    def test_finite_records(self):
        stats = qerror_stats(trace_with((100, 200), (50, 50)))
        assert stats["records"] == 2
        assert stats["infinite"] == 0
        assert stats["final"] == 1.0
        assert stats["worst"] == 2.0
        assert stats["mean"] == 1.5

    def test_infinite_record_does_not_poison_aggregates(self):
        stats = qerror_stats(trace_with((100, 200), (100, 0), (50, 50)))
        assert stats["records"] == 3
        assert stats["infinite"] == 1
        # worst/mean aggregate the finite records only
        assert stats["worst"] == 2.0
        assert math.isfinite(stats["mean"])

    def test_all_infinite_yields_none_not_nan(self):
        stats = qerror_stats(trace_with((100, 0), (0, 100)))
        assert stats["records"] == 2
        assert stats["infinite"] == 2
        assert stats["worst"] is None
        assert stats["mean"] is None

    def test_final_reflects_the_last_record_even_if_infinite(self):
        stats = qerror_stats(trace_with((50, 50), (100, 0)))
        assert stats["final"] == float("inf")
