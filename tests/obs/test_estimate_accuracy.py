"""The observability pay-off: measured feedback beats static estimation.

Builds a universe the paper's Section-5 argument is about — correlated UDF
predicates (the static optimizer multiplies default selectivities under the
independence assumption) over a skewed fact table — and checks that the
dynamic optimizer's final-stage cardinality estimate, taken at the last
re-optimization point from *measured* intermediates, carries a Q-error no
worse than the static cost-based plan's.
"""

from __future__ import annotations

import random

import pytest

from repro.common.types import DataType, Schema
from repro.lang.builder import QueryBuilder
from repro.session import Session
from repro.testing import evaluate_reference, rows_equal_unordered
from tests.conftest import small_cluster

FACT_SCHEMA = Schema.of(
    ("f_id", DataType.INT),
    ("f_k1", DataType.INT),
    ("f_k2", DataType.INT),
    ("f_k3", DataType.INT),
    ("f_k4", DataType.INT),
    ("f_x", DataType.INT),
    primary_key=("f_id",),
)


def build_skew_session(seed: int = 7) -> Session:
    """Five tables, skewed join keys, two perfectly correlated UDF predicates.

    ``mymod100(f_x) = 1`` implies ``mymod10(f_x) = 1``: the true combined
    selectivity is ~0.3 while independence × default factors predicts 0.01.
    The last two dimensions are *larger* than the filtered fact so the
    endgame join estimates are dominated by their (known) key distincts.
    """
    rng = random.Random(seed)
    session = Session(small_cluster())
    rows = []
    for i in range(4000):
        rows.append(
            {
                "f_id": i,
                # ~half the foreign keys pile onto one hot dimension row
                "f_k1": 0 if rng.random() < 0.5 else rng.randrange(40),
                "f_k2": 0 if rng.random() < 0.5 else rng.randrange(30),
                "f_k3": rng.randrange(3000),
                "f_k4": rng.randrange(2500),
                # both UDF predicates hold exactly when f_x == 1 (~30%)
                "f_x": 1 if rng.random() < 0.3 else rng.randrange(2, 1000) * 10,
            }
        )
    session.load("fact", FACT_SCHEMA, rows)
    for prefix, count in (("d1", 40), ("d2", 30), ("d3", 3000), ("d4", 2500)):
        schema = Schema.of(
            (f"{prefix}_id", DataType.INT),
            (f"{prefix}_attr", DataType.INT),
            primary_key=(f"{prefix}_id",),
        )
        session.load(
            prefix,
            schema,
            [{f"{prefix}_id": i, f"{prefix}_attr": i % 7} for i in range(count)],
        )
    return session


def skew_query():
    return (
        QueryBuilder()
        .select("fact.f_id", "d1.d1_attr")
        .from_table("fact")
        .from_table("d1")
        .from_table("d2")
        .from_table("d3")
        .from_table("d4")
        .where_udf("mymod10", "fact.f_x", "=", 1)
        .where_udf("mymod100", "fact.f_x", "=", 1)
        .join("fact.f_k1", "d1.d1_id")
        .join("fact.f_k2", "d2.d2_id")
        .join("fact.f_k3", "d3.d3_id")
        .join("fact.f_k4", "d4.d4_id")
        .build()
    )


@pytest.fixture(scope="module")
def accuracy_runs():
    session = build_skew_session()
    query = skew_query()
    results = {}
    for optimizer in ("dynamic", "cost_based"):
        results[optimizer] = session.execute(query, optimizer)
        session.reset_intermediates()
    reference = evaluate_reference(query, session)
    return results, reference


class TestDynamicBeatsStaticEstimates:
    def test_final_stage_q_error_no_worse(self, accuracy_runs):
        results, _ = accuracy_runs
        dynamic_q = results["dynamic"].trace.final_q_error()
        static_q = results["cost_based"].trace.final_q_error()
        assert dynamic_q <= static_q

    def test_dynamic_final_estimate_is_tight(self, accuracy_runs):
        """Measured row counts keep the last re-opt estimate within 2x."""
        results, _ = accuracy_runs
        assert results["dynamic"].trace.final_q_error() < 2.0

    def test_static_underestimates_by_the_correlation_factor(self, accuracy_runs):
        """Independence × defaults predicts 1% where ~30% of rows qualify."""
        results, _ = accuracy_runs
        static = results["cost_based"].trace.final_estimate()
        assert static.estimated_rows < static.actual_rows
        assert results["cost_based"].trace.final_q_error() > 10.0

    def test_pushdown_exposes_the_misestimate(self, accuracy_runs):
        """The pushdown record is where dynamic *observes* the correlation:
        its estimate (made before execution) is as wrong as static's, but
        everything planned afterwards uses the measured cardinality."""
        results, _ = accuracy_runs
        trace = results["dynamic"].trace
        pushdown = trace.estimates_for("pushdown:fact")
        assert len(pushdown) == 1
        assert pushdown[0].q_error > 10.0
        for record in trace.estimates_for("final"):
            assert record.q_error < 2.0

    def test_both_runs_match_reference(self, accuracy_runs):
        results, reference = accuracy_runs
        assert rows_equal_unordered(results["dynamic"].rows, reference)
        assert rows_equal_unordered(results["cost_based"].rows, reference)
