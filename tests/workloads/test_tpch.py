"""TPC-H workload generator and query tests."""

import pytest

from repro.session import Session
from repro.workloads.tpch import (
    SCHEMAS,
    generate,
    load_into,
    query_8,
    query_9,
    row_counts,
    scale_unit,
)
from repro.workloads.tpch.generator import FINISHED_CUTOFF_DAY
from repro.workloads.tpch.schema import real_row_counts


@pytest.fixture(scope="module")
def tables():
    return generate(10)


class TestScale:
    def test_scale_unit(self):
        assert scale_unit(10) == 1
        assert scale_unit(1000) == 100

    def test_bad_scale_factor(self):
        for bad in (5, 15, 0):
            with pytest.raises(ValueError):
                scale_unit(bad)

    def test_row_counts_ratio(self):
        small, big = row_counts(1), row_counts(10)
        for table in ("lineitem", "orders", "part"):
            assert big[table] == 10 * small[table]
        assert big["nation"] == small["nation"] == 25

    def test_real_counts_standard_populations(self):
        real = real_row_counts(100)
        assert real["lineitem"] == 600_000_000
        assert real["orders"] == 150_000_000
        assert real["nation"] == 25


class TestGeneratedData:
    def test_counts_match_schema_module(self, tables):
        counts = row_counts(1)
        for name, rows in tables.items():
            assert len(rows) == counts[name]

    def test_rows_match_schemas(self, tables):
        for name, rows in tables.items():
            fields = set(SCHEMAS[name].field_names)
            for row in rows[:20]:
                assert set(row) == fields

    def test_foreign_keys_resolve(self, tables):
        nation_keys = {n["n_nationkey"] for n in tables["nation"]}
        assert all(s["s_nationkey"] in nation_keys for s in tables["supplier"])
        assert all(c["c_nationkey"] in nation_keys for c in tables["customer"])
        order_keys = {o["o_orderkey"] for o in tables["orders"]}
        assert all(l["l_orderkey"] in order_keys for l in tables["lineitem"])

    def test_lineitem_part_supplier_pairs_valid(self, tables):
        pairs = {(p["ps_partkey"], p["ps_suppkey"]) for p in tables["partsupp"]}
        assert all(
            (l["l_partkey"], l["l_suppkey"]) in pairs for l in tables["lineitem"]
        )

    def test_order_status_correlated_with_date(self, tables):
        for order in tables["orders"]:
            if order["o_orderdate"] < FINISHED_CUTOFF_DAY:
                assert order["o_orderstatus"] == "F"
            else:
                assert order["o_orderstatus"] in ("O", "P")

    def test_brand_selectivity_about_one_fiftieth(self):
        parts = generate(100)["part"]
        hits = sum(1 for p in parts if p["p_brand"] == "Brand#3")
        assert hits == pytest.approx(len(parts) / 50, rel=0.6)

    def test_deterministic(self):
        assert generate(10, seed=5) == generate(10, seed=5)

    def test_seed_changes_data(self):
        assert generate(10, seed=5) != generate(10, seed=6)


class TestLoadInto:
    def test_scales_assigned(self):
        session = Session()
        load_into(session, 10)
        lineitem = session.datasets.get("lineitem")
        assert lineitem.scale == pytest.approx(60_000_000 / 600)
        assert session.datasets.get("nation").scale == 1.0
        assert session.statistics.get("lineitem").scale == lineitem.scale


class TestQueries:
    def test_q8_shape(self):
        query = query_8()
        assert len(query.tables) == 8
        assert query.join_count() == 7
        # two (correlated) predicates on orders -> pushdown candidate
        assert len(query.predicates_for("o")) == 2

    def test_q9_shape(self):
        query = query_9()
        assert len(query.tables) == 6
        assert query.join_count() == 5
        # the composite fact-to-fact join l ⋈ ps has two conjuncts
        assert len(query.conditions_between("ps", "l")) == 2

    def test_q9_udfs_are_complex(self):
        query = query_9()
        assert all(p.is_complex for p in query.predicates)
