"""TPC-DS workload generator and query tests."""

import pytest

from repro.session import Session
from repro.workloads.tpcds import (
    SCHEMAS,
    customer_population,
    generate,
    load_into,
    query_17,
    query_50,
    row_counts,
    scale_unit,
)
from repro.workloads.tpcds.generator import day_fields
from repro.workloads.tpcds.schema import CALENDAR_DAYS, real_row_counts


@pytest.fixture(scope="module")
def tables():
    return generate(10)


class TestCalendar:
    def test_day_fields(self):
        first = day_fields(0)
        assert first == {"d_date_sk": 0, "d_year": 1999, "d_moy": 1, "d_dom": 1}
        last = day_fields(CALENDAR_DAYS - 1)
        assert last["d_year"] == 2001
        assert 1 <= last["d_moy"] <= 12

    def test_date_dim_fixed_size(self):
        assert row_counts(1)["date_dim"] == CALENDAR_DAYS
        assert row_counts(100)["date_dim"] == CALENDAR_DAYS

    def test_months_cover_year(self, tables):
        months_2000 = {
            d["d_moy"] for d in tables["date_dim"] if d["d_year"] == 2000
        }
        assert months_2000 == set(range(1, 13))


class TestGeneratedData:
    def test_counts(self, tables):
        counts = row_counts(1)
        for name, rows in tables.items():
            assert len(rows) == counts[name]

    def test_schemas_match(self, tables):
        for name, rows in tables.items():
            fields = set(SCHEMAS[name].field_names)
            for row in rows[:20]:
                assert set(row) == fields

    def test_returns_derive_from_sales(self, tables):
        sale_triples = {
            (s["ss_customer_sk"], s["ss_item_sk"], s["ss_ticket_number"])
            for s in tables["store_sales"]
        }
        for ret in tables["store_returns"]:
            triple = (
                ret["sr_customer_sk"],
                ret["sr_item_sk"],
                ret["sr_ticket_number"],
            )
            assert triple in sale_triples

    def test_return_dates_after_sale(self, tables):
        # triples may repeat (same item twice on one ticket): compare against
        # the earliest matching sale
        earliest: dict = {}
        for s in tables["store_sales"]:
            triple = (s["ss_customer_sk"], s["ss_item_sk"], s["ss_ticket_number"])
            earliest[triple] = min(
                earliest.get(triple, s["ss_sold_date_sk"]), s["ss_sold_date_sk"]
            )
        for ret in tables["store_returns"]:
            triple = (
                ret["sr_customer_sk"],
                ret["sr_item_sk"],
                ret["sr_ticket_number"],
            )
            assert ret["sr_returned_date_sk"] >= earliest[triple]

    def test_customer_domain(self, tables):
        population = customer_population(1)
        assert all(
            0 <= s["ss_customer_sk"] < population for s in tables["store_sales"]
        )

    def test_half_of_catalog_correlated(self, tables):
        sale_pairs = {
            (s["ss_customer_sk"], s["ss_item_sk"]) for s in tables["store_sales"]
        }
        correlated = sum(
            1
            for c in tables["catalog_sales"]
            if (c["cs_bill_customer_sk"], c["cs_item_sk"]) in sale_pairs
        )
        assert correlated >= len(tables["catalog_sales"]) / 2

    def test_deterministic(self):
        assert generate(10, seed=3) == generate(10, seed=3)

    def test_real_counts(self):
        real = real_row_counts(1000)
        assert real["store_sales"] == 2_880_000_000
        assert real["date_dim"] == 73_049


class TestLoadInto:
    def test_scales(self):
        session = Session()
        load_into(session, 100)
        ss = session.datasets.get("store_sales")
        assert ss.scale == pytest.approx(288_000_000 / 6000)
        assert session.datasets.get("date_dim").scale == pytest.approx(
            73_049 / CALENDAR_DAYS
        )


class TestQueries:
    def test_q17_shape(self):
        query = query_17()
        assert len(query.tables) == 8
        assert query.join_count() == 7
        # date_dim appears three times under different aliases
        assert sum(1 for t in query.tables if t.dataset == "date_dim") == 3
        # the fact-to-fact join has three conjuncts
        assert len(query.conditions_between("ss", "sr")) == 3
        assert query.group_by and query.limit == 100

    def test_q50_shape(self):
        query = query_50()
        assert len(query.tables) == 5
        assert query.join_count() == 4

    def test_q50_parameters_bound(self):
        query = query_50(moy=10, year=1999)
        assert query.parameters == {"moy": 10, "year": 1999}
        d1_predicates = query.predicates_for("d1")
        assert all(p.is_complex for p in d1_predicates)
