"""WorkloadSpec registry tests: uniform access, identity, adversarial knobs."""

import pytest

from repro.common.errors import CatalogError
from repro.lang.ast import Query
from repro.session import Session
from repro.workloads import (
    WorkloadSpec,
    available_workloads,
    get_workload,
    job,
    tpcds,
    tpch,
)


class TestRegistry:
    def test_available_workloads(self):
        assert available_workloads() == ("job", "tpcds", "tpch")

    def test_unknown_workload_rejected(self):
        with pytest.raises(CatalogError):
            get_workload("imdb", 10)

    def test_direct_construction_rejected(self):
        with pytest.raises(CatalogError):
            WorkloadSpec(name="tpch", scale_factor=10)

    def test_bad_scale_rejected_eagerly(self):
        with pytest.raises(ValueError):
            get_workload("tpch", 15)

    def test_specs_hashable_and_compare_by_value(self):
        a = get_workload("tpch", 10)
        b = get_workload("tpch", 10)
        assert a == b and hash(a) == hash(b)
        assert a != get_workload("tpch", 10, skew=1.3)
        assert len({a, b}) == 1


class TestUniformSurface:
    def test_query_suites(self):
        assert sorted(get_workload("tpch", 10).queries) == ["Q8", "Q9"]
        assert sorted(get_workload("tpcds", 10).queries) == ["Q17", "Q50"]
        assert sorted(get_workload("job", 10).queries) == ["J1", "J2", "J3"]

    def test_query_builds(self):
        assert isinstance(get_workload("job", 10).query("J2"), Query)

    def test_unknown_query_label(self):
        with pytest.raises(CatalogError):
            get_workload("tpch", 10).query("J1")

    def test_schemas_exposed(self):
        assert "lineitem" in get_workload("tpch", 10).schemas
        assert "cast_info" in get_workload("job", 10).schemas

    def test_adversarial_flag(self):
        assert not get_workload("tpch", 10).adversarial
        assert get_workload("tpch", 10, skew=0.7).adversarial
        assert get_workload("tpch", 10, correlation=0.5).adversarial


class TestZeroKnobIdentity:
    """Knobs at their defaults are the identity: WorkloadSpec generation is
    byte-identical to the legacy per-module entry points, so migrating the
    bench cache to specs changed nothing about the stock universes."""

    def test_tpch(self):
        assert get_workload("tpch", 10).generate() == tpch.generate(10)

    def test_tpcds(self):
        assert get_workload("tpcds", 10).generate() == tpcds.generate(10)

    def test_job(self):
        assert get_workload("job", 10).generate() == job.generate(10)


class TestAdversarialKnobs:
    def test_deterministic(self):
        spec = get_workload("tpch", 10, skew=1.3, correlation=0.9)
        assert spec.generate() == spec.generate()

    def test_tpch_rewrite_touches_only_fact_side(self):
        base = tpch.generate(10)
        skewed = get_workload("tpch", 10, skew=1.3, correlation=0.9).generate()
        assert skewed["lineitem"] != base["lineitem"]
        for untouched in ("nation", "region", "supplier", "customer", "partsupp"):
            assert skewed[untouched] == base[untouched]

    def test_tpch_skew_preserves_join_integrity(self):
        skewed = get_workload("tpch", 10, skew=1.3).generate()
        pairs = {(p["ps_partkey"], p["ps_suppkey"]) for p in skewed["partsupp"]}
        orders = {o["o_orderkey"] for o in skewed["orders"]}
        assert all(
            (l["l_partkey"], l["l_suppkey"]) in pairs for l in skewed["lineitem"]
        )
        assert all(l["l_orderkey"] in orders for l in skewed["lineitem"])

    def test_tpcds_returns_still_derive_from_sales(self):
        skewed = get_workload("tpcds", 10, skew=1.1, correlation=0.9).generate()
        sales = {
            (s["ss_item_sk"], s["ss_customer_sk"], s["ss_ticket_number"])
            for s in skewed["store_sales"]
        }
        assert all(
            (r["sr_item_sk"], r["sr_customer_sk"], r["sr_ticket_number"]) in sales
            for r in skewed["store_returns"]
        )


class TestLoadInto:
    def test_scales_match_legacy_loader(self):
        via_spec, via_module = Session(), Session()
        get_workload("tpch", 10).load_into(via_spec)
        tpch.load_into(via_module, 10)
        for name in ("lineitem", "nation"):
            assert (
                via_spec.datasets.get(name).scale
                == via_module.datasets.get(name).scale
            )

    def test_secondary_indexes(self):
        session = Session()
        spec = get_workload("job", 10)
        spec.load_into(session)
        spec.create_secondary_indexes(session)
        assert session.datasets.get("cast_info").has_index("ci_movie")
