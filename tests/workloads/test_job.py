"""JOB-style workload: schema, generator knobs, and query-suite tests."""

from collections import Counter

import pytest

from repro.common.rng import derive
from repro.session import Session
from repro.workloads.job import (
    SCHEMAS,
    generate,
    hot_title_count,
    load_into,
    query_j1,
    query_j2,
    query_j3,
    real_row_counts,
    row_counts,
    scale_unit,
    zipf_picker,
)
from repro.workloads.job.generator import HOT_TITLE_FRACTION
from repro.workloads.job.schema import QUERY_YEAR_HIGH, QUERY_YEAR_LOW


@pytest.fixture(scope="module")
def tables():
    return generate(10)


class TestScale:
    def test_scale_unit(self):
        assert scale_unit(10) == 1
        assert scale_unit(1000) == 100

    def test_bad_scale_factor(self):
        for bad in (5, 15, 0):
            with pytest.raises(ValueError):
                scale_unit(bad)

    def test_row_counts_ratio(self):
        small, big = row_counts(1), row_counts(10)
        for table in ("title", "cast_info", "movie_keyword"):
            assert big[table] == 10 * small[table]
        assert big["company"] == small["company"]
        assert big["keyword"] == small["keyword"]

    def test_real_counts(self):
        real = real_row_counts(10)
        assert real["cast_info"] > real["title"] > real["company"]


class TestGeneratedData:
    def test_counts_match_schema_module(self, tables):
        counts = row_counts(1)
        for name, rows in tables.items():
            assert len(rows) == counts[name]

    def test_rows_match_schemas(self, tables):
        for name, rows in tables.items():
            fields = set(SCHEMAS[name].field_names)
            for row in rows[:20]:
                assert set(row) == fields

    def test_string_foreign_keys_resolve(self, tables):
        titles = {t["t_id"] for t in tables["title"]}
        names = {n["n_id"] for n in tables["name"]}
        companies = {c["co_id"] for c in tables["company"]}
        keywords = {k["k_id"] for k in tables["keyword"]}
        assert all(isinstance(t, str) for t in titles)
        assert all(ci["ci_movie"] in titles for ci in tables["cast_info"])
        assert all(ci["ci_person"] in names for ci in tables["cast_info"])
        assert all(mc["mc_movie"] in titles for mc in tables["movie_companies"])
        assert all(mc["mc_company"] in companies for mc in tables["movie_companies"])
        assert all(mk["mk_movie"] in titles for mk in tables["movie_keyword"])
        assert all(mk["mk_keyword"] in keywords for mk in tables["movie_keyword"])

    def test_deterministic(self):
        assert generate(10, seed=5) == generate(10, seed=5)
        assert generate(10, seed=5, skew=1.3, correlation=0.9) == generate(
            10, seed=5, skew=1.3, correlation=0.9
        )

    def test_seed_and_knobs_change_data(self):
        base = generate(10, seed=5)
        assert base != generate(10, seed=6)
        assert base != generate(10, seed=5, skew=1.3)
        assert base != generate(10, seed=5, correlation=0.9)


class TestSkewKnob:
    def test_zero_skew_spreads_references(self):
        cast_info = generate(10, skew=0.0)["cast_info"]
        top = Counter(ci["ci_movie"] for ci in cast_info).most_common(1)[0][1]
        assert top < len(cast_info) * 0.05

    def test_high_skew_concentrates_references(self):
        cast_info = generate(10, skew=1.3)["cast_info"]
        top = Counter(ci["ci_movie"] for ci in cast_info).most_common(1)[0][1]
        # the Zipf head alone owns a large share of the fact table
        assert top > len(cast_info) * 0.15

    def test_hot_title_count(self):
        titles = row_counts(scale_unit(10))["title"]
        assert hot_title_count(titles) == max(1, int(titles * HOT_TITLE_FRACTION))

    def test_zipf_picker_deterministic_and_bounded(self):
        picks = [zipf_picker(50, 1.1, derive(7, "zipf"))() for _ in range(200)]
        again = [zipf_picker(50, 1.1, derive(7, "zipf"))() for _ in range(200)]
        assert picks == again
        assert all(0 <= p < 50 for p in picks)


class TestCorrelationKnob:
    def test_correlation_funnels_facts_through_filters(self):
        """With correlation on, the hot (Zipf-head) titles carry exactly the
        attributes the J-queries filter on, so the filters keep a small
        fraction of titles but a large fraction of fact rows."""
        tables = generate(10, skew=1.3, correlation=0.9)
        titles = {t["t_id"]: t for t in tables["title"]}

        def passes(title_row):
            return (
                title_row["t_kind"] == "movie"
                and QUERY_YEAR_LOW <= title_row["t_year"] <= QUERY_YEAR_HIGH
            )

        passing_titles = sum(1 for t in titles.values() if passes(t))
        passing_facts = sum(
            1 for ci in tables["cast_info"] if passes(titles[ci["ci_movie"]])
        )
        title_fraction = passing_titles / len(titles)
        fact_fraction = passing_facts / len(tables["cast_info"])
        assert fact_fraction > 3 * title_fraction

    def test_zero_correlation_keeps_fractions_close(self):
        tables = generate(10, skew=0.0, correlation=0.0)
        titles = {t["t_id"]: t for t in tables["title"]}

        def passes(title_row):
            return (
                title_row["t_kind"] == "movie"
                and QUERY_YEAR_LOW <= title_row["t_year"] <= QUERY_YEAR_HIGH
            )

        title_fraction = sum(1 for t in titles.values() if passes(t)) / len(titles)
        fact_fraction = sum(
            1 for ci in tables["cast_info"] if passes(titles[ci["ci_movie"]])
        ) / len(tables["cast_info"])
        assert fact_fraction == pytest.approx(title_fraction, rel=0.5)


class TestLoadInto:
    def test_scales_assigned(self):
        session = Session()
        load_into(session, 10)
        title = session.datasets.get("title")
        stored = row_counts(scale_unit(10))["title"]
        assert title.scale == pytest.approx(real_row_counts(10)["title"] / stored)
        assert session.statistics.get("title").scale == title.scale


class TestQueries:
    def test_j1_shape(self):
        query = query_j1()
        assert len(query.tables) == 6
        assert query.join_count() == 5

    def test_j2_shape(self):
        query = query_j2()
        assert len(query.tables) == 5
        assert query.join_count() == 4

    def test_j3_shape(self):
        query = query_j3()
        assert len(query.tables) == 7
        assert query.join_count() == 6
