"""The plan-quality diagnosis engine: routing, ranking, rendering, CLI.

Routing tests feed hand-built estimate records through the hypothesis table
(one expected code per error locus x direction); integration tests pin the
explain_analyze section and the ``python -m repro.analysis.diagnose`` CLI
(both the --trace file mode and a live bad-miss run on the adversarial
workload generator).
"""

import json
import math

import pytest

from repro.analysis.diagnose import (
    DEFAULT_THRESHOLD,
    Hypothesis,
    diagnose_records,
    diagnose_trace,
    format_diagnosis,
    main,
)
from repro.obs.report import render_explain_analyze
from repro.obs.trace import EstimateRecord, Tracer


def record(phase, operator, estimated, actual) -> EstimateRecord:
    return EstimateRecord(
        phase=phase, operator=operator, estimated_rows=estimated, actual_rows=actual
    )


def only_code(records) -> str:
    hypotheses = diagnose_records(records)
    assert len(hypotheses) == 1
    return hypotheses[0].code


class TestRouting:
    def test_scan_underestimate_routes_to_correlated_filters(self):
        rec = record("pushdown:fact", "fact", 100.0, 1000.0)
        assert only_code([rec]) == "correlated-filter-underestimate"

    def test_scan_overestimate_routes_to_stale_base_statistics(self):
        rec = record("pushdown:fact", "fact", 1000.0, 100.0)
        assert only_code([rec]) == "stale-base-statistics"

    def test_join_underestimate_routes_to_skew(self):
        rec = record("join-2", "HashJoin(fact, da)", 500.0, 50_000.0)
        assert only_code([rec]) == "skewed-join-key"

    def test_join_overestimate_routes_to_stale_sketch(self):
        rec = record("join-2", "HashJoin(fact, da)", 50_000.0, 500.0)
        assert only_code([rec]) == "stale-sketch-overestimate"

    def test_flat_transfer_reduction_is_unhelpful(self):
        rec = record("transfer:reduce:fact", "τ(fact)", 1000.0, 950.0)
        assert only_code([rec]) == "unhelpful-transfer-filter"

    def test_transfer_underestimate_routes_to_correlated_filters(self):
        rec = record("transfer:reduce:fact", "τ(fact)", 100.0, 1000.0)
        assert only_code([rec]) == "correlated-filter-underestimate"

    def test_effective_transfer_reduction_is_not_a_symptom(self):
        # A big *over*estimate at a transfer point means the filters worked
        # better than local predicates predicted — a win, never flagged.
        rec = record("transfer:reduce:fact", "τ(fact)", 1000.0, 10.0)
        assert diagnose_records([rec]) == []

    def test_zero_actual_routes_to_vanishing_intermediate(self):
        rec = record("join-3", "HashJoin(i1, dc)", 500.0, 0.0)
        assert only_code([rec]) == "vanishing-intermediate"

    def test_zero_estimate_routes_to_zero_support(self):
        rec = record("join-3", "HashJoin(i1, dc)", 0.0, 500.0)
        assert only_code([rec]) == "zero-support-estimate"

    def test_accurate_records_produce_nothing(self):
        records = [
            record("pushdown:fact", "fact", 1000.0, 1000.0),
            record("join-2", "HashJoin", 480.0, 500.0),
        ]
        assert diagnose_records(records) == []

    def test_threshold_is_respected(self):
        rec = record("join-2", "HashJoin", 100.0, 250.0)
        assert diagnose_records([rec], threshold=3.0) == []
        assert diagnose_records([rec], threshold=DEFAULT_THRESHOLD) != []


class TestRanking:
    def test_worst_miss_ranks_first_and_infinite_tops_all(self):
        records = [
            record("join-1", "HashJoin(a)", 100.0, 1000.0),  # 10x
            record("join-2", "HashJoin(b)", 100.0, 0.0),  # inf
            record("join-3", "HashJoin(c)", 100.0, 300.0),  # 3x
        ]
        hypotheses = diagnose_records(records)
        assert [h.operator for h in hypotheses] == [
            "HashJoin(b)",
            "HashJoin(a)",
            "HashJoin(c)",
        ]
        assert math.isinf(hypotheses[0].q_error)

    def test_unhelpful_transfer_filters_rank_last(self):
        records = [
            record("transfer:reduce:fact", "τ(fact)", 1000.0, 990.0),
            record("join-2", "HashJoin", 100.0, 1000.0),
        ]
        hypotheses = diagnose_records(records)
        assert hypotheses[-1].code == "unhelpful-transfer-filter"

    def test_ties_break_deterministically(self):
        records = [
            record("join-2", "B", 100.0, 1000.0),
            record("join-1", "A", 100.0, 1000.0),
        ]
        first = diagnose_records(records)
        second = diagnose_records(list(reversed(records)))
        assert [(h.phase, h.operator) for h in first] == [
            ("join-1", "A"),
            ("join-2", "B"),
        ] == [(h.phase, h.operator) for h in second]


class TestRendering:
    def test_render_mentions_code_q_and_direction(self):
        (h,) = diagnose_records([record("join-2", "HashJoin", 100.0, 1000.0)])
        line = h.render()
        assert "skewed-join-key" in line
        assert "10.0x" in line and "under" in line
        assert "estimated 100 rows, measured 1000" in line

    def test_format_numbers_the_ranks(self):
        hypotheses = diagnose_records(
            [
                record("join-1", "A", 100.0, 1000.0),
                record("join-2", "B", 100.0, 500.0),
            ]
        )
        text = format_diagnosis(hypotheses)
        assert text.splitlines()[0].lstrip().startswith("1. ")
        assert text.splitlines()[1].lstrip().startswith("2. ")

    def test_empty_diagnosis_renders_placeholder(self):
        assert "no plan-quality symptoms" in format_diagnosis([])

    def test_to_dict_is_json_ready(self):
        (h,) = diagnose_records([record("join-2", "HashJoin", 100.0, 1000.0)])
        payload = json.dumps(h.to_dict())
        assert "skewed-join-key" in payload


class TestExplainAnalyzeWiring:
    def bad_trace(self):
        tracer = Tracer("bad miss")
        tracer.record_estimate("join-2", "HashJoin(fact, da)", 500.0, 50_000.0)
        return tracer.finish()

    def test_explain_analyze_shows_ranked_hypotheses(self):
        text = render_explain_analyze(self.bad_trace())
        assert "plan-quality diagnosis (ranked hypotheses):" in text
        assert "skewed-join-key" in text

    def test_diagnose_trace_matches_records(self):
        trace = self.bad_trace()
        assert diagnose_trace(trace) == diagnose_records(list(trace.estimates))

    def test_clean_trace_has_no_diagnosis_section(self):
        tracer = Tracer("clean")
        tracer.record_estimate("join-2", "HashJoin", 500.0, 500.0)
        text = render_explain_analyze(tracer.finish())
        assert "plan-quality diagnosis" not in text


class TestCLI:
    def test_trace_file_mode(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        trace.write_text(
            json.dumps(
                {
                    "estimates": [
                        {
                            "phase": "join-2",
                            "operator": "HashJoin(fact, da)",
                            "estimated_rows": 500.0,
                            "actual_rows": 50_000.0,
                        }
                    ]
                }
            )
        )
        assert main(["--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "skewed-join-key" in out
        assert "1 hypothesis(es)" in out

    def test_trace_file_mode_clean(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({"estimates": []}))
        assert main(["--trace", str(trace)]) == 0
        assert "no plan-quality symptoms" in capsys.readouterr().out

    def test_live_bad_miss_run_emits_a_hypothesis(self, capsys):
        # The adversarial J2 workload under a static strategy is the
        # acceptance scenario: skewed keys the static model cannot see.
        code = main(
            [
                "--query",
                "J2",
                "--sf",
                "10",
                "--optimizer",
                "cost_based",
                "--skew",
                "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan-quality diagnosis for J2 @ SF 10 under cost_based" in out
        ranked = [line for line in out.splitlines() if line.lstrip().startswith("1. ")]
        assert ranked, out


@pytest.mark.parametrize("direction", ["under", "over"])
def test_hypothesis_is_frozen(direction):
    h = Hypothesis(
        code="skewed-join-key",
        phase="join-1",
        operator="HashJoin",
        q_error=10.0,
        direction=direction,
        summary="s",
        evidence="e",
    )
    with pytest.raises(AttributeError):
        h.code = "other"
