"""Mutation tests for the determinism lint (D001-D004, W001) + the clean tree.

Each rule gets a minimal source snippet that trips it, the nearest
non-violation that must NOT trip it, and its documented escape hatches
(path exemptions and ``# det: allow(...)`` pragmas). The CLI's output
formats and exit-code contract (0 clean / 1 findings, relied on by CI) are
pinned here too.
"""

import json

from pathlib import Path

from repro.analysis.lint import HOT_PATHS, lint_paths, lint_source, main


def codes(findings) -> list[str]:
    return [f.code for f in findings]


class TestD001WallClock:
    def test_time_module_call(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert codes(lint_source(source, "engine/executor.py")) == ["D001"]

    def test_from_import_perf_counter(self):
        source = "from time import perf_counter\n\nx = perf_counter()\n"
        assert codes(lint_source(source, "core/driver.py")) == ["D001"]

    def test_datetime_now(self):
        source = "from datetime import datetime\n\nstamp = datetime.now()\n"
        assert codes(lint_source(source, "obs/trace.py")) == ["D001"]

    def test_analysis_package_exempt(self):
        source = "from time import perf_counter\n\nx = perf_counter()\n"
        assert lint_source(source, "analysis/runtime.py") == []

    def test_pragma_suppresses(self):
        source = (
            "from time import perf_counter\n\n"
            "x = perf_counter()  # det: allow(D001)\n"
        )
        assert lint_source(source, "engine/executor.py") == []

    def test_pragma_is_code_specific(self):
        # The mismatched pragma suppresses nothing, so the D001 fires and
        # the pragma itself is reported stale (W001).
        source = (
            "from time import perf_counter\n\n"
            "x = perf_counter()  # det: allow(D002)\n"
        )
        assert sorted(codes(lint_source(source, "engine/executor.py"))) == [
            "D001",
            "W001",
        ]

    def test_sleep_is_not_wall_clock(self):
        source = "import time\n\ntime.sleep(0)\n"
        assert lint_source(source, "engine/executor.py") == []


class TestD002BareRandom:
    def test_import_random(self):
        source = "import random\n"
        assert codes(lint_source(source, "core/driver.py")) == ["D002"]

    def test_from_random_import(self):
        source = "from random import Random\n"
        assert codes(lint_source(source, "optimizers/pilot_run.py")) == ["D002"]

    def test_rng_module_exempt(self):
        source = "import random\n"
        assert lint_source(source, "common/rng.py") == []


class TestD003SetIteration:
    def test_for_over_set_variable(self):
        source = "def f(xs):\n    s = set(xs)\n    for x in s:\n        print(x)\n"
        assert codes(lint_source(source, "core/driver.py")) == ["D003"]

    def test_set_algebra_expression(self):
        source = "def f(a, b):\n    for x in set(a) - set(b):\n        print(x)\n"
        assert codes(lint_source(source, "optimizers/best_order.py")) == ["D003"]

    def test_comprehension_over_annotated_set(self):
        source = "def f(xs):\n    s: frozenset = xs\n    return [x for x in s]\n"
        assert codes(lint_source(source, "algebra/jobgen.py")) == ["D003"]

    def test_sorted_wrapper_is_clean(self):
        source = "def f(xs):\n    for x in sorted(set(xs)):\n        print(x)\n"
        assert lint_source(source, "core/driver.py") == []

    def test_order_insensitive_reducer_is_clean(self):
        source = "def f(xs):\n    return sum(x for x in set(xs))\n"
        assert lint_source(source, "core/driver.py") == []

    def test_outside_hot_paths_not_flagged(self):
        source = "def f(xs):\n    for x in set(xs):\n        print(x)\n"
        assert lint_source(source, "obs/report.py") == []

    def test_dict_iteration_never_flagged(self):
        source = "def f(d):\n    for k in d:\n        print(k)\n"
        assert lint_source(source, "core/driver.py") == []

    def test_list_iteration_never_flagged(self):
        source = "def f(xs):\n    for x in list(xs):\n        print(x)\n"
        assert lint_source(source, "core/driver.py") == []


class TestD004QueueDelayInMetrics:
    def test_jobmetrics_field(self):
        source = (
            "class JobMetrics:\n"
            "    scan: float = 0.0\n"
            "    queue_delay: float = 0.0\n"
        )
        assert codes(lint_source(source, "engine/metrics.py")) == ["D004"]

    def test_assignment_into_metrics(self):
        source = "def charge(metrics, wait):\n    metrics.queue_delay += wait\n"
        assert codes(lint_source(source, "engine/scheduler/runner.py")) == ["D004"]

    def test_schedule_info_owns_queue_delay(self):
        # Waiting belongs on ScheduleInfo — the same attribute there is fine.
        source = "def note(info, wait):\n    info.queue_delay = wait\n"
        assert lint_source(source, "engine/scheduler/runner.py") == []

    def test_other_metrics_fields_fine(self):
        source = "def charge(metrics, s):\n    metrics.scan += s\n"
        assert lint_source(source, "engine/metrics.py") == []


class TestW001StalePragma:
    def test_stale_pragma_trips(self):
        source = "def f(x):\n    return x  # det: allow(D001)\n"
        found = lint_source(source, "engine/metrics.py")
        assert codes(found) == ["W001"]
        assert found[0].severity == "warning"
        assert found[0].line == 2

    def test_live_pragma_does_not_trip(self):
        source = (
            "from time import perf_counter\n"
            "def f():\n"
            "    return perf_counter()  # det: allow(D001)\n"
        )
        assert lint_source(source, "engine/metrics.py") == []

    def test_pragma_for_a_different_code_is_stale(self):
        # The line has a real D001 but the pragma excuses D003: the finding
        # fires AND the mismatched pragma is reported stale.
        source = (
            "from time import perf_counter\n"
            "def f():\n"
            "    return perf_counter()  # det: allow(D003)\n"
        )
        assert sorted(codes(lint_source(source, "engine/metrics.py"))) == [
            "D001",
            "W001",
        ]

    def test_w001_is_self_suppressible(self):
        source = (
            "def f(x):\n"
            "    return x  # det: allow(D001)  # det: allow(W001)\n"
        )
        assert lint_source(source, "engine/metrics.py") == []

    def test_lone_w001_pragma_is_not_stale(self):
        # allow(W001) never demands a live W001 on its line — it exists
        # exactly to mark conditionally-live pragmas.
        source = "def f(x):\n    return x  # det: allow(W001)\n"
        assert lint_source(source, "engine/metrics.py") == []


class TestHotPathCoverage:
    def test_service_and_transfer_paths_are_hot(self):
        assert any("service/" in fragment for fragment in HOT_PATHS)
        # core/ covers core/predicate_transfer.py — pin that it stays true.
        assert any(
            fragment in "core/predicate_transfer.py" for fragment in HOT_PATHS
        )

    def test_service_files_get_set_iteration_rule(self):
        source = "def f():\n    s = {1, 2}\n    for x in s:\n        print(x)\n"
        assert codes(lint_source(source, "service/admission.py")) == ["D003"]
        assert codes(lint_source(source, "core/predicate_transfer.py")) == [
            "D003"
        ]


class TestCLIFormats:
    def stale_file(self, tmp_path):
        target = tmp_path / "metrics_helper.py"
        target.write_text("def f(x):\n    return x  # det: allow(D001)\n")
        return target

    def test_exit_code_contract(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x\n")
        assert main([str(clean)]) == 0
        assert main([str(self.stale_file(tmp_path))]) == 1
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        assert main([str(self.stale_file(tmp_path)), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "W001"
        assert finding["rule"] == "stale-suppression-pragma"
        assert finding["severity"] == "warning"
        assert finding["line"] == 2

    def test_json_format_clean(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x\n")
        assert main([str(clean), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == {
            "findings": [],
            "count": 0,
        }

    def test_github_format(self, tmp_path, capsys):
        assert main([str(self.stale_file(tmp_path)), "--format", "github"]) == 1
        out = capsys.readouterr().out
        annotation = out.splitlines()[0]
        assert annotation.startswith("::warning file=")
        assert ",line=2::W001 stale-suppression-pragma:" in annotation

    def test_github_format_uses_error_level_for_errors(self, tmp_path, capsys):
        target = tmp_path / "engine_bit.py"
        target.write_text("import random\n")
        assert main([str(target), "--format", "github"]) == 1
        assert capsys.readouterr().out.startswith("::error file=")


class TestCleanTree:
    def test_src_repro_is_lint_clean(self):
        """The engine's own source must satisfy its own determinism lint."""
        root = Path(__file__).resolve().parents[2] / "src" / "repro"
        findings = lint_paths([root])
        assert findings == [], "\n".join(f.render() for f in findings)
