"""Mutation tests for the determinism lint (D001-D004) + the clean-tree gate.

Each rule gets a minimal source snippet that trips it, the nearest
non-violation that must NOT trip it, and its documented escape hatches
(path exemptions and ``# det: allow(...)`` pragmas).
"""

from pathlib import Path

from repro.analysis.lint import lint_paths, lint_source


def codes(findings) -> list[str]:
    return [f.code for f in findings]


class TestD001WallClock:
    def test_time_module_call(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert codes(lint_source(source, "engine/executor.py")) == ["D001"]

    def test_from_import_perf_counter(self):
        source = "from time import perf_counter\n\nx = perf_counter()\n"
        assert codes(lint_source(source, "core/driver.py")) == ["D001"]

    def test_datetime_now(self):
        source = "from datetime import datetime\n\nstamp = datetime.now()\n"
        assert codes(lint_source(source, "obs/trace.py")) == ["D001"]

    def test_analysis_package_exempt(self):
        source = "from time import perf_counter\n\nx = perf_counter()\n"
        assert lint_source(source, "analysis/runtime.py") == []

    def test_pragma_suppresses(self):
        source = (
            "from time import perf_counter\n\n"
            "x = perf_counter()  # det: allow(D001)\n"
        )
        assert lint_source(source, "engine/executor.py") == []

    def test_pragma_is_code_specific(self):
        source = (
            "from time import perf_counter\n\n"
            "x = perf_counter()  # det: allow(D002)\n"
        )
        assert codes(lint_source(source, "engine/executor.py")) == ["D001"]

    def test_sleep_is_not_wall_clock(self):
        source = "import time\n\ntime.sleep(0)\n"
        assert lint_source(source, "engine/executor.py") == []


class TestD002BareRandom:
    def test_import_random(self):
        source = "import random\n"
        assert codes(lint_source(source, "core/driver.py")) == ["D002"]

    def test_from_random_import(self):
        source = "from random import Random\n"
        assert codes(lint_source(source, "optimizers/pilot_run.py")) == ["D002"]

    def test_rng_module_exempt(self):
        source = "import random\n"
        assert lint_source(source, "common/rng.py") == []


class TestD003SetIteration:
    def test_for_over_set_variable(self):
        source = "def f(xs):\n    s = set(xs)\n    for x in s:\n        print(x)\n"
        assert codes(lint_source(source, "core/driver.py")) == ["D003"]

    def test_set_algebra_expression(self):
        source = "def f(a, b):\n    for x in set(a) - set(b):\n        print(x)\n"
        assert codes(lint_source(source, "optimizers/best_order.py")) == ["D003"]

    def test_comprehension_over_annotated_set(self):
        source = "def f(xs):\n    s: frozenset = xs\n    return [x for x in s]\n"
        assert codes(lint_source(source, "algebra/jobgen.py")) == ["D003"]

    def test_sorted_wrapper_is_clean(self):
        source = "def f(xs):\n    for x in sorted(set(xs)):\n        print(x)\n"
        assert lint_source(source, "core/driver.py") == []

    def test_order_insensitive_reducer_is_clean(self):
        source = "def f(xs):\n    return sum(x for x in set(xs))\n"
        assert lint_source(source, "core/driver.py") == []

    def test_outside_hot_paths_not_flagged(self):
        source = "def f(xs):\n    for x in set(xs):\n        print(x)\n"
        assert lint_source(source, "obs/report.py") == []

    def test_dict_iteration_never_flagged(self):
        source = "def f(d):\n    for k in d:\n        print(k)\n"
        assert lint_source(source, "core/driver.py") == []

    def test_list_iteration_never_flagged(self):
        source = "def f(xs):\n    for x in list(xs):\n        print(x)\n"
        assert lint_source(source, "core/driver.py") == []


class TestD004QueueDelayInMetrics:
    def test_jobmetrics_field(self):
        source = (
            "class JobMetrics:\n"
            "    scan: float = 0.0\n"
            "    queue_delay: float = 0.0\n"
        )
        assert codes(lint_source(source, "engine/metrics.py")) == ["D004"]

    def test_assignment_into_metrics(self):
        source = "def charge(metrics, wait):\n    metrics.queue_delay += wait\n"
        assert codes(lint_source(source, "engine/scheduler/runner.py")) == ["D004"]

    def test_schedule_info_owns_queue_delay(self):
        # Waiting belongs on ScheduleInfo — the same attribute there is fine.
        source = "def note(info, wait):\n    info.queue_delay = wait\n"
        assert lint_source(source, "engine/scheduler/runner.py") == []

    def test_other_metrics_fields_fine(self):
        source = "def charge(metrics, s):\n    metrics.scan += s\n"
        assert lint_source(source, "engine/metrics.py") == []


class TestCleanTree:
    def test_src_repro_is_lint_clean(self):
        """The engine's own source must satisfy its own determinism lint."""
        root = Path(__file__).resolve().parents[2] / "src" / "repro"
        findings = lint_paths([root])
        assert findings == [], "\n".join(f.render() for f in findings)
