"""Mutation tests for the query-level dataflow verifier (Q001-Q006).

Mirrors test_verifier.py's discipline one layer up: a clean baseline
sequence first, then one planted cross-job defect per test asserting the
expected Q-code — plus integration pins proving live executions (the
dynamic driver's replan-recompiled jobs, the transfer prelude, the
scheduler's query-completion hook) verify clean end to end.
"""

import pytest

from repro.analysis.dataflow import (
    QUERY_RULES_CHECKED,
    JobDataflow,
    TransferSummary,
    dataflow_of,
    verify_query_dataflow,
)
from repro.engine.job import Job
from repro.engine.operators.scan import ReaderOp, ScanOp
from repro.engine.operators.sink import SinkOp
from repro.obs.trace import Span
from repro.spec import PlannerSpec

from tests.conftest import build_star_session, star_query


def codes(diagnostics) -> list[str]:
    return [d.code for d in diagnostics]


def job(phase, label, reads=(), writes=(), scans=(), probes=(), builds=(), **kw):
    return JobDataflow(
        phase=phase,
        label=label,
        reads=tuple(reads),
        writes=tuple(writes),
        scans=tuple(scans),
        probes=tuple(probes),
        builds=tuple(builds),
        **kw,
    )


def clean_sequence() -> list[JobDataflow]:
    return [
        job("join-1", "j1", scans=("fact", "da"), writes=("i0",)),
        job("join-2", "j2", reads=("i0",), scans=("db",), writes=("i1",)),
        job("final", "f", reads=("i1",), scans=("dc",)),
    ]


class TestCleanBaseline:
    def test_clean_sequence_has_no_findings(self):
        assert verify_query_dataflow(clean_sequence()) == []

    def test_clean_namespaced_sequence(self):
        records = [
            job("join-1", "j1", scans=("fact",), writes=("__q3__i0",)),
            job("final", "f", reads=("__q3__i0",)),
        ]
        assert verify_query_dataflow(records, namespace="__q3") == []

    def test_rule_count_constant(self):
        assert QUERY_RULES_CHECKED == 6


class TestQ001DeadSink:
    def test_unread_intermediate(self):
        records = clean_sequence()
        records[1] = job(
            "join-2", "j2", reads=("i0",), scans=("db",), writes=("i1", "i_dead")
        )
        assert "Q001" in codes(verify_query_dataflow(records))

    def test_final_phase_write_is_dead(self):
        records = clean_sequence()
        records[2] = job("final", "f", reads=("i1",), writes=("i2",))
        assert "Q001" in codes(verify_query_dataflow(records))


class TestQ002ReadBeforeWrite:
    def test_read_of_never_written_intermediate(self):
        records = [job("final", "f", reads=("i9",))]
        assert "Q002" in codes(verify_query_dataflow(records))

    def test_read_before_the_write_happens(self):
        records = [
            job("join-1", "j1", reads=("i0",), writes=("i1",)),
            job("join-2", "j2", scans=("fact",), writes=("i0",)),
            job("final", "f", reads=("i1", "i0")),
        ]
        assert "Q002" in codes(verify_query_dataflow(records))

    def test_preexisting_names_are_fine(self):
        records = [job("final", "f", reads=("warm",))]
        found = verify_query_dataflow(records, preexisting=frozenset(("warm",)))
        assert found == []

    def test_foreign_namespace_read(self):
        records = [
            job("join-1", "j1", scans=("fact",), writes=("__q3__i0",)),
            job("final", "f", reads=("__q3__i0", "__q7__i0")),
        ]
        found = verify_query_dataflow(records, namespace="__q3")
        assert codes(found) == ["Q002"]
        assert "foreign" in found[0].message


class TestQ003NamespaceLeak:
    def test_write_outside_namespace(self):
        records = [
            job("join-1", "j1", scans=("fact",), writes=("i0",)),
            job("final", "f", reads=("i0",)),
        ]
        found = verify_query_dataflow(records, namespace="__q3")
        assert "Q003" in codes(found)

    def test_wrong_namespace_write(self):
        records = [
            job("join-1", "j1", scans=("fact",), writes=("__q7__i0",)),
            job("final", "f", reads=("__q7__i0",)),
        ]
        found = verify_query_dataflow(records, namespace="__q3")
        assert "Q003" in codes(found)


class TestQ004CacheTokens:
    def test_batch_key_of_unscanned_dataset(self):
        records = [job("final", "f", scans=("fact",), batch_key="db")]
        assert "Q004" in codes(verify_query_dataflow(records))

    def test_namespaced_cache_token(self):
        records = [
            job(
                "join-1",
                "j1",
                scans=("fact",),
                writes=("i0",),
                cache_token="tt:__q3__fact:abc",
            ),
            job("final", "f", reads=("i0",)),
        ]
        assert "Q004" in codes(verify_query_dataflow(records))

    def test_token_collision_within_query(self):
        records = [
            job("join-1", "j1", scans=("fact",), writes=("i0",), cache_token="t1"),
            job("join-2", "j2", reads=("i0",), scans=("db",), writes=("i1",),
                cache_token="t1"),
            job("final", "f", reads=("i1",)),
        ]
        assert "Q004" in codes(verify_query_dataflow(records))

    def test_token_collision_across_queries_via_registry(self):
        registry = {"t1": ("da", "fact")}
        records = [
            job("join-1", "j1", scans=("db",), writes=("i0",), cache_token="t1"),
            job("final", "f", reads=("i0",)),
        ]
        found = verify_query_dataflow(records, token_registry=registry)
        assert "Q004" in codes(found)
        # The pass republishes the latest signature for future queries.
        assert registry["t1"] == ("db",)

    def test_consistent_reuse_is_fine(self):
        registry = {"t1": ("fact",)}
        records = [
            job("join-1", "j1", scans=("fact",), writes=("i0",), cache_token="t1"),
            job("final", "f", reads=("i0",)),
        ]
        assert verify_query_dataflow(records, token_registry=registry) == []


class FakeTrace:
    def __init__(self, root):
        self.root = root
        self.dataflows = []


def phase_span(name, start, end):
    return Span(name=name, kind="phase", start_seconds=start, end_seconds=end)


class TestQ005ChargeAttribution:
    def make_trace(self, spans, total):
        root = Span(name="q", kind="query", start_seconds=0.0, end_seconds=total)
        root.children = spans
        return FakeTrace(root)

    def test_contiguous_spans_are_clean(self):
        trace = self.make_trace(
            [phase_span("join-1", 0.0, 5.0), phase_span("final", 5.0, 9.0)], 9.0
        )
        found = verify_query_dataflow([], trace=trace, metrics_total=9.0)
        assert found == []

    def test_gap_between_spans_leaks(self):
        trace = self.make_trace(
            [phase_span("join-1", 0.0, 5.0), phase_span("final", 6.5, 9.0)], 9.0
        )
        found = verify_query_dataflow([], trace=trace, metrics_total=9.0)
        assert "Q005" in codes(found)
        assert "no span" in found[0].message

    def test_negative_gap_is_a_refund_not_a_leak(self):
        # The Figure-6 refund mode legitimately moves the clock backward.
        trace = self.make_trace(
            [phase_span("join-1", 0.0, 5.0), phase_span("final", 4.0, 9.0)], 9.0
        )
        assert verify_query_dataflow([], trace=trace, metrics_total=9.0) == []

    def test_total_mismatch_leaks(self):
        trace = self.make_trace([phase_span("final", 0.0, 9.0)], 9.0)
        found = verify_query_dataflow([], trace=trace, metrics_total=11.0)
        assert "Q005" in codes(found)
        assert "bypassed" in found[0].message

    def test_audit_needs_both_trace_and_total(self):
        trace = self.make_trace([phase_span("final", 0.0, 9.0)], 9.0)
        assert verify_query_dataflow([], trace=trace, metrics_total=None) == []


class TestQ006TransferSoundness:
    def transfer_records(self):
        return [
            job("transfer:build:da", "b", kind="transfer", builds=("fp1",)),
            job(
                "transfer:reduce:fact",
                "r",
                scans=("fact",),
                probes=("fp1",),
                writes=("__t_fact_1",),
            ),
            TransferSummary(
                reduced=("fact",),
                intermediates=(("fact", "__t_fact_1"),),
                original_tables=(("da", "da"), ("fact", "fact")),
                rewritten_tables=(("da", "da"), ("fact", "__t_fact_1")),
            ),
            job("final", "f", reads=("__t_fact_1",), scans=("da",)),
        ]

    def test_sound_transfer_is_clean(self):
        assert verify_query_dataflow(self.transfer_records()) == []

    def test_probe_before_build(self):
        records = self.transfer_records()
        records[0], records[1] = records[1], records[0]
        assert "Q006" in codes(verify_query_dataflow(records))

    def test_probe_of_unbuilt_filter(self):
        records = self.transfer_records()
        records[1] = job(
            "transfer:reduce:fact",
            "r",
            scans=("fact",),
            probes=("fp_ghost",),
            writes=("__t_fact_1",),
        )
        assert "Q006" in codes(verify_query_dataflow(records))

    def test_reduced_without_intermediate(self):
        records = self.transfer_records()
        records[2] = TransferSummary(
            reduced=("fact", "da"),
            intermediates=(("fact", "__t_fact_1"),),
            original_tables=(("da", "da"), ("fact", "fact")),
            rewritten_tables=(("da", "da"), ("fact", "__t_fact_1")),
        )
        assert "Q006" in codes(verify_query_dataflow(records))

    def test_rewrite_dropped_an_alias(self):
        records = self.transfer_records()
        records[2] = TransferSummary(
            reduced=("fact",),
            intermediates=(("fact", "__t_fact_1"),),
            original_tables=(("da", "da"), ("fact", "fact")),
            rewritten_tables=(("fact", "__t_fact_1"),),
        )
        assert "Q006" in codes(verify_query_dataflow(records))

    def test_rewrite_missed_a_reduced_alias(self):
        records = self.transfer_records()
        records[2] = TransferSummary(
            reduced=("fact",),
            intermediates=(("fact", "__t_fact_1"),),
            original_tables=(("da", "da"), ("fact", "fact")),
            rewritten_tables=(("da", "da"), ("fact", "fact")),
        )
        assert "Q006" in codes(verify_query_dataflow(records))

    def test_unmaterialized_intermediate(self):
        records = self.transfer_records()
        records[1] = job(
            "transfer:reduce:fact", "r", scans=("fact",), probes=("fp1",)
        )
        found = verify_query_dataflow(records)
        assert "Q006" in codes(found)
        assert any("never materialized" in d.message for d in found)

    def test_rewiring_an_unreduced_alias(self):
        records = self.transfer_records()
        records[2] = TransferSummary(
            reduced=("fact",),
            intermediates=(("fact", "__t_fact_1"),),
            original_tables=(("da", "da"), ("fact", "fact")),
            rewritten_tables=(("da", "elsewhere"), ("fact", "__t_fact_1")),
        )
        assert "Q006" in codes(verify_query_dataflow(records))


class TestDataflowExtraction:
    def test_reader_sink_scan_extraction(self):
        j = Job(
            SinkOp(ReaderOp("__q1__i0"), "__q1__i1", ()),
            label="step",
            phase="join-2",
        )
        record = dataflow_of(j)
        assert record.reads == ("__q1__i0",)
        assert record.writes == ("__q1__i1",)
        assert record.scans == ()
        assert record.replayed is False

    def test_scans_are_sorted_and_deduped(self):
        j = Job(SinkOp(ScanOp("fact", "fact"), "i0", ()), phase="join-1")
        assert dataflow_of(j).scans == ("fact",)

    def test_to_dict_round_trip_is_deterministic(self):
        record = job("join-1", "j1", scans=("fact",), writes=("i0",))
        assert record.to_dict() == record.to_dict()


class TestLiveIntegration:
    """Live executions must verify clean at every re-optimization point."""

    @pytest.mark.parametrize(
        "spec",
        [
            PlannerSpec.of("dynamic"),
            PlannerSpec.of("dynamic", pre_filter="transfer"),
            PlannerSpec.of("predicate_transfer"),
        ],
        ids=["dynamic", "dynamic+transfer", "predicate_transfer"],
    )
    def test_replanned_jobs_verify_clean_at_every_reopt_point(self, spec):
        session = build_star_session()
        result = session.execute(star_query(), spec)
        stats = session.executor.verifier_stats
        # Plan-time verification ran at the re-optimization points...
        assert stats.plans_verified > 0
        # ...the query-level pass ran exactly once, and everything is clean.
        assert stats.queries_verified == 1
        assert stats.diagnostics_found == 0
        assert all(record.clean for record in result.trace.verifications)
        query_records = [
            r for r in result.trace.verifications if r.phase == "query"
        ]
        assert len(query_records) == 1
        assert query_records[0].rules_checked == QUERY_RULES_CHECKED

    def test_transfer_run_records_builds_and_summary(self):
        session = build_star_session()
        result = session.execute(
            star_query(), PlannerSpec.of("dynamic", pre_filter="transfer")
        )
        records = result.trace.dataflows
        assert any(
            isinstance(r, JobDataflow) and r.kind == "transfer" and r.builds
            for r in records
        )
        assert any(isinstance(r, TransferSummary) for r in records)

    def test_query_pass_meters_host_time_not_simulated(self):
        session = build_star_session()
        result = session.execute(star_query())
        stats = session.executor.verifier_stats
        assert stats.query_wall_seconds > 0.0
        assert stats.total_wall_seconds >= stats.query_wall_seconds
        # Zero simulated cost: the metrics object knows nothing of the pass.
        assert result.metrics.total_seconds == pytest.approx(
            result.trace.root.end_seconds
        )

    def test_opt_out_skips_query_pass(self):
        session = build_star_session()
        session.executor.verify_plans = False
        session.execute(star_query())
        stats = session.executor.verifier_stats
        assert stats.queries_verified == 0
        assert stats.plans_verified == 0
