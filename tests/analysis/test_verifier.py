"""Mutation tests: every verifier rule fires on exactly the bug it names.

Each test plants one specific defect in an otherwise healthy job or plan and
asserts the expected code — and only defects trip: the first test pins the
clean-baseline behavior every mutation is measured against.
"""

from dataclasses import replace

import pytest

from repro.algebra.jobgen import build_final_job
from repro.algebra.plan import JoinNode, LeafNode
from repro.algebra.toolkit import PlannerToolkit
from repro.analysis.diagnostics import (
    LINT_RULES,
    PLAN_RULES,
    QUERY_RULES,
    RULES,
    Diagnostic,
    PlanVerificationError,
)
from repro.analysis.verifier import verify_job, verify_plan
from repro.common.types import DataType, Schema
from repro.engine.job import Job
from repro.engine.operators.joins import HashJoinOp, JoinAlgorithm
from repro.engine.operators.scan import ReaderOp, ScanOp
from repro.engine.operators.select import ProjectOp, SelectOp
from repro.engine.operators.sink import DistributeResultOp, SinkOp
from repro.lang.ast import ComparisonPredicate

from tests.conftest import build_star_session, star_query


def codes(diagnostics: list[Diagnostic]) -> list[str]:
    return [d.code for d in diagnostics]


@pytest.fixture
def session():
    return build_star_session()


@pytest.fixture
def toolkit(session):
    return PlannerToolkit(star_query(), session)


def fact_da_join(toolkit) -> JoinNode:
    conditions = toolkit.conditions_across(
        frozenset(("fact",)), frozenset(("da",))
    )
    return toolkit.make_join(toolkit.leaf("fact"), toolkit.leaf("da"), conditions)


class TestCleanBaseline:
    def test_rule_produced_final_job_is_clean(self, session, toolkit):
        job = build_final_job(fact_da_join(toolkit), star_query(), session.datasets)
        diagnostics = verify_job(
            job,
            session.datasets,
            statistics=session.statistics,
            cluster=session.cluster,
            cost=session.executor.cost,
        )
        assert diagnostics == []

    def test_plan_rules_without_statistics_still_run(self, session, toolkit):
        # No statistics -> the estimate-based P005 degrades gracefully while
        # the catalog-only rules (P004, P006) still apply.
        assert verify_plan(fact_da_join(toolkit), session.datasets) == []


class TestP001DanglingColumn:
    def test_select_on_missing_column(self, session):
        root = DistributeResultOp(
            SelectOp(
                ScanOp("da", "da"),
                (ComparisonPredicate("da.no_such", "=", 1),),
            )
        )
        job = Job(root, label="broken", phase="final")
        assert "P001" in codes(verify_job(job, session.datasets))

    def test_sink_keeping_missing_column(self, session):
        root = SinkOp(ScanOp("da", "da"), "i0", ("da.a_id", "da.ghost"))
        job = Job(root, label="broken", phase="join-1")
        assert "P001" in codes(verify_job(job, session.datasets))


class TestP002SourceKind:
    def test_reader_on_released_namespace(self, session):
        root = SinkOp(ReaderOp("__q7_i0"), "i1", ())
        job = Job(root, label="broken", phase="join-2")
        found = verify_job(job, session.datasets)
        assert "P002" in codes(found)
        assert any("released namespace" in d.message for d in found)

    def test_scan_of_unknown_dataset(self, session):
        job = Job(DistributeResultOp(ScanOp("nope", "n")), phase="final")
        assert "P002" in codes(verify_job(job, session.datasets))

    def test_reader_on_base_dataset(self, session):
        job = Job(SinkOp(ReaderOp("da"), "i0", ()), phase="join-1")
        assert "P002" in codes(verify_job(job, session.datasets))


class TestP003PhaseTail:
    def test_final_phase_ending_in_sink(self, session):
        job = Job(SinkOp(ScanOp("da", "da"), "i0", ("da.a_id",)), phase="final")
        assert "P003" in codes(verify_job(job, session.datasets))

    def test_materializing_phase_ending_in_distribute(self, session):
        job = Job(DistributeResultOp(ScanOp("da", "da")), phase="pushdown:da")
        assert "P003" in codes(verify_job(job, session.datasets))

    def test_untagged_job_needs_some_tail(self, session):
        job = Job(ScanOp("da", "da"), phase="")
        assert "P003" in codes(verify_job(job, session.datasets))


class TestP004KeyTypes:
    @pytest.fixture
    def typed_session(self, session):
        session.load(
            "names",
            Schema.of(
                ("n_key", DataType.STRING),
                ("n_label", DataType.STRING),
                primary_key=("n_key",),
            ),
            [{"n_key": str(i), "n_label": f"n{i}"} for i in range(10)],
        )
        return session

    def test_int_joined_to_string(self, typed_session):
        plan = JoinNode(
            build=LeafNode("names", "names"),
            probe=LeafNode("fact", "fact"),
            build_keys=("names.n_key",),
            probe_keys=("fact.f_a",),
        )
        assert "P004" in codes(verify_plan(plan, typed_session.datasets))

    def test_numeric_class_is_compatible(self, typed_session):
        # INT-to-INT joins (and the wider numeric/ordinal class) never trip.
        plan = JoinNode(
            build=LeafNode("da", "da"),
            probe=LeafNode("fact", "fact"),
            build_keys=("da.a_id",),
            probe_keys=("fact.f_a",),
        )
        assert codes(verify_plan(plan, typed_session.datasets)) == []


class TestP005BroadcastBudget:
    def plan_args(self, session):
        return dict(
            statistics=session.statistics,
            cluster=session.cluster,
            cost=session.executor.cost,
        )

    def big_build_broadcast(self) -> JoinNode:
        # fact is 2000 stored rows at scale 10_000 — far over the 40 MB
        # broadcast budget; built directly so no decision was recorded.
        return JoinNode(
            build=LeafNode("fact", "fact"),
            probe=LeafNode("da", "da"),
            build_keys=("fact.f_a",),
            probe_keys=("da.a_id",),
            algorithm=JoinAlgorithm.BROADCAST,
        )

    def test_unrecorded_over_budget_broadcast(self, session):
        plan = self.big_build_broadcast()
        assert "P005" in codes(
            verify_plan(plan, session.datasets, **self.plan_args(session))
        )

    def test_recorded_over_budget_broadcast(self, session, toolkit):
        # A rule-produced join mutated to BROADCAST keeps its recorded
        # decision bytes; when those are over budget the rule fires.
        node = fact_da_join(toolkit)
        forced = replace(
            node,
            algorithm=JoinAlgorithm.BROADCAST,
            decided_build_bytes=9e9,
        )
        assert "P005" in codes(
            verify_plan(forced, session.datasets, **self.plan_args(session))
        )

    def test_recorded_decision_is_trusted(self, session):
        # The planner may know better than ingestion statistics (the
        # best-order baseline replays measured runtime sizes): an in-budget
        # record suppresses the re-estimate even when it would be over.
        plan = replace(self.big_build_broadcast(), decided_build_bytes=1000.0)
        assert codes(
            verify_plan(plan, session.datasets, **self.plan_args(session))
        ) == []

    def test_hash_join_never_budget_checked(self, session):
        plan = replace(
            self.big_build_broadcast(), algorithm=JoinAlgorithm.HASH
        )
        assert codes(
            verify_plan(plan, session.datasets, **self.plan_args(session))
        ) == []


class TestP006CartesianJoin:
    def test_join_without_keys(self, session):
        plan = JoinNode(
            build=LeafNode("fact", "fact"),
            probe=LeafNode("da", "da"),
            build_keys=(),
            probe_keys=(),
        )
        assert codes(verify_plan(plan, session.datasets)) == ["P006"]


class TestP007DuplicateOutput:
    def test_project_with_duplicate_columns(self, session):
        root = DistributeResultOp(
            ProjectOp(ScanOp("da", "da"), ("da.a_id", "da.a_id"))
        )
        job = Job(root, phase="final")
        assert "P007" in codes(verify_job(job, session.datasets))

    def test_join_inputs_colliding(self, session):
        # Both sides provide da.* — the row-dict merge would silently
        # overwrite the probe side's values.
        root = DistributeResultOp(
            HashJoinOp(
                ScanOp("da", "da"),
                ScanOp("da", "da"),
                ("da.a_id",),
                ("da.a_id",),
            )
        )
        job = Job(root, phase="final")
        assert "P007" in codes(verify_job(job, session.datasets))

    def test_sink_with_duplicate_keeps(self, session):
        root = SinkOp(ScanOp("da", "da"), "i0", ("da.a_id", "da.a_id"))
        job = Job(root, phase="join-1")
        assert "P007" in codes(verify_job(job, session.datasets))


class TestDiagnostics:
    def test_rule_tables_cover_all_codes(self):
        assert set(PLAN_RULES) == {f"P00{i}" for i in range(1, 8)}
        assert set(QUERY_RULES) == {f"Q00{i}" for i in range(1, 7)}
        assert set(LINT_RULES) == {f"D00{i}" for i in range(1, 5)} | {"W001"}
        assert RULES == {**PLAN_RULES, **QUERY_RULES, **LINT_RULES}

    def test_error_payload(self):
        diagnostics = [
            Diagnostic(code="P002", message="gone", job_label="j", phase="join-1"),
            Diagnostic(code="P006", message="cross", job_label="j", phase="join-1"),
        ]
        error = PlanVerificationError(diagnostics, job_label="j")
        assert error.codes() == ("P002", "P006")
        assert error.diagnostics == tuple(diagnostics)
        assert "P002" in str(error) and "j" in str(error)

    def test_render_mentions_rule_name(self):
        diagnostic = Diagnostic(code="P005", message="too big", job_label="j")
        assert "broadcast-over-budget" in diagnostic.render()
