"""Verify-on-compile gate: on by default, opt-out, zero simulated cost.

The gate sits in ``run_request`` — the single execution seam — so these
tests cover both drive paths (direct pump and scheduler), the
``Session(verify_plans=False)`` opt-out, the raise-on-diagnostics behavior,
and the load-bearing guarantee: verification never changes a single byte of
schedules, metrics, or traces.
"""

from dataclasses import asdict

import pytest

from repro.analysis.dataflow import QUERY_RULES_CHECKED
from repro.analysis.diagnostics import PlanVerificationError
from repro.analysis.runtime import verify_before_launch
from repro.analysis.verifier import RULES_CHECKED_PER_JOB
from repro.engine.job import Job
from repro.engine.metrics import JobMetrics
from repro.engine.operators.scan import ReaderOp
from repro.engine.operators.sink import SinkOp
from repro.engine.scheduler.request import JobRequest
from repro.obs.trace import Tracer
from repro.session import Session
from repro.spec import PlannerSpec

from tests.conftest import build_star_session, star_query

ALL_STRATEGIES = sorted(
    [
        "dynamic",
        "cost_based",
        "from_order",
        "best_order",
        "worst_order",
        "pilot_run",
        "ingres",
        "greedy_static",
    ]
)


def broken_request(session, tracer=None) -> JobRequest:
    job = Job(
        SinkOp(ReaderOp("__q1_i0"), "i1", ()), label="broken", phase="join-1"
    )
    return JobRequest(
        phase="join-1",
        cumulative=JobMetrics(),
        job=job,
        statistics=session.statistics,
        tracer=tracer,
    )


class TestGateDefaultOn:
    def test_execution_verifies_jobs(self):
        session = build_star_session()
        session.execute(star_query())
        stats = session.executor.verifier_stats
        assert stats.jobs_verified > 0
        assert stats.diagnostics_found == 0
        assert stats.wall_seconds > 0.0

    def test_opt_out_skips_gate(self):
        session = build_star_session()
        session.executor.verify_plans = False
        session.execute(star_query())
        assert session.executor.verifier_stats.jobs_verified == 0

    def test_session_kwarg_reaches_executor(self):
        assert Session(verify_plans=False).executor.verify_plans is False
        assert Session().executor.verify_plans is True

    def test_broken_job_raises_before_launch(self):
        session = build_star_session()
        with pytest.raises(PlanVerificationError) as excinfo:
            verify_before_launch(session.executor, broken_request(session))
        assert "P002" in excinfo.value.codes()
        assert excinfo.value.job_label == "broken"

    def test_opt_out_lets_broken_job_through_the_gate(self):
        session = build_star_session()
        session.executor.verify_plans = False
        verify_before_launch(session.executor, broken_request(session))

    def test_virtual_cost_requests_skip_gate(self):
        session = build_star_session()
        request = JobRequest(
            phase="pilot", cumulative=JobMetrics(), virtual_cost=JobMetrics()
        )
        verify_before_launch(session.executor, request)
        assert session.executor.verifier_stats.jobs_verified == 0


class TestTraceAndExplain:
    def test_trace_records_verifications(self):
        session = build_star_session()
        result = session.execute(star_query())
        records = result.trace.verifications
        assert records
        assert all(record.clean for record in records)
        # Per-job gate records, plus exactly one query-level (Q-rule) record
        # appended when the scheduler finished the query.
        job_records = [r for r in records if r.phase != "query"]
        query_records = [r for r in records if r.phase == "query"]
        assert job_records and all(
            record.rules_checked == RULES_CHECKED_PER_JOB
            for record in job_records
        )
        assert len(query_records) == 1
        assert query_records[0].rules_checked == QUERY_RULES_CHECKED
        assert "verifications" in result.trace.to_dict()

    def test_failed_verification_recorded_in_trace(self):
        session = build_star_session()
        tracer = Tracer("broken")
        with pytest.raises(PlanVerificationError):
            verify_before_launch(
                session.executor, broken_request(session, tracer=tracer)
            )
        (record,) = tracer.verifications
        assert not record.clean
        assert "P002" in record.codes

    def test_explain_reports_verifier_summary(self):
        session = build_star_session()
        report = session.explain(star_query())
        assert report.verified_jobs > 0
        assert report.diagnostics == ()
        assert "verifier:" in report.describe()
        assert "clean" in report.describe()


class TestZeroSimulatedCost:
    """Verifier on vs off is byte-identical in everything simulated."""

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_verifier_off_matches_on(self, name):
        on = build_star_session().execute(star_query(), PlannerSpec.of(name))

        off_session = build_star_session()
        off_session.executor.verify_plans = False
        off = off_session.execute(star_query(), PlannerSpec.of(name))

        assert off.rows == on.rows
        assert off.plan_description == on.plan_description
        assert off.phases == on.phases
        assert asdict(off.metrics) == asdict(on.metrics)
        assert off.seconds == on.seconds

    def test_verification_records_are_deterministic(self):
        # Same query twice -> identical verification records (codes and
        # counts only — never host wall time, which would break replays).
        first = build_star_session().execute(star_query())
        second = build_star_session().execute(star_query())
        assert [r.to_dict() for r in first.trace.verifications] == [
            r.to_dict() for r in second.trace.verifications
        ]
