"""DP join enumeration tests."""

import pytest

from repro.algebra.plan import JoinNode
from repro.algebra.toolkit import PlannerToolkit
from repro.common.errors import OptimizationError
from repro.optimizers.enumeration import best_bushy_plan

from tests.conftest import build_star_session, star_query


@pytest.fixture(scope="module")
def session():
    return build_star_session()


class TestEnumeration:
    def test_covers_all_tables(self, session):
        toolkit = PlannerToolkit(star_query(), session)
        plan = best_bushy_plan(toolkit)
        assert plan.aliases == frozenset(("fact", "da", "db", "dc"))

    def test_every_join_has_conditions(self, session):
        toolkit = PlannerToolkit(star_query(), session)
        plan = best_bushy_plan(toolkit)
        for node in plan.join_nodes():
            assert node.build_keys and node.probe_keys

    def test_no_cross_products_possible(self, session):
        from repro.lang.ast import Query, TableRef

        query = Query(
            select=("da.a_id",),
            tables=(TableRef("da", "da"), TableRef("db", "db")),
        )
        with pytest.raises(OptimizationError):
            best_bushy_plan(PlannerToolkit(query, session))

    def test_two_table_query(self, session):
        from repro.lang.builder import QueryBuilder

        query = (
            QueryBuilder()
            .select("fact.f_val")
            .from_table("fact")
            .from_table("da")
            .join("fact.f_a", "da.a_id")
            .build()
        )
        plan = best_bushy_plan(PlannerToolkit(query, session))
        assert isinstance(plan, JoinNode)

    def test_movement_aware_can_differ(self, session):
        toolkit = PlannerToolkit(star_query(), session)
        cout_plan = best_bushy_plan(toolkit)
        aware_plan = best_bushy_plan(toolkit, movement_aware=True)
        # both are valid complete plans (they may or may not coincide)
        assert aware_plan.aliases == cout_plan.aliases

    def test_cheaper_than_worst_by_cout(self, session):
        """DP's plan must be at least as cheap (by its own metric) as any
        single right-deep alternative."""
        from repro.optimizers.from_order import from_order_plan

        toolkit = PlannerToolkit(star_query(), session)
        dp_plan = best_bushy_plan(toolkit)
        linear = from_order_plan(toolkit, honor_hints=False)
        assert toolkit.estimator.cout_cost(dp_plan) <= toolkit.estimator.cout_cost(
            linear
        ) * 1.0001
