"""Optimizer registry and lazy-export tests."""

import pytest

import repro.optimizers as optimizers
from repro.common.errors import OptimizationError


class TestRegistry:
    def test_all_ten_registered(self):
        assert sorted(optimizers.OPTIMIZERS) == [
            "best_order",
            "cost_based",
            "dynamic",
            "from_order",
            "greedy_static",
            "ingres",
            "pilot_run",
            "predicate_transfer",
            "sketch_online",
            "worst_order",
        ]

    def test_available_strategies_matches_registry(self):
        assert optimizers.available_strategies() == tuple(optimizers.OPTIMIZERS)
        # registry (paper-presentation) order: dynamic first
        assert optimizers.available_strategies()[0] == "dynamic"

    def test_make_optimizer(self):
        optimizer = optimizers.make_optimizer("dynamic")
        assert optimizer.name == "dynamic"

    def test_options_forwarded(self):
        optimizer = optimizers.make_optimizer("dynamic", inl_enabled=True)
        assert optimizer.inl_enabled is True

    def test_unknown_rejected(self):
        with pytest.raises(OptimizationError):
            optimizers.make_optimizer("magic")

    def test_lazy_exports(self):
        assert optimizers.DynamicOptimizer.name == "dynamic"
        assert optimizers.PilotRunOptimizer.name == "pilot_run"
        assert callable(optimizers.best_bushy_plan)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            optimizers.NotAThing

    def test_names_match_classes(self):
        for name in optimizers.OPTIMIZERS:
            assert optimizers.optimizer_class(name).name == name
