"""Pilot-run and INGRES-like baseline tests."""

import pytest

from repro.algebra.toolkit import alias_stats_key
from repro.core.driver import DynamicOptimizer
from repro.engine.metrics import JobMetrics
from repro.optimizers.ingres import IngresLikeOptimizer
from repro.optimizers.pilot_run import PilotRunOptimizer, ScaledFieldStatistics
from repro.stats.collector import FieldStatistics
from repro.testing import evaluate_reference, rows_equal_unordered

from tests.conftest import build_star_session, star_query


@pytest.fixture
def session():
    return build_star_session()


class TestScaledFieldStatistics:
    def test_scales_distinct_count(self):
        sample = FieldStatistics("k")
        for i in range(10):
            sample.observe(i)
        scaled = ScaledFieldStatistics.from_sample(sample, 5.0)
        assert scaled.distinct_count == pytest.approx(
            sample.distinct_count * 5.0, rel=0.01
        )

    def test_scale_one_is_identity(self):
        sample = FieldStatistics("k")
        sample.observe(1)
        scaled = ScaledFieldStatistics.from_sample(sample, 1.0)
        assert scaled.distinct_count == sample.distinct_count


class TestPilotRun:
    def test_registers_per_alias_entries(self, session):
        optimizer = PilotRunOptimizer(sample_limit=20)
        metrics = JobMetrics()
        phases = []
        working = optimizer.prepare_statistics(star_query(), session, metrics, phases)
        for alias in star_query().aliases:
            entry = working.get(alias_stats_key(alias))
            assert entry.predicates_applied
        assert metrics.jobs == 4
        assert metrics.startup > 0
        assert phases == [f"pilot:{a}" for a in star_query().aliases]

    def test_sample_estimates_selectivity(self, session):
        optimizer = PilotRunOptimizer(sample_limit=10)
        working = optimizer.prepare_statistics(
            star_query(), session, JobMetrics(), []
        )
        # dc filter keeps 1/3 of rows; sample-based estimate should be close
        entry = working.get(alias_stats_key("dc"))
        assert entry.row_count == pytest.approx(10, rel=0.5)

    def test_no_pushdown_phase(self, session):
        result = PilotRunOptimizer(sample_limit=20).execute(star_query(), session)
        session.reset_intermediates()
        assert not any(p.startswith("pushdown") for p in result.phases)
        assert any(p.startswith("pilot:") for p in result.phases)

    def test_correct_rows(self, session):
        result = PilotRunOptimizer(sample_limit=20).execute(star_query(), session)
        session.reset_intermediates()
        assert rows_equal_unordered(
            result.rows, evaluate_reference(star_query(), session)
        )

    def test_costs_more_than_dynamic_on_equal_plans(self, session):
        pilot = PilotRunOptimizer(sample_limit=20).execute(star_query(), session)
        session.reset_intermediates()
        dynamic = DynamicOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        if pilot.plan_description == dynamic.plan_description:
            assert pilot.seconds > dynamic.seconds * 0.8


class TestIngresLike:
    def test_uses_input_cardinality_rank(self):
        from repro.core.planner import rank_by_input_cardinality

        assert IngresLikeOptimizer().rank is rank_by_input_cardinality

    def test_no_online_sketches(self, session):
        result = IngresLikeOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert result.metrics.stats == 0.0 or result.metrics.stats < 1e-3

    def test_correct_rows(self, session):
        result = IngresLikeOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert rows_equal_unordered(
            result.rows, evaluate_reference(star_query(), session)
        )

    def test_still_decomposes_with_pushdown(self, session):
        result = IngresLikeOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert any(p.startswith("pushdown") for p in result.phases)
