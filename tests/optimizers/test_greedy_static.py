"""Greedy static optimizer tests (the feedback ablation strategy)."""

import pytest

from repro.core.driver import DynamicOptimizer
from repro.optimizers.greedy_static import GreedyStaticOptimizer
from repro.testing import evaluate_reference, rows_equal_unordered

from tests.conftest import build_star_session, star_query


@pytest.fixture
def session():
    return build_star_session()


class TestGreedyStatic:
    def test_single_job(self, session):
        result = GreedyStaticOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert result.metrics.jobs == 1
        assert result.metrics.materialize == 0.0

    def test_correct_rows(self, session):
        result = GreedyStaticOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert rows_equal_unordered(
            result.rows, evaluate_reference(star_query(), session)
        )

    def test_registered(self, session):
        result = session.execute(star_query(), "greedy_static")
        session.reset_intermediates()
        assert result.plan_description

    def test_covers_all_tables(self, session):
        optimizer = GreedyStaticOptimizer()
        optimizer.execute(star_query(), session)
        session.reset_intermediates()
        assert optimizer.last_tree.aliases == frozenset(star_query().aliases)

    def test_ablation_spectrum_on_paper_query(self):
        """greedy_static sits between cost_based and dynamic by construction:
        same search as dynamic, same statistics as cost_based."""
        from repro.bench.runner import run_query

        greedy = run_query("Q50", 100, "greedy_static")
        dynamic = run_query("Q50", 100, "dynamic")
        assert len(greedy.rows) == len(dynamic.rows)
