"""Baseline optimizer behavior tests: from-order, worst, best, static."""

import pytest

from repro.algebra.plan import is_right_deep
from repro.algebra.toolkit import PlannerToolkit
from repro.core.driver import DynamicOptimizer
from repro.optimizers.best_order import BestOrderOptimizer
from repro.optimizers.from_order import FromOrderOptimizer, from_order_plan
from repro.optimizers.static_cost import CostBasedOptimizer
from repro.optimizers.worst_order import (
    WorstOrderOptimizer,
    true_filtered_rows,
    worst_order_aliases,
)
from repro.testing import evaluate_reference, rows_equal_unordered

from tests.conftest import build_star_session, star_query


@pytest.fixture
def session():
    return build_star_session()


class TestFromOrder:
    def test_follows_from_clause_order(self, session):
        toolkit = PlannerToolkit(star_query(), session)
        plan = from_order_plan(toolkit)
        leaves = [l.alias for l in plan.leaves()]
        # fact first, then dims in FROM order, accumulated on the left
        assert leaves == ["fact", "da", "db", "dc"]

    def test_defers_unconnected_tables(self, session):
        from repro.lang.builder import QueryBuilder

        # dims listed before the fact: no dim-dim condition exists, so they
        # defer until fact arrives
        query = (
            QueryBuilder()
            .select("fact.f_val")
            .from_table("da")
            .from_table("db")
            .from_table("fact")
            .join("fact.f_a", "da.a_id")
            .join("fact.f_b", "db.b_id")
            .build()
        )
        toolkit = PlannerToolkit(query, session)
        plan = from_order_plan(toolkit)
        assert plan.aliases == frozenset(("fact", "da", "db"))

    def test_hash_only_without_hints(self, session):
        toolkit = PlannerToolkit(star_query(), session)
        plan = from_order_plan(toolkit)
        assert "⋈b" not in plan.describe()

    def test_hint_triggers_broadcast(self, session):
        from repro.lang.builder import QueryBuilder

        query = (
            QueryBuilder()
            .select("fact.f_val")
            .from_table("fact")
            .from_table("da", broadcast_hint=True)
            .join("fact.f_a", "da.a_id")
            .build()
        )
        toolkit = PlannerToolkit(query, session)
        plan = from_order_plan(toolkit)
        assert "⋈b" in plan.describe()

    def test_executes_correctly(self, session):
        result = FromOrderOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert rows_equal_unordered(
            result.rows, evaluate_reference(star_query(), session)
        )


class TestWorstOrder:
    def test_true_filtered_rows_exact(self, session):
        query = star_query()
        assert true_filtered_rows(query, "dc", session) == 10.0
        assert true_filtered_rows(query, "fact", session) == 2000.0
        # UDF predicate evaluated exactly, not defaulted
        assert true_filtered_rows(query, "db", session) == 8.0

    def test_order_starts_with_biggest_join(self, session):
        toolkit = PlannerToolkit(star_query(), session)
        order = worst_order_aliases(toolkit, session)
        assert set(order) == {"fact", "da", "db", "dc"}
        assert "fact" in order[:2]  # every join touches the fact table

    def test_plan_is_hash_only(self, session):
        optimizer = WorstOrderOptimizer()
        optimizer.execute(star_query(), session)
        session.reset_intermediates()
        description = optimizer.last_tree.describe()
        assert "⋈b" not in description and "⋈i" not in description

    def test_slower_than_dynamic(self, session):
        worst = WorstOrderOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        dynamic = DynamicOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert worst.seconds > dynamic.seconds * 0.8  # star is small; no blowup
        assert rows_equal_unordered(worst.rows, dynamic.rows)


class TestBestOrder:
    def test_replays_dynamic_plan_without_overhead(self, session):
        dynamic = DynamicOptimizer()
        dyn_result = dynamic.execute(star_query(), session)
        session.reset_intermediates()
        best = BestOrderOptimizer(tree=dynamic.last_tree)
        best_result = best.execute(star_query(), session)
        session.reset_intermediates()
        assert best_result.plan_description == dyn_result.plan_description
        assert best_result.seconds <= dyn_result.seconds
        assert best_result.metrics.materialize == 0.0
        assert rows_equal_unordered(best_result.rows, dyn_result.rows)

    def test_scouts_when_no_tree_given(self, session):
        result = BestOrderOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert rows_equal_unordered(
            result.rows, evaluate_reference(star_query(), session)
        )
        # scratch run cleaned up
        assert not any(n.startswith("__") for n in session.datasets.names())


class TestCostBased:
    def test_single_job(self, session):
        result = CostBasedOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert result.metrics.jobs == 1
        assert result.metrics.materialize == 0.0

    def test_correct_rows(self, session):
        result = CostBasedOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert rows_equal_unordered(
            result.rows, evaluate_reference(star_query(), session)
        )

    def test_movement_aware_option(self, session):
        result = CostBasedOptimizer(movement_aware=True).execute(
            star_query(), session
        )
        session.reset_intermediates()
        assert rows_equal_unordered(
            result.rows, evaluate_reference(star_query(), session)
        )
