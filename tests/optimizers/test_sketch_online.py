"""Sketch-online planner tests: determinism, verification, correctness."""

import pytest

from repro.bench.runner import run_query, workbench_for_query
from repro.bench.verify import verify_cell
from repro.spec import PlannerSpec
from repro.testing import evaluate_reference, rows_equal_unordered
from tests.engine.equivalence import run_fingerprint
from repro.engine.vector import ENGINE_ROWWISE


class TestByteDeterminism:
    """Repeated runs must be byte-identical on every observable facet —
    rows, metrics (repr-exact floats), plan, phases, trace and timeline."""

    @pytest.mark.parametrize("label", ("J2", "Q9"))
    def test_repeated_runs_identical(self, label):
        first = run_fingerprint(label, "sketch_online", ENGINE_ROWWISE)
        second = run_fingerprint(label, "sketch_online", ENGINE_ROWWISE)
        assert first == second


class TestVerifierClean:
    @pytest.mark.parametrize("label", ("J1", "J2", "J3"))
    def test_job_suite_zero_diagnostics(self, label):
        row = verify_cell(label, 10, "sketch_online")
        assert row.clean
        assert row.jobs_verified >= 1


class TestCorrectness:
    def test_j2_matches_reference(self):
        bench = workbench_for_query("J2", 10)
        query = bench.query("J2")
        result = run_query("J2", 10, "sketch_online")
        assert rows_equal_unordered(
            result.rows, evaluate_reference(query, bench.session)
        )

    def test_adversarial_j2_matches_dynamic(self):
        sketch = run_query("J2", 10, "sketch_online", skew=1.1, correlation=0.9)
        dynamic = run_query("J2", 10, "dynamic", skew=1.1, correlation=0.9)
        assert rows_equal_unordered(sketch.rows, dynamic.rows)


class TestExecutionShape:
    def test_one_sketch_pass_per_table_then_final(self):
        result = run_query("J2", 10, "sketch_online")
        assert result.phases[-1] == "final"
        sketch_phases = [p for p in result.phases if p.startswith("sketch:")]
        assert len(sketch_phases) == 5  # one per FROM entry of J2
        assert len(result.phases) == 6

    def test_sketch_passes_are_charged(self):
        """The pre-filtering scans cost simulated time (scan + sketch
        maintenance) even though they materialize nothing."""
        result = run_query("J2", 10, "sketch_online")
        assert result.metrics.stats > 0
        assert result.metrics.scan > 0
        assert result.metrics.jobs == 6

    def test_estimates_recorded(self):
        """The final job carries estimate records, so the Q-error report
        can tabulate the strategy."""
        from repro.obs.report import qerror_stats

        result = run_query("J2", 10, "sketch_online")
        assert qerror_stats(result.trace)["records"] >= 1

    def test_plannerspec_accepts_inl(self):
        spec = PlannerSpec.of("sketch_online", inl_enabled=True)
        assert spec.make().inl_enabled is True
