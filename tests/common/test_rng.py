"""Deterministic randomness helpers."""

from repro.common.rng import derive, stable_hash


class TestDerive:
    def test_same_labels_same_stream(self):
        a = derive(42, "x", 1)
        b = derive(42, "x", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_differ(self):
        a = derive(42, "x")
        b = derive(42, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert derive(1, "x").random() != derive(2, "x").random()

    def test_label_path_not_concatenation_ambiguous(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive(7, "ab", "c").random() != derive(7, "a", "bc").random()


class TestStableHash:
    def test_int_stability(self):
        # Frozen values: if these change, partitioning of stored data changes.
        assert stable_hash(0) == stable_hash(0)
        assert stable_hash(12345) != stable_hash(12346)

    def test_string_vs_int_distinct(self):
        assert stable_hash("1") != stable_hash(1)

    def test_negative_ints_supported(self):
        assert isinstance(stable_hash(-17), int)

    def test_spread_over_partitions(self):
        # Keys should spread reasonably over 40 buckets.
        buckets = [0] * 40
        for i in range(4000):
            buckets[stable_hash(i) % 40] += 1
        assert min(buckets) > 50
        assert max(buckets) < 200
