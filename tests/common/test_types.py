"""Schema primitive tests."""

import pytest

from repro.common.errors import SchemaError
from repro.common.types import DataType, Field, Schema


def make_schema():
    return Schema.of(
        ("id", DataType.INT),
        ("name", DataType.STRING),
        ("price", DataType.DOUBLE),
        primary_key=("id",),
    )


class TestField:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            Field("", DataType.INT)

    def test_byte_widths_positive(self):
        for dtype in DataType:
            assert dtype.byte_width > 0

    def test_string_wider_than_int(self):
        assert DataType.STRING.byte_width > DataType.INT.byte_width


class TestSchema:
    def test_field_names_ordered(self):
        assert make_schema().field_names == ("id", "name", "price")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", DataType.INT), ("a", DataType.INT))

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", DataType.INT), primary_key=("missing",))

    def test_has_field(self):
        schema = make_schema()
        assert schema.has_field("name")
        assert not schema.has_field("nope")

    def test_field_type(self):
        assert make_schema().field_type("price") is DataType.DOUBLE

    def test_field_type_unknown_raises(self):
        with pytest.raises(SchemaError):
            make_schema().field_type("nope")

    def test_row_width_includes_header(self):
        schema = make_schema()
        assert schema.row_width == 4 + 24 + 8 + 8

    def test_project_subset_and_order(self):
        projected = make_schema().project(["price", "id"])
        assert projected.field_names == ("price", "id")
        assert projected.primary_key == ("id",)

    def test_project_drops_pk_not_kept(self):
        projected = make_schema().project(["name"])
        assert projected.primary_key == ()

    def test_project_missing_raises(self):
        with pytest.raises(SchemaError):
            make_schema().project(["ghost"])

    def test_concat_merges_and_dedupes(self):
        left = Schema.of(("a", DataType.INT), ("k", DataType.INT))
        right = Schema.of(("k", DataType.INT), ("b", DataType.STRING))
        merged = left.concat(right)
        assert merged.field_names == ("a", "k", "b")
