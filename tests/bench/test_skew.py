"""Skew-sweep experiment tests: the separation regime must exist."""

from repro.bench.skew import (
    ADAPTIVE_OPTIMIZERS,
    SMOKE_CELLS,
    STATIC_OPTIMIZERS,
    format_skew,
    run_skew,
    skew_ok,
)
from repro.optimizers import available_strategies


class TestSkewSweep:
    def test_smoke_grid_shows_separation(self):
        """The PR's acceptance criterion, pinned: in an adversarial cell both
        adaptive planners beat every static strategy on simulated time while
        cost_based's worst Q-error exceeds the replan trigger."""
        cells = run_skew(smoke=True)
        assert len(cells) == len(SMOKE_CELLS) * len(available_strategies())
        assert skew_ok(cells)

    def test_format(self):
        cells = run_skew(cells=((1.3, 0.9),))
        text = format_skew(cells)
        assert "skew=1.3 correlation=0.9" in text
        assert "sketch_online" in text and "[adaptive]" in text
        assert "replan trigger" in text

    def test_sets_disjoint_and_registered(self):
        registered = set(available_strategies())
        assert set(ADAPTIVE_OPTIMIZERS) <= registered
        assert set(STATIC_OPTIMIZERS) <= registered
        assert not set(ADAPTIVE_OPTIMIZERS) & set(STATIC_OPTIMIZERS)

    def test_stock_cell_not_sufficient(self):
        """The stock universe alone must not satisfy the check — the
        condition is specifically about the adversarial regime."""
        cells = run_skew(cells=((0.0, 0.0),))
        assert not skew_ok(cells)
