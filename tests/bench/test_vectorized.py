"""Host-speed regression guard for the vectorized engine.

The vectorized engine exists to buy host time (DESIGN.md §10) — simulated
results are byte-identical to row-wise by construction, so wall-clock is the
only axis a regression can hide on. This test pins a generous ceiling on the
throughput smoke bench and records the measured host time into
``bench_report.txt`` (a local, gitignored artifact), so future PRs leave an
auditable trail of hot-path timings.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter

from repro.bench.throughput import run_throughput

#: Generous wall-clock ceiling: the smoke batch finishes in well under a
#: second on any development machine; the ceiling only trips on an
#: order-of-magnitude hot-path regression (e.g. the fused kernel silently
#: falling back to per-row dict work), not on CI jitter.
CEILING_SECONDS = 120.0

REPORT_PATH = Path(__file__).resolve().parents[2] / "bench_report.txt"


def _record(line: str) -> None:
    with REPORT_PATH.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")


class TestVectorizedHostSpeed:
    def test_smoke_bench_completes_under_ceiling(self):
        started = perf_counter()
        report = run_throughput(
            scale_factor=10, query_count=2, engine="vectorized"
        )
        elapsed = perf_counter() - started
        assert report.engine == "vectorized"
        # host_seconds excludes workbench ingestion; the outer clock bounds
        # the whole call so ingestion regressions are caught too.
        assert 0.0 < report.host_seconds <= elapsed
        assert elapsed < CEILING_SECONDS
        _record(
            "throughput smoke (SF 10, 2 queries, vectorized engine): "
            f"{report.host_seconds:.3f}s engine host time, "
            f"{elapsed:.3f}s including ingestion"
        )

    def test_host_time_recorded(self):
        assert REPORT_PATH.exists()
        lines = REPORT_PATH.read_text(encoding="utf-8").splitlines()
        assert any("vectorized engine" in line for line in lines)
