"""Verifier sweep harness tests (fast SF-10 cells only)."""

from repro.bench.verify import (
    VERIFY_OPTIMIZERS,
    VerifyRow,
    format_verify,
    run_verify,
    verify_cell,
    verify_ok,
)


class TestVerifySweep:
    def test_covers_every_registered_strategy(self):
        from repro.optimizers import OPTIMIZERS

        # Every registered strategy plus the transfer-prelude variant.
        assert VERIFY_OPTIMIZERS == tuple(sorted(OPTIMIZERS)) + (
            "dynamic+transfer",
        )

    def test_transfer_variant_cell_runs_the_prelude(self):
        row = verify_cell("Q8", 10, "dynamic+transfer")
        assert row.clean
        assert row.optimizer == "dynamic+transfer"
        assert row.queries_verified == 1
        # The prelude's reduce jobs push the gate count past plain dynamic's.
        plain = verify_cell("Q8", 10, "dynamic")
        assert row.jobs_verified > plain.jobs_verified

    def test_dynamic_cell_is_clean_and_accounted(self):
        row = verify_cell("Q50", 10, "dynamic")
        assert row.clean
        assert row.jobs_verified > 0
        assert 0.0 < row.verifier_seconds < row.host_seconds

    def test_single_query_sweep(self):
        rows = run_verify(
            scale_factors=(10,),
            queries=("Q8",),
            optimizers=("cost_based", "from_order"),
        )
        assert [row.optimizer for row in rows] == ["cost_based", "from_order"]
        assert verify_ok(rows)
        report = format_verify(rows)
        assert "Q8 @ SF 10" in report
        assert "all runs verified clean (0 diagnostics)" in report

    def test_format_flags_failures(self):
        rows = [
            VerifyRow(
                query="Q9",
                scale_factor=10,
                optimizer="dynamic",
                jobs_verified=3,
                diagnostics=("P002",),
                verifier_seconds=0.001,
                host_seconds=0.1,
            )
        ]
        assert not verify_ok(rows)
        report = format_verify(rows)
        assert "FAILED" in report and "P002" in report
