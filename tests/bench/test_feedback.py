"""The ``feedback`` experiment end to end (smoke configuration).

This is the acceptance check for the feedback extension: on the engineered
skewed universe the policy run must (a) trigger on a Q-error miss, (b)
provably change the join order mid-run, and (c) finish with a lower
simulated total cost than the fixed schedule, refresh job included.
"""

from __future__ import annotations

from repro.bench.feedback import format_feedback, run_feedback


class TestFeedbackExperiment:
    def test_smoke_report(self):
        report = run_feedback(smoke=True)

        fixed, policy = report.skew
        assert fixed.rows == policy.rows  # same answer either way
        assert any(d.action == "replan" for d in policy.decisions)
        assert report.skew_order_changed  # the endgame flipped
        assert report.skew_improvement > 0.0  # and paid for the refresh

        fuse_fixed, fuse_policy = report.fuse
        assert fuse_fixed.rows == fuse_policy.rows
        assert any(d.action == "fuse" for d in fuse_policy.decisions)
        assert fuse_policy.seconds < fuse_fixed.seconds

        assert len(report.adaptive) == 3
        # history accumulated: later runs derive different thresholds
        assert report.adaptive[1].thresholds != report.adaptive[0].thresholds
        assert all(run.triggers >= 1 for run in report.adaptive)

        text = format_feedback(report)
        assert "join order changed mid-run: True" in text
        assert "replan" in text and "fuse" in text
        assert "run 3:" in text

    def test_cli_wires_the_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["feedback", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "Feedback-driven re-planning" in out
        assert "policy decisions" in out
