"""Service experiment smoke tests: skewed load, tail latency, baseline gate."""

import json

from repro.bench import format_service, run_service, service_templates
from repro.bench.service import (
    check_baseline,
    percentile,
    write_baseline,
    zipf_weights,
)


class TestWorkloadShape:
    def test_templates_are_distinct_pushdown_candidates(self):
        templates = service_templates(12)
        assert [label for label, _ in templates] == [f"Q{i}" for i in range(1, 13)]
        described = {query.describe() for _, query in templates}
        assert len(described) == 12
        # every variant carries the two-predicate da filter (candidate rule)
        for _, query in templates:
            da_predicates = [
                p for p in query.predicates if p.column.startswith("da.")
            ]
            assert len(da_predicates) == 2

    def test_zipf_weights_decay(self):
        weights = zipf_weights(5)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile([], 0.99) == 0.0
        assert percentile([7.0], 0.50) == 7.0


class TestServiceRun:
    def test_smoke_run_meets_the_workload_floor(self):
        report = run_service(seed=42, smoke=True)
        assert report.query_count >= 100
        assert report.tenants >= 8
        assert sum(line.queries for line in report.tenant_lines) == report.query_count
        assert all(line.queries >= 1 for line in report.tenant_lines)
        assert 0.0 < report.p50 <= report.p95 <= report.p99
        # skew pays: the hot templates repeat, so most queries are cache hits
        assert report.cache_hit_rate > 0.5
        assert report.result_hits > 0
        assert report.intermediate_hits > 0
        # the re-ingest probe must observe invalidation, not a stale answer
        assert report.invalidations > 0
        assert not report.probe_result_cached
        assert len(report.timeline_tenants) == report.tenants

    def test_runs_are_deterministic(self):
        first = run_service(seed=42, smoke=True)
        second = run_service(seed=42, smoke=True)
        assert first.baseline() == second.baseline()

    def test_report_formats(self):
        report = run_service(seed=42, smoke=True)
        text = format_service(report)
        assert "query service under skew" in text
        assert "p50" in text and "p95" in text and "p99" in text
        assert "result cache" in text
        assert "correctly re-ran" in text
        assert "tenant-0" in text


class TestBaselineGate:
    def test_round_trip_within_tolerance(self, tmp_path):
        report = run_service(seed=42, smoke=True)
        path = tmp_path / "baseline.json"
        write_baseline(report, str(path))
        assert check_baseline(report, str(path)) == []

    def test_drift_detected(self, tmp_path):
        report = run_service(seed=42, smoke=True)
        path = tmp_path / "baseline.json"
        recorded = report.baseline()
        recorded["p99"] = recorded["p99"] * 2.0
        recorded["cache_hit_rate"] = 1.0
        path.write_text(json.dumps(recorded))
        violations = check_baseline(report, str(path))
        assert any("p99" in v for v in violations)
        assert any("cache_hit_rate" in v for v in violations)

    def test_missing_baseline_is_a_violation(self, tmp_path):
        report = run_service(seed=42, smoke=True)
        violations = check_baseline(report, str(tmp_path / "absent.json"))
        assert violations and "no baseline" in violations[0]

    def test_workload_shape_change_detected(self, tmp_path):
        report = run_service(seed=42, smoke=True)
        path = tmp_path / "baseline.json"
        recorded = report.baseline()
        recorded["tenants"] = 4
        path.write_text(json.dumps(recorded))
        violations = check_baseline(report, str(path))
        assert any("tenants" in v for v in violations)


class TestServiceCli:
    def test_cli_smoke_with_baseline_check(self, capsys):
        from repro.bench.__main__ import main

        assert main(["service", "--smoke", "--check-baseline"]) == 0
        out = capsys.readouterr().out
        assert "Query service" in out
        assert "p99" in out
        assert "BASELINE VIOLATION" not in out
