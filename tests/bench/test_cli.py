"""Bench CLI smoke tests (fast subsets only)."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_table1_subset(self, capsys):
        assert main(["table1", "--sf", "100"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "worst_order" in out

    def test_plans_subset(self, capsys):
        assert main(["plans", "--sf", "10"]) == 0
        out = capsys.readouterr().out
        assert "Q50 @ SF 10" in out
        assert "INL enabled" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9000"])

    def test_multiple_experiments(self, capsys):
        assert main(["fig6", "table1", "--sf", "100"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "Table 1" in out
