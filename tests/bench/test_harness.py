"""Benchmark-harness unit tests (fast: SF 10 only)."""

import pytest

from repro.bench.comparison import comparison_row, format_cells
from repro.bench.overhead import OverheadReport, format_reports, overhead_report
from repro.bench.plans import format_matrix, plan_matrix
from repro.bench.runner import (
    COMPARISON_OPTIMIZERS,
    QUERIES,
    run_query,
    workbench,
    workbench_for_query,
)
from repro.bench.table1 import PAPER_TABLE1, improvement_rows, format_rows


class TestRunner:
    def test_workbench_cached(self):
        assert workbench("tpch", 10) is workbench("tpch", 10)

    def test_workbench_for_query(self):
        assert workbench_for_query("Q17", 10).workload == "tpcds"
        assert workbench_for_query("Q8", 10).workload == "tpch"

    def test_query_cached_and_validated(self):
        bench = workbench("tpch", 10)
        assert bench.query("Q9") is bench.query("Q9")
        with pytest.raises(KeyError):
            bench.query("Q17")

    def test_run_query_cleans_up(self):
        bench = workbench_for_query("Q50", 10)
        run_query("Q50", 10, "dynamic")
        assert not any(n.startswith("__") for n in bench.session.datasets.names())

    def test_run_query_inl_creates_indexes(self):
        run_query("Q50", 10, "dynamic", inl_enabled=True)
        bench = workbench_for_query("Q50", 10)
        assert bench.session.datasets.get("store_returns").has_index(
            "sr_returned_date_sk"
        )

    def test_queries_registry_covers_paper(self):
        assert sorted(QUERIES) == ["Q17", "Q50", "Q8", "Q9"]


class TestComparison:
    def test_row_covers_all_optimizers(self):
        cells = comparison_row("Q50", 10)
        assert [c.optimizer for c in cells] == list(COMPARISON_OPTIMIZERS)
        assert all(c.seconds > 0 for c in cells)

    def test_inl_excludes_worst_order(self):
        cells = comparison_row("Q50", 10, inl_enabled=True)
        assert "worst_order" not in [c.optimizer for c in cells]

    def test_format(self):
        text = format_cells(comparison_row("Q50", 10, optimizers=("dynamic",)))
        assert "Q50 @ SF 10" in text and "dynamic" in text


class TestOverhead:
    def test_report_fields(self):
        report = overhead_report("Q50", 10)
        assert report.full_seconds > 0
        assert 0 <= report.reoptimization_fraction < 1
        assert 0 <= report.online_stats_fraction < 1
        assert isinstance(report, OverheadReport)

    def test_format(self):
        report = overhead_report("Q50", 10)
        text = format_reports([report])
        assert "re-opt=" in text and "pushdown=" in text


class TestTable1:
    def test_rows_from_given_cells(self):
        cells = comparison_row("Q50", 100)
        (row,) = improvement_rows(cells, scale_factors=(100,))
        assert set(row.ratios) == {
            "cost_based",
            "best_order",
            "worst_order",
            "pilot_run",
            "ingres",
        }
        assert row.ratios["worst_order"] > 1.0

    def test_paper_reference_table_complete(self):
        for scale_factor, row in PAPER_TABLE1.items():
            assert set(row) == {
                "cost_based",
                "pilot_run",
                "ingres",
                "best_order",
                "worst_order",
            }

    def test_format_includes_paper_row(self):
        cells = comparison_row("Q50", 100)
        text = format_rows(improvement_rows(cells, scale_factors=(100,)))
        assert "paper" in text


class TestPlans:
    def test_matrix_and_format(self):
        entries = plan_matrix((10,), queries=("Q50",))
        assert len(entries) == len(COMPARISON_OPTIMIZERS)
        text = format_matrix(entries)
        assert "Q50 @ SF 10" in text
