"""Throughput experiment smoke tests: batching and space sharing beat serial."""

from repro.bench import format_throughput, run_throughput, throughput_queries


class TestThroughput:
    def test_concurrent_beats_serial(self):
        report = run_throughput(scale_factor=10, query_count=2)
        # run_throughput raises AssertionError itself if any row count
        # differs between modes; here we check the cluster-level win.
        assert report.scans_saved >= 1
        assert report.jobs_saved >= 1
        assert report.concurrent_seconds < report.serial_seconds
        assert report.seconds_saved > 0.0
        assert len(report.serial_lines) == len(report.concurrent_lines) == 2

    def test_space_sharing_beats_serial(self):
        report = run_throughput(scale_factor=10, query_count=2, job_slots=2)
        assert report.job_slots == 2
        assert report.spaceshared_seconds < report.serial_seconds
        assert report.spaceshared_seconds_saved > 0.0
        assert report.spaceshared_scans_saved >= 1
        assert len(report.spaceshared_lines) == 2
        assert all(line.error is None for line in report.spaceshared_lines)

    def test_report_formats(self):
        report = run_throughput(scale_factor=10, query_count=2)
        text = format_throughput(report)
        assert "multi-query throughput" in text
        assert "serial" in text and "concurrent" in text
        assert "sliced" in text
        assert "queue-delay" in text
        assert "T1" in text and "T2" in text

    def test_query_variants_differ(self):
        queries = throughput_queries(4)
        assert [label for label, _ in queries] == ["T1", "T2", "T3", "T4"]
        # Every variant filters orders; odd variants add a lineitem filter.
        preds = [len(q.predicates) for _, q in queries]
        assert preds == [2, 3, 2, 3]


class TestThroughputCli:
    def test_cli_smoke(self, capsys):
        from repro.bench.__main__ import main

        assert main(["throughput", "--sf", "10", "--smoke", "--job-slots", "2"]) == 0
        out = capsys.readouterr().out
        assert "Multi-query throughput" in out
        assert "shared cluster timeline" in out
        assert "sliced ×2" in out
