"""Transfer-experiment tests: both pre-filtering regimes must exist."""

from repro.bench.transfer import (
    SMOKE_WORKLOADS,
    TRANSFER_VARIANTS,
    VARIANTS,
    format_transfer,
    run_transfer,
    transfer_ok,
)
from repro.optimizers import available_strategies


class TestTransferSweep:
    def test_smoke_shows_both_regimes(self):
        """The PR's acceptance criterion, pinned: at least one workload where
        a transfer variant beats plain dynamic on simulated seconds, and at
        least one where dynamic beats both transfer variants."""
        cells = run_transfer(smoke=True)
        assert len(cells) == len(SMOKE_WORKLOADS) * len(VARIANTS)
        assert transfer_ok(cells)

    def test_variants_registered(self):
        registered = set(available_strategies())
        for name, (strategy, _) in VARIANTS.items():
            assert strategy in registered, name
        assert set(TRANSFER_VARIANTS) <= set(VARIANTS)
        assert "dynamic" in VARIANTS

    def test_single_regime_not_sufficient(self):
        """A sweep with only a winning (or only a losing) cell must fail the
        acceptance check — the experiment's point is mapping both regimes."""
        win_only = run_transfer(workloads=(("Q8", 100, 0.0, 0.0),))
        lose_only = run_transfer(workloads=(("Q8", 10, 0.0, 0.0),))
        assert not transfer_ok(win_only)
        assert not transfer_ok(lose_only)
        assert transfer_ok(win_only + lose_only)

    def test_format(self):
        cells = run_transfer(workloads=(("Q8", 10, 0.0, 0.0),))
        text = format_transfer(cells)
        assert "Q8 @ SF 10" in text
        assert "predicate_transfer" in text and "dynamic+transfer" in text
        assert "vs dynamic" in text

    def test_identical_rows_across_variants(self):
        """Bloom filters are false-positive-only, so every variant returns
        the same result rows on the same workload."""
        cells = run_transfer(workloads=(("Q8", 100, 0.0, 0.0),))
        assert len({cell.rows for cell in cells}) == 1
        assert cells[0].rows > 0


class TestEngineIdentity:
    """Satellite: the bench smoke paths under ``--engine rowwise`` must
    report byte-identical simulated fields to the vectorized default."""

    def test_transfer_cells_engine_independent(self):
        workload = (("Q8", 10, 0.0, 0.0),)
        rows = run_transfer(workloads=workload, engine="rowwise")
        vec = run_transfer(workloads=workload, engine="vectorized")
        assert rows == vec  # frozen dataclasses: full field-wise identity

    def test_skew_cells_engine_independent(self):
        from repro.bench.skew import run_skew

        cells = ((1.3, 0.9),)
        optimizers = ("dynamic", "predicate_transfer")
        rows = run_skew(cells=cells, optimizers=optimizers, engine="rowwise")
        vec = run_skew(cells=cells, optimizers=optimizers, engine="vectorized")
        assert rows == vec
