"""Equi-height histogram selectivity tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StatisticsError
from repro.sketches.gk import GKQuantileSketch
from repro.sketches.histogram import EquiHeightHistogram


def uniform_histogram(n=10_000, buckets=32, seed=1):
    rng = random.Random(seed)
    return EquiHeightHistogram.from_values(
        [rng.uniform(0, 100) for _ in range(n)], buckets
    )


class TestConstruction:
    def test_empty_values_rejected(self):
        with pytest.raises(StatisticsError):
            EquiHeightHistogram.from_values([])

    def test_empty_sketch_rejected(self):
        with pytest.raises(StatisticsError):
            EquiHeightHistogram.from_sketch(GKQuantileSketch())

    def test_bucket_count_capped_by_values(self):
        histogram = EquiHeightHistogram.from_values([1.0, 2.0], 32)
        assert len(histogram.buckets) == 2

    def test_from_sketch_covers_range(self):
        sketch = GKQuantileSketch(0.01)
        sketch.extend(range(1000))
        histogram = EquiHeightHistogram.from_sketch(sketch, 16)
        assert histogram.minimum == 0
        assert histogram.buckets[-1].upper == 999


class TestSelectivity:
    def test_range_full_domain(self):
        assert uniform_histogram().selectivity_range(None, None) == pytest.approx(1.0)

    def test_range_half(self):
        histogram = uniform_histogram()
        assert histogram.selectivity_range(None, 50.0) == pytest.approx(0.5, abs=0.05)

    def test_range_below_domain_zero(self):
        assert uniform_histogram().selectivity_range(None, -5.0) == 0.0

    def test_range_interval(self):
        histogram = uniform_histogram()
        assert histogram.selectivity_range(25.0, 75.0) == pytest.approx(0.5, abs=0.06)

    def test_equality_small(self):
        histogram = uniform_histogram()
        assert 0.0 <= histogram.selectivity_equals(50.0) < 0.05

    def test_equality_out_of_domain(self):
        assert uniform_histogram().selectivity_equals(1000.0) == 0.0

    def test_comparison_operators(self):
        histogram = uniform_histogram()
        le = histogram.selectivity_comparison("<=", 30.0)
        gt = histogram.selectivity_comparison(">", 30.0)
        assert le == pytest.approx(0.3, abs=0.05)
        assert le + gt == pytest.approx(1.0, abs=1e-6)

    def test_eq_plus_ne_is_one(self):
        histogram = uniform_histogram()
        eq = histogram.selectivity_comparison("=", 42.0)
        ne = histogram.selectivity_comparison("!=", 42.0)
        assert eq + ne == pytest.approx(1.0)

    def test_lt_plus_ge_is_one(self):
        histogram = uniform_histogram()
        lt = histogram.selectivity_comparison("<", 60.0)
        ge = histogram.selectivity_comparison(">=", 60.0)
        assert lt + ge == pytest.approx(1.0, abs=1e-6)

    def test_unknown_operator_rejected(self):
        with pytest.raises(StatisticsError):
            uniform_histogram().selectivity_comparison("~", 1.0)

    def test_integer_equality_on_small_domain(self):
        # d_moy-like column: 12 distinct ints, equality ~1/12.
        values = [i % 12 + 1 for i in range(12_000)]
        histogram = EquiHeightHistogram.from_values(values, 12)
        assert histogram.selectivity_equals(6) == pytest.approx(1 / 12, abs=0.1)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200),
        st.floats(min_value=-1e6, max_value=1e6),
        st.floats(min_value=-1e6, max_value=1e6),
    )
    def test_fraction_leq_monotone_property(self, values, a, b):
        histogram = EquiHeightHistogram.from_values(values, 8)
        lo, hi = min(a, b), max(a, b)
        assert histogram._fraction_leq(lo) <= histogram._fraction_leq(hi) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=5, max_size=300))
    def test_selectivities_clamped_property(self, values):
        histogram = EquiHeightHistogram.from_values(values, 8)
        for op in ("=", "!=", "<", "<=", ">", ">="):
            sel = histogram.selectivity_comparison(op, 500.0)
            assert 0.0 <= sel <= 1.0
