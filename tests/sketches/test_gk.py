"""Greenwald-Khanna quantile sketch tests, including the epsilon rank bound."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StatisticsError
from repro.sketches.gk import GKQuantileSketch


class TestValidation:
    def test_epsilon_bounds(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(StatisticsError):
                GKQuantileSketch(bad)

    def test_empty_quantile_raises(self):
        with pytest.raises(StatisticsError):
            GKQuantileSketch().quantile(0.5)

    def test_quantile_fraction_bounds(self):
        sketch = GKQuantileSketch()
        sketch.add(1.0)
        with pytest.raises(StatisticsError):
            sketch.quantile(1.5)

    def test_buckets_positive(self):
        sketch = GKQuantileSketch()
        sketch.add(1.0)
        with pytest.raises(StatisticsError):
            sketch.quantiles(0)

    def test_empty_min_max_raise(self):
        with pytest.raises(StatisticsError):
            GKQuantileSketch().minimum
        with pytest.raises(StatisticsError):
            GKQuantileSketch().maximum


class TestBasics:
    def test_count_tracks_inserts(self):
        sketch = GKQuantileSketch()
        sketch.extend(range(100))
        assert len(sketch) == 100

    def test_min_max_exact(self):
        sketch = GKQuantileSketch(0.05)
        values = [random.Random(1).uniform(-50, 50) for _ in range(1000)]
        sketch.extend(values)
        assert sketch.minimum == min(values)
        assert sketch.maximum == max(values)

    def test_single_value(self):
        sketch = GKQuantileSketch()
        sketch.add(7.0)
        assert sketch.quantile(0.0) == 7.0
        assert sketch.quantile(1.0) == 7.0

    def test_quantiles_are_monotone(self):
        sketch = GKQuantileSketch(0.02)
        sketch.extend(random.Random(2).gauss(0, 1) for _ in range(5000))
        borders = sketch.quantiles(16)
        assert borders == sorted(borders)
        assert borders[-1] == sketch.maximum

    def test_rank_monotone(self):
        sketch = GKQuantileSketch(0.02)
        sketch.extend(range(1000))
        assert sketch.rank(-1) == 0
        assert sketch.rank(2000) == 1000
        assert sketch.rank(100) <= sketch.rank(500)

    def test_summary_much_smaller_than_stream(self):
        sketch = GKQuantileSketch(0.01)
        sketch.extend(random.Random(3).random() for _ in range(50_000))
        assert sketch.summary_size() < 5_000


class TestAccuracy:
    def test_uniform_quantiles_within_epsilon(self):
        epsilon = 0.01
        n = 20_000
        sketch = GKQuantileSketch(epsilon)
        rng = random.Random(4)
        values = [rng.random() for _ in range(n)]
        sketch.extend(values)
        ordered = sorted(values)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            estimate = sketch.quantile(q)
            true_rank = q * (n - 1)
            # locate estimate's true rank; must be within ~2*eps*n
            import bisect

            est_rank = bisect.bisect_left(ordered, estimate)
            assert abs(est_rank - true_rank) <= 2 * epsilon * n + 1

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=1,
            max_size=400,
        )
    )
    def test_rank_error_bound_property(self, values):
        epsilon = 0.05
        sketch = GKQuantileSketch(epsilon)
        sketch.extend(values)
        ordered = sorted(values)
        n = len(values)
        for q in (0.0, 0.5, 1.0):
            estimate = sketch.quantile(q)
            import bisect

            lo = bisect.bisect_left(ordered, estimate)
            hi = bisect.bisect_right(ordered, estimate)
            target = q * (n - 1)
            slack = 2 * epsilon * n + 1
            assert lo - slack <= target <= hi + slack


class TestMerge:
    def test_merge_counts(self):
        a, b = GKQuantileSketch(0.02), GKQuantileSketch(0.02)
        a.extend(range(500))
        b.extend(range(500, 1000))
        merged = a.merge(b)
        assert len(merged) == 1000
        assert merged.minimum == 0
        assert merged.maximum == 999

    def test_merge_median_close(self):
        rng = random.Random(5)
        a, b = GKQuantileSketch(0.02), GKQuantileSketch(0.02)
        values = [rng.gauss(10, 2) for _ in range(10_000)]
        for i, value in enumerate(values):
            (a if i % 2 else b).add(value)
        merged = a.merge(b)
        true_median = sorted(values)[5000]
        assert abs(merged.quantile(0.5) - true_median) < 0.5

    def test_merge_keeps_looser_epsilon(self):
        a, b = GKQuantileSketch(0.01), GKQuantileSketch(0.05)
        a.add(1.0)
        b.add(2.0)
        assert a.merge(b).epsilon == 0.05

    def test_merge_does_not_mutate_inputs(self):
        a, b = GKQuantileSketch(), GKQuantileSketch()
        a.extend(range(10))
        b.extend(range(10))
        a.merge(b)
        assert len(a) == 10
        assert len(b) == 10
