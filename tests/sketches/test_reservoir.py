"""Reservoir sample tests."""

import pytest

from repro.common.errors import StatisticsError
from repro.sketches.reservoir import ReservoirSample


class TestReservoir:
    def test_capacity_validated(self):
        with pytest.raises(StatisticsError):
            ReservoirSample(0)

    def test_under_capacity_keeps_all(self):
        sample = ReservoirSample(10)
        sample.extend(range(5))
        assert sorted(sample.items) == [0, 1, 2, 3, 4]
        assert sample.sampling_fraction == 1.0

    def test_capacity_respected(self):
        sample = ReservoirSample(10)
        sample.extend(range(1000))
        assert len(sample.items) == 10
        assert sample.seen == 1000
        assert sample.sampling_fraction == pytest.approx(0.01)

    def test_deterministic_under_seed(self):
        a, b = ReservoirSample(5, seed=9), ReservoirSample(5, seed=9)
        a.extend(range(100))
        b.extend(range(100))
        assert a.items == b.items

    def test_different_seeds_differ(self):
        a, b = ReservoirSample(5, seed=1), ReservoirSample(5, seed=2)
        a.extend(range(1000))
        b.extend(range(1000))
        assert a.items != b.items

    def test_items_are_a_copy(self):
        sample = ReservoirSample(3)
        sample.extend(range(3))
        sample.items.append(99)
        assert len(sample.items) == 3

    def test_roughly_uniform(self):
        # Every element should appear with probability ~k/n across seeds.
        hits = [0] * 100
        for seed in range(200):
            sample = ReservoirSample(10, seed=seed)
            sample.extend(range(100))
            for item in sample.items:
                hits[item] += 1
        # expectation 20 each; allow wide tolerance
        assert min(hits) > 5
        assert max(hits) < 45
