"""HyperLogLog distinct-count tests, including the relative error bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StatisticsError
from repro.sketches.hyperloglog import HyperLogLog


class TestValidation:
    def test_precision_bounds(self):
        for bad in (3, 19, 0):
            with pytest.raises(StatisticsError):
                HyperLogLog(bad)

    def test_merge_precision_mismatch(self):
        with pytest.raises(StatisticsError):
            HyperLogLog(10).merge(HyperLogLog(12))


class TestAccuracy:
    def test_empty_is_zero(self):
        assert HyperLogLog().cardinality() == 0.0

    def test_small_exact_via_linear_counting(self):
        hll = HyperLogLog(12)
        for i in range(50):
            hll.add(i)
        assert abs(hll.cardinality() - 50) <= 2

    def test_duplicates_ignored(self):
        hll = HyperLogLog(12)
        for _ in range(10_000):
            hll.add("same")
        assert abs(hll.cardinality() - 1) <= 0.5

    @pytest.mark.parametrize("true_count", (1000, 10_000, 100_000))
    def test_relative_error(self, true_count):
        hll = HyperLogLog(12)
        for i in range(true_count):
            hll.add(i)
        estimate = hll.cardinality()
        # expected relative std error ~1.6%; allow 5 sigma
        assert abs(estimate - true_count) / true_count < 5 * hll.relative_error

    def test_strings_and_ints_distinct_domains(self):
        hll = HyperLogLog(12)
        for i in range(500):
            hll.add(i)
            hll.add(str(i))
        assert abs(hll.cardinality() - 1000) < 100

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.integers(), min_size=0, max_size=300))
    def test_linear_regime_property(self, values):
        hll = HyperLogLog(12)
        for value in values:
            hll.add(value)
        if values:
            assert abs(hll.cardinality() - len(values)) <= max(3, 0.1 * len(values))


class TestMerge:
    def test_merge_equals_union(self):
        a, b = HyperLogLog(12), HyperLogLog(12)
        for i in range(3000):
            a.add(i)
        for i in range(1500, 4500):
            b.add(i)
        union = a.merge(b).cardinality()
        assert abs(union - 4500) / 4500 < 0.08

    def test_merge_idempotent_on_same_stream(self):
        a, b = HyperLogLog(12), HyperLogLog(12)
        for i in range(2000):
            a.add(i)
            b.add(i)
        assert abs(a.merge(b).cardinality() - a.cardinality()) < 1e-9

    def test_merge_does_not_mutate(self):
        a, b = HyperLogLog(12), HyperLogLog(12)
        a.add(1)
        b.add(2)
        a.merge(b)
        assert abs(a.cardinality() - 1) <= 0.5

    def test_len_counts_raw_insertions(self):
        hll = HyperLogLog(12)
        for _ in range(7):
            hll.add("x")
        assert len(hll) == 7
