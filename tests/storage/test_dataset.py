"""Dataset / partitioning / index tests."""

import pytest

from repro.common.errors import SchemaError
from repro.common.rng import stable_hash
from repro.common.types import DataType, Schema
from repro.storage.dataset import Dataset, partition_rows
from repro.storage.index import SecondaryIndex

SCHEMA = Schema.of(
    ("id", DataType.INT), ("grp", DataType.INT), primary_key=("id",)
)


def make_dataset(n=100, partitions=8, key="id", intermediate=False, scale=1.0):
    rows = [{"id": i, "grp": i % 5} for i in range(n)]
    return Dataset(
        name="t",
        schema=SCHEMA,
        partitions=partition_rows(rows, partitions, key),
        partition_key=key,
        is_intermediate=intermediate,
        scale=scale,
    )


class TestPartitioning:
    def test_all_rows_present(self):
        dataset = make_dataset(123)
        assert dataset.row_count == 123
        assert sorted(r["id"] for r in dataset.rows()) == list(range(123))

    def test_hash_partitioning_is_by_stable_hash(self):
        dataset = make_dataset(50, partitions=4)
        for pid, partition in enumerate(dataset.partitions):
            for row in partition:
                assert stable_hash(row["id"]) % 4 == pid

    def test_colocation_of_equal_keys(self):
        rows = [{"id": 7, "grp": i} for i in range(20)]
        partitions = partition_rows(rows, 8, "id")
        non_empty = [p for p in partitions if p]
        assert len(non_empty) == 1

    def test_round_robin_without_key(self):
        partitions = partition_rows([{"id": i} for i in range(8)], 4, None)
        assert [len(p) for p in partitions] == [2, 2, 2, 2]

    def test_byte_size_and_modeled_rows(self):
        dataset = make_dataset(10, scale=100.0)
        assert dataset.byte_size == 10 * SCHEMA.row_width
        assert dataset.modeled_rows == 1000.0


class TestSecondaryIndexes:
    def test_create_and_lookup(self):
        dataset = make_dataset(100, partitions=4)
        dataset.create_index("grp")
        assert dataset.has_index("grp")
        found = []
        for pid in range(4):
            index = dataset.index_for("grp", pid)
            for pos in index.lookup(3):
                found.append(dataset.partitions[pid][pos])
        assert sorted(r["id"] for r in found) == [i for i in range(100) if i % 5 == 3]

    def test_lookup_missing_key_empty(self):
        dataset = make_dataset(10, partitions=2)
        dataset.create_index("grp")
        assert dataset.index_for("grp", 0).lookup(999) == []

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            make_dataset().create_index("ghost")

    def test_intermediates_cannot_be_indexed(self):
        dataset = make_dataset(intermediate=True)
        with pytest.raises(SchemaError):
            dataset.create_index("grp")

    def test_index_skips_null_keys(self):
        index = SecondaryIndex.build([{"k": None}, {"k": 1}], "k")
        assert len(index) == 1
        assert index.lookup(None) == []

    def test_index_len(self):
        index = SecondaryIndex.build([{"k": 1}, {"k": 1}, {"k": 2}], "k")
        assert len(index) == 3
