"""Ingestion and catalog tests."""

import pytest

from repro.cluster.config import default_cluster
from repro.common.errors import CatalogError
from repro.common.types import DataType, Schema
from repro.stats.catalog import StatisticsCatalog
from repro.storage.catalog import DatasetCatalog
from repro.storage.dataset import Dataset
from repro.storage.ingest import load_dataset, register_intermediate

SCHEMA = Schema.of(("id", DataType.INT), ("v", DataType.INT), primary_key=("id",))


def setup():
    return default_cluster(), DatasetCatalog(), StatisticsCatalog()


def load(n=100, scale=1.0):
    cluster, datasets, statistics = setup()
    rows = [{"id": i, "v": i % 7} for i in range(n)]
    dataset = load_dataset("t", SCHEMA, rows, cluster, datasets, statistics, scale=scale)
    return dataset, datasets, statistics


class TestLoadDataset:
    def test_partition_count_matches_cluster(self):
        dataset, _, _ = load()
        assert dataset.partition_count == default_cluster().partitions

    def test_statistics_registered(self):
        _, _, statistics = load(200)
        stats = statistics.get("t")
        assert stats.row_count == 200
        assert abs(stats.distinct_count("v") - 7) <= 1

    def test_scale_threaded_through(self):
        dataset, _, statistics = load(scale=50.0)
        assert dataset.scale == 50.0
        assert statistics.get("t").scale == 50.0

    def test_partitioned_on_primary_key(self):
        dataset, _, _ = load()
        assert dataset.partition_key == "id"

    def test_duplicate_name_rejected(self):
        cluster, datasets, statistics = setup()
        load_dataset("t", SCHEMA, [], cluster, datasets, statistics)
        with pytest.raises(CatalogError):
            load_dataset("t", SCHEMA, [], cluster, datasets, statistics)


class TestIntermediates:
    def test_register_and_replace(self):
        _, datasets, _ = load()
        inter = register_intermediate(
            "i1", SCHEMA, [[{"id": 1, "v": 2}]], "id", datasets, scale=3.0
        )
        assert inter.is_intermediate
        assert inter.scale == 3.0
        register_intermediate("i1", SCHEMA, [[]], None, datasets)
        assert datasets.get("i1").row_count == 0

    def test_drop_intermediates(self):
        _, datasets, _ = load()
        register_intermediate("i1", SCHEMA, [[]], None, datasets)
        register_intermediate("i2", SCHEMA, [[]], None, datasets)
        dropped = datasets.drop_intermediates()
        assert sorted(dropped) == ["i1", "i2"]
        assert datasets.has("t")


class TestDatasetCatalog:
    def test_get_missing_raises(self):
        with pytest.raises(CatalogError):
            DatasetCatalog().get("nope")

    def test_schema_lookup(self):
        _, datasets, _ = load()
        assert datasets.schema_lookup("t") is SCHEMA

    def test_drop(self):
        _, datasets, _ = load()
        datasets.drop("t")
        assert not datasets.has("t")

    def test_names(self):
        _, datasets, _ = load()
        assert datasets.names() == ["t"]
