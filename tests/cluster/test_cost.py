"""Cost model tests: monotonicity, crossovers, spill behavior."""

import pytest

from repro.cluster.config import ClusterConfig, default_cluster
from repro.cluster.cost import CostModel, CostParameters


@pytest.fixture
def cost():
    return CostModel(default_cluster())


class TestBasicCharges:
    def test_scan_monotone_in_rows(self, cost):
        assert cost.scan(2000, 40) > cost.scan(1000, 40)

    def test_scan_monotone_in_width(self, cost):
        assert cost.scan(1000, 80) > cost.scan(1000, 40)

    def test_partitioned_work_scales_down_with_partitions(self):
        small = CostModel(ClusterConfig(nodes=1, cores_per_node=1))
        big = CostModel(ClusterConfig(nodes=10, cores_per_node=4))
        assert big.scan(10_000, 40) < small.scan(10_000, 40)

    def test_broadcast_build_not_parallel(self, cost):
        # Every partition builds the whole table: full-size charge.
        assert cost.broadcast_build(1000) == pytest.approx(
            cost.hash_build(1000) * cost.cluster.partitions
        )

    def test_zero_rows_zero_cost(self, cost):
        assert cost.scan(0, 40) == 0.0
        assert cost.hash_exchange(0, 40) == 0.0
        assert cost.materialize(0, 40) == 0.0

    def test_read_equals_write_for_materialized(self, cost):
        assert cost.read_materialized(500, 40) == cost.materialize(500, 40)

    def test_statistics_scales_with_fields(self, cost):
        assert cost.statistics(1000, 4) == pytest.approx(cost.statistics(1000, 2) * 2)

    def test_job_startup_constant(self, cost):
        assert cost.job_startup() == cost.params.job_startup


class TestAlgorithmCrossovers:
    def test_broadcast_beats_hash_for_tiny_build(self, cost):
        """Broadcasting a dimension table avoids re-shuffling the fact side."""
        dim_rows, fact_rows, width = 2_000, 10_000_000, 40
        broadcast = cost.broadcast_exchange(dim_rows, width) + cost.broadcast_build(
            dim_rows
        )
        hash_path = (
            cost.hash_exchange(dim_rows, width)
            + cost.hash_exchange(fact_rows, width)
            + cost.hash_build(dim_rows)
        )
        assert broadcast < hash_path

    def test_hash_beats_broadcast_for_balanced_sides(self, cost):
        rows, width = 5_000_000, 40
        broadcast = cost.broadcast_exchange(rows, width) + cost.broadcast_build(rows)
        hash_path = (
            cost.hash_exchange(rows, width) * 2 + cost.hash_build(rows)
        )
        assert hash_path < broadcast

    def test_inl_beats_scan_for_few_lookups(self, cost):
        lookups = 2_000
        inner_rows = 100_000_000
        assert cost.index_lookups(lookups) < cost.scan(inner_rows, 40)

    def test_inl_loses_for_many_lookups(self, cost):
        lookups = 50_000_000
        inner_rows = 10_000_000
        assert cost.index_lookups(lookups) > cost.scan(inner_rows, 40)


class TestSpill:
    def test_no_spill_under_capacity(self, cost):
        assert cost.spill(cost.join_memory_bytes * 0.99, 1e9) == 0.0

    def test_spill_grows_with_build(self, cost):
        cap = cost.join_memory_bytes
        assert cost.spill(cap * 4, 1e9) > cost.spill(cap * 2, 1e9) > 0.0

    def test_spill_grows_with_probe(self, cost):
        cap = cost.join_memory_bytes
        assert cost.spill(cap * 2, 2e9) > cost.spill(cap * 2, 1e9)

    def test_spill_zero_for_empty_build(self, cost):
        assert cost.spill(0, 1e9) == 0.0

    def test_join_memory_is_budget_times_partitions(self, cost):
        expected = cost.cluster.broadcast_threshold_bytes * cost.cluster.partitions
        assert cost.join_memory_bytes == expected


class TestParameters:
    def test_custom_parameters_flow_through(self):
        cost = CostModel(default_cluster(), CostParameters(cpu_tuple=1.0))
        assert cost.probe(40) == pytest.approx(1.0)

    def test_defaults_are_frozen(self):
        with pytest.raises(AttributeError):
            CostParameters().cpu_tuple = 1.0


class TestPartitionSlices:
    """with_partitions: the space-shared scheduler's per-job cost view."""

    def test_full_width_slice_is_the_same_object(self, cost):
        assert cost.with_partitions(cost.cluster.partitions) is cost
        assert cost.with_partitions(cost.cluster.partitions * 2) is cost

    def test_slice_reports_its_width(self, cost):
        assert cost.partitions == cost.cluster.partitions
        assert cost.with_partitions(10).partitions == 10

    def test_partitioned_work_stretches_with_narrower_slice(self, cost):
        half = cost.with_partitions(cost.cluster.partitions // 2)
        assert half.scan(10_000, 40) == pytest.approx(2 * cost.scan(10_000, 40))
        assert half.probe(10_000) == pytest.approx(2 * cost.probe(10_000))
        assert half.hash_exchange(10_000, 40) == pytest.approx(
            2 * cost.hash_exchange(10_000, 40)
        )

    def test_non_scalable_charges_unchanged(self, cost):
        half = cost.with_partitions(cost.cluster.partitions // 2)
        assert half.broadcast_exchange(1000, 40) == cost.broadcast_exchange(1000, 40)
        assert half.broadcast_build(1000) == cost.broadcast_build(1000)
        assert half.index_lookups(1000) == cost.index_lookups(1000)
        assert half.job_startup() == cost.job_startup()

    def test_join_memory_shrinks_with_slice(self, cost):
        half = cost.with_partitions(cost.cluster.partitions // 2)
        assert half.join_memory_bytes == pytest.approx(cost.join_memory_bytes / 2)

    def test_slice_raises_spill_pressure(self, cost):
        # A build that fits the full cluster's budget spills on a slice.
        build = cost.join_memory_bytes * 0.75
        assert cost.spill(build, build) == 0.0
        narrow = cost.with_partitions(cost.cluster.partitions // 2)
        assert narrow.spill(build, build) > 0.0

    def test_slice_keeps_explicit_join_budget_override(self):
        model = CostModel(default_cluster(), join_budget_bytes=1e6)
        sliced = model.with_partitions(10)
        assert sliced.join_budget_bytes == 1e6
        assert sliced.join_memory_bytes == pytest.approx(1e6 * 10)

    def test_slice_clamped_to_cluster(self, cost):
        wide = cost.with_partitions(5).with_partitions(10_000)
        assert wide.partitions == cost.cluster.partitions

    def test_invalid_slice_rejected(self, cost):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            CostModel(default_cluster(), partitions=0)
        assert cost.with_partitions(0).partitions == 1  # clamped, not rejected
