"""Cluster configuration tests."""

import pytest

from repro.cluster.config import ClusterConfig, default_cluster
from repro.common.errors import ReproError


class TestClusterConfig:
    def test_default_matches_paper(self):
        cluster = default_cluster()
        assert cluster.nodes == 10
        assert cluster.cores_per_node == 4
        assert cluster.partitions == 40

    def test_default_broadcast_budget(self):
        assert default_cluster().broadcast_threshold_bytes == 40e6

    def test_fraction_based_threshold(self):
        cluster = ClusterConfig(memory_per_node_mb=1024, broadcast_memory_fraction=0.5)
        assert cluster.broadcast_threshold_bytes == 512 * 1024 * 1024

    def test_override_wins_over_fraction(self):
        cluster = ClusterConfig(broadcast_budget_bytes=123.0)
        assert cluster.broadcast_threshold_bytes == 123.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"cores_per_node": 0},
            {"memory_per_node_mb": 0},
            {"broadcast_memory_fraction": 0.0},
            {"broadcast_memory_fraction": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            ClusterConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            default_cluster().nodes = 5
