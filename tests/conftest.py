"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import settings

from repro.cluster.config import ClusterConfig

# Property-test budgets: CI runs a capped profile (select it with
# `pytest --hypothesis-profile=ci`); the default stays at hypothesis's
# stock example count for local runs.
settings.register_profile("ci", max_examples=25, deadline=None)
settings.register_profile("thorough", max_examples=500)
from repro.common.types import DataType, Schema
from repro.lang.builder import QueryBuilder
from repro.session import Session


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--engine",
        choices=("rowwise", "vectorized"),
        default=None,
        help=(
            "execution engine the whole suite runs against (sets the "
            "process default; sessions that pick explicitly are unaffected). "
            "Default: the REPRO_ENGINE env var, else vectorized."
        ),
    )


def pytest_configure(config: pytest.Config) -> None:
    engine = config.getoption("--engine")
    if engine is not None:
        from repro.engine.vector import set_default_engine

        set_default_engine(engine)


def small_cluster() -> ClusterConfig:
    """A 2x2 cluster keeps tests fast while still exercising partitioning."""
    return ClusterConfig(nodes=2, cores_per_node=2, broadcast_budget_bytes=40e6)


FACT_SCHEMA = Schema.of(
    ("f_id", DataType.INT),
    ("f_a", DataType.INT),
    ("f_b", DataType.INT),
    ("f_c", DataType.INT),
    ("f_val", DataType.INT),
    primary_key=("f_id",),
)


def dim_schema(prefix: str) -> Schema:
    return Schema.of(
        (f"{prefix}_id", DataType.INT),
        (f"{prefix}_attr", DataType.INT),
        primary_key=(f"{prefix}_id",),
    )


def load_star_data(target, fact_rows: int = 2000, seed: int = 7) -> None:
    """Load the star universe into anything with ``.load`` (Session/service)."""
    rng = random.Random(seed)
    target.load(
        "fact",
        FACT_SCHEMA,
        [
            {
                "f_id": i,
                "f_a": rng.randrange(50),
                "f_b": rng.randrange(40),
                "f_c": rng.randrange(30),
                "f_val": rng.randrange(1000),
            }
            for i in range(fact_rows)
        ],
        scale=10_000.0,
    )
    target.load(
        "da", dim_schema("a"), [{"a_id": i, "a_attr": i % 7} for i in range(50)]
    )
    target.load(
        "db", dim_schema("b"), [{"b_id": i, "b_attr": i % 5} for i in range(40)]
    )
    target.load(
        "dc", dim_schema("c"), [{"c_id": i, "c_attr": i % 3} for i in range(30)]
    )


def build_star_session(
    fact_rows: int = 2000, seed: int = 7, cluster: ClusterConfig | None = None
) -> Session:
    """A fact table with three dimensions — the workhorse test universe."""
    session = Session(cluster or small_cluster())
    load_star_data(session, fact_rows=fact_rows, seed=seed)
    return session


def star_query(**kwargs):
    """Three-join star query with a mix of predicate kinds."""
    builder = (
        QueryBuilder()
        .select("fact.f_val", "da.a_attr")
        .from_table("fact")
        .from_table("da")
        .from_table("db")
        .from_table("dc")
        .where_eq("da.a_attr", 2)
        .where_udf("mymod10", "db.b_attr", "=", 1)
        .where_compare("dc.c_attr", ">=", 1)
        .where_compare("dc.c_attr", "<=", 1)
        .join("fact.f_a", "da.a_id")
        .join("fact.f_b", "db.b_id")
        .join("fact.f_c", "dc.c_id")
    )
    for key, value in kwargs.items():
        getattr(builder, key)(value)
    return builder.build()


@pytest.fixture
def star_session():
    return build_star_session()


@pytest.fixture
def star():
    return build_star_session(), star_query()
