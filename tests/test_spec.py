"""PlannerSpec: the typed optimizer-selection API.

Contract: every Session entry point resolves its arguments through
``resolve_planner``; an invalid spec fails at construction time; a bare
strategy-name string still resolves positionally; the removed legacy
``optimizer="name"`` + loose-kwargs form fails fast with the equivalent
``PlannerSpec.of`` call spelled out in the error.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict

import pytest

from repro.common.errors import OptimizationError
from repro.core.policy import ReplanPolicy
from repro.obs.report import ExplainReport
from repro.spec import PlannerSpec, resolve_planner

from tests.conftest import build_star_session, star_query


class TestPlannerSpecValidation:
    def test_defaults(self):
        spec = PlannerSpec()
        assert spec.strategy == "dynamic"
        assert spec.options == ()
        assert spec.policy is None

    def test_unknown_strategy_raises(self):
        with pytest.raises(OptimizationError):
            PlannerSpec.of("quantum")

    def test_unknown_option_raises_with_accepted_list(self):
        with pytest.raises(OptimizationError, match="does not accept"):
            PlannerSpec.of("dynamic", warp_factor=9)

    def test_option_valid_for_other_strategy_still_raises(self):
        # sample_limit belongs to pilot_run, not cost_based
        PlannerSpec.of("pilot_run", sample_limit=100)
        with pytest.raises(OptimizationError):
            PlannerSpec.of("cost_based", sample_limit=100)

    def test_duplicate_option_raises(self):
        with pytest.raises(OptimizationError, match="duplicate"):
            PlannerSpec("dynamic", (("inl_enabled", True), ("inl_enabled", False)))

    def test_policy_option_must_be_a_replan_policy(self):
        with pytest.raises(OptimizationError, match="ReplanPolicy"):
            PlannerSpec.of("dynamic", policy="aggressive")
        spec = PlannerSpec.of("dynamic", policy=ReplanPolicy.default())
        assert spec.policy == ReplanPolicy.default()

    def test_specs_are_hashable_and_order_insensitive(self):
        a = PlannerSpec.of("dynamic", inl_enabled=True, pushdown_enabled=False)
        b = PlannerSpec.of("dynamic", pushdown_enabled=False, inl_enabled=True)
        assert a == b and hash(a) == hash(b)

    def test_with_options_and_as_dict(self):
        spec = PlannerSpec.of("dynamic", inl_enabled=False)
        updated = spec.with_options(inl_enabled=True)
        assert dict(updated.options) == {"inl_enabled": True}
        assert spec.as_dict() == {
            "strategy": "dynamic",
            "options": {"inl_enabled": False},
        }

    def test_make_builds_the_configured_optimizer(self):
        optimizer = PlannerSpec.of("dynamic", inl_enabled=True).make()
        assert optimizer.name == "dynamic"
        assert optimizer.inl_enabled


class TestResolvePlanner:
    def test_spec_passes_through(self):
        spec = PlannerSpec.of("ingres")
        assert resolve_planner(spec) is spec

    def test_spec_plus_legacy_kwargs_is_an_error(self):
        with pytest.raises(OptimizationError, match="inside the PlannerSpec"):
            resolve_planner(PlannerSpec(), optimizer="dynamic")
        with pytest.raises(OptimizationError, match="inside the PlannerSpec"):
            resolve_planner(PlannerSpec(), options={"inl_enabled": True})

    def test_string_plus_legacy_keyword_raises(self):
        with pytest.raises(OptimizationError, match="removed"):
            resolve_planner("dynamic", optimizer="ingres")

    def test_non_string_planner_raises(self):
        with pytest.raises(OptimizationError, match="PlannerSpec or a"):
            resolve_planner(42)

    def test_bare_call_defaults_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_planner() == PlannerSpec()

    def test_legacy_keyword_fails_fast_with_migration_hint(self):
        with pytest.raises(OptimizationError) as excinfo:
            resolve_planner(optimizer="ingres", entry="execute")
        message = str(excinfo.value)
        assert "removed" in message
        assert "PlannerSpec.of('ingres')" in message

    def test_loose_options_fail_fast_with_option_names(self):
        with pytest.raises(OptimizationError) as excinfo:
            resolve_planner("pilot_run", options={"sample_limit": 100})
        message = str(excinfo.value)
        assert "removed" in message
        assert "PlannerSpec.of('pilot_run', sample_limit=...)" in message

    def test_bare_string_resolves_without_error(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_planner("pilot_run") == PlannerSpec.of("pilot_run")


class TestStringFormEquivalence:
    """The bare strategy-name string produces byte-identical executions."""

    def test_string_execute_matches_spec_execute(self):
        string_session = build_star_session()
        by_name = string_session.execute(star_query(), "cost_based")

        spec_session = build_star_session()
        spec = spec_session.execute(star_query(), PlannerSpec.of("cost_based"))

        assert by_name.rows == spec.rows
        assert by_name.plan_description == spec.plan_description
        assert by_name.phases == spec.phases
        assert asdict(by_name.metrics) == asdict(spec.metrics)
        assert by_name.seconds == spec.seconds

    def test_legacy_execute_keyword_fails_fast(self):
        session = build_star_session()
        with pytest.raises(OptimizationError, match="removed"):
            session.execute(star_query(), optimizer="cost_based")
        with pytest.raises(OptimizationError, match="removed"):
            session.submit(star_query(), "dynamic", inl_enabled=True)

    def test_invalid_option_fails_at_submit_time(self):
        session = build_star_session()
        with pytest.raises(OptimizationError):
            session.submit(star_query(), PlannerSpec.of("dynamic").with_options(x=1))

    def test_explain_returns_report_with_str_compat(self):
        session = build_star_session()
        report = session.explain(star_query(), PlannerSpec.of("dynamic"))
        assert isinstance(report, ExplainReport)
        assert str(report) == report.plan_description
        assert "⋈" in str(report)
        assert report.strategy == "dynamic"
        assert report.simulated_seconds > 0.0
        assert report.phases[-1] == "final"
