"""Query service behavior: caching, invalidation, admission, tenancy."""

import pytest

from repro.common.errors import AdmissionError, OptimizationError
from repro.engine.scheduler import SchedulerConfig
from repro.service import QueryService, ServiceConfig

from tests.conftest import dim_schema, load_star_data, small_cluster, star_query


def build_service(**kwargs) -> QueryService:
    service = QueryService(small_cluster(), **kwargs)
    load_star_data(service)
    return service


class TestTenantSessions:
    def test_sessions_are_memoized_per_tenant(self):
        service = build_service()
        assert service.session("a") is service.session("a")
        assert service.session("a") is not service.session("b")
        assert service.tenants() == ["a", "b"]

    def test_empty_tenant_rejected(self):
        with pytest.raises(ValueError):
            QueryService(small_cluster()).session("")

    def test_tenant_session_rejects_private_stack_arguments(self):
        from repro.session import Session

        service = QueryService(small_cluster())
        with pytest.raises(OptimizationError, match="QueryService"):
            Session(cluster=small_cluster(), service=service, tenant="a")

    def test_tenant_sessions_share_the_service_stack(self):
        service = build_service()
        a, b = service.session("a"), service.session("b")
        assert a.executor is b.executor is service.executor
        assert a.scheduler is b.scheduler is service.scheduler
        assert a.feedback is service.feedback
        assert a.dataset_rows("fact") == 2000


class TestResultCache:
    def test_repeat_submission_answered_from_cache(self):
        service = build_service()
        tenant = service.session("a")
        first = tenant.submit(star_query(), "dynamic")
        service.run_all()
        second = service.session("b").submit(star_query(), "dynamic")
        service.run_all()

        assert not first.schedule.cache_hit
        assert second.schedule.cache_hit
        assert second.schedule.busy_seconds == 0.0
        assert second.result().rows == first.result().rows
        assert service.cache.stats.result_hits == 1
        report = second.result().explain_analyze()
        assert "answered from result cache" in report

    def test_cache_key_distinguishes_parameters_and_strategy(self):
        service = build_service()
        tenant = service.session("a")
        tenant.submit(star_query(), "dynamic")
        service.run_all()
        other = tenant.submit(star_query(), "cost_based")
        service.run_all()
        assert not other.schedule.cache_hit

    def test_reingest_invalidates_cached_results(self):
        service = build_service()
        tenant = service.session("a")
        first = tenant.submit(star_query(), "dynamic")
        service.run_all()
        # replacing a dimension bumps its version; the cached result depends
        # on it and must be evicted even though the rows are identical
        service.load(
            "da",
            dim_schema("a"),
            [{"a_id": i, "a_attr": i % 7} for i in range(50)],
            replace=True,
        )
        second = tenant.submit(star_query(), "dynamic")
        service.run_all()
        assert not second.schedule.cache_hit
        assert service.cache.stats.invalidations >= 1
        assert second.result().rows == first.result().rows

    def test_cache_hits_do_not_feed_the_feedback_log(self):
        service = build_service()
        tenant = service.session("a")
        tenant.submit(star_query(), "dynamic")
        service.run_all()
        observed = service.feedback.queries
        tenant.submit(star_query(), "dynamic")
        service.run_all()
        assert service.feedback.queries == observed


class TestIntermediateCache:
    def test_pushdown_replay_is_free_and_answer_preserving(self):
        service = build_service(
            config=ServiceConfig(result_cache=False, intermediate_cache=True)
        )
        tenant = service.session("a")
        first = tenant.submit(star_query(), "dynamic")
        service.run_all()
        tenant.reset_intermediates()
        service.reset_scheduler()
        second = tenant.submit(star_query(), "dynamic")
        service.run_all()

        assert service.cache.stats.intermediate_hits >= 1
        assert second.result().rows == first.result().rows
        # replayed materializations charge nothing, so the repeat is cheaper
        assert (
            second.result().metrics.total_seconds
            < first.result().metrics.total_seconds
        )

    def test_forced_eviction_recomputes_instead_of_crashing(self):
        """Regression guard: with a capacity-1 intermediate cache, each
        query's own pushdown materializations evict one another, so a token
        a queued query resolved against is usually gone by fetch time.
        Every such lookup must fall back to recomputing the materialization
        — never raise — and every round must still answer correctly."""
        service = build_service(
            config=ServiceConfig(
                result_cache=False,
                intermediate_cache=True,
                intermediate_cache_entries=1,
            )
        )
        baseline = build_service(
            config=ServiceConfig(result_cache=False, intermediate_cache=False)
        )
        expected = baseline.session("a").submit(star_query(), "dynamic")
        baseline.run_all()
        for tenant in ("a", "b", "c"):
            session = service.session(tenant)
            handle = session.submit(star_query(), "dynamic")
            service.run_all()
            assert handle.result().rows == expected.result().rows
            session.reset_intermediates()
            service.reset_scheduler()
        # the tiny cache actually thrashed: evicted tokens read as misses
        # (recomputes), and the capacity bound held throughout
        assert service.cache.stats.intermediate_misses >= 1
        assert len(service.cache._intermediates) <= 1

    def test_fetch_after_eviction_is_a_miss_not_a_crash(self):
        """Unit-level pin of the same contract on ServiceCache itself: a
        token evicted between store and fetch reads as a miss (None)."""
        service = build_service(
            config=ServiceConfig(
                result_cache=False,
                intermediate_cache=True,
                intermediate_cache_entries=1,
            )
        )
        tenant = service.session("a")
        tenant.submit(star_query(), "dynamic")
        service.run_all()
        cache = service.cache
        assert len(cache._intermediates) == 1
        (token,) = cache._intermediates
        cache._intermediates.clear()  # forced eviction

        class _Request:
            cache_token = token

        assert cache.fetch_intermediate(service.executor, _Request()) is None
        assert cache.stats.intermediate_misses >= 1

    def test_reingest_evicts_dependent_intermediates(self):
        service = build_service(
            config=ServiceConfig(result_cache=False, intermediate_cache=True)
        )
        tenant = service.session("a")
        tenant.submit(star_query(), "dynamic")
        service.run_all()
        tenant.reset_intermediates()
        hits_before = service.cache.stats.intermediate_hits
        service.load(
            "db",
            dim_schema("b"),
            [{"b_id": i, "b_attr": i % 5} for i in range(40)],
            replace=True,
        )
        service.reset_scheduler()
        tenant.submit(star_query(), "dynamic")
        service.run_all()
        # the db pushdown re-ran; only non-db pushdowns may have replayed
        stats = service.cache.stats
        assert stats.invalidations >= 1
        assert stats.intermediate_misses >= 1
        assert stats.intermediate_hits >= hits_before


class TestAdmissionControl:
    def test_bounded_queue_rejects_overflow(self):
        service = build_service(
            scheduler_config=SchedulerConfig(max_queued=2),
            config=ServiceConfig(result_cache=False, intermediate_cache=False),
        )
        tenant = service.session("a")
        tenant.submit(star_query(), "dynamic")
        tenant.submit(star_query(), "dynamic")
        with pytest.raises(AdmissionError, match="tenant 'a'"):
            tenant.submit(star_query(), "dynamic")

    def test_fair_admission_interleaves_tenants(self):
        config = SchedulerConfig(fair_tenants=True, max_concurrent_queries=1)
        service = build_service(
            scheduler_config=config,
            config=ServiceConfig(result_cache=False, intermediate_cache=False),
        )
        a_handles = [
            service.session("a").submit(star_query(), "dynamic")
            for _ in range(3)
        ]
        b_handle = service.session("b").submit(star_query(), "dynamic")
        service.run_all()
        # deficit round-robin: b's only query is admitted right after a's
        # first, ahead of a's own backlog
        assert b_handle.schedule.admitted_at < a_handles[1].schedule.admitted_at

    def test_fifo_without_fairness_serves_the_flooder_first(self):
        config = SchedulerConfig(fair_tenants=False, max_concurrent_queries=1)
        service = build_service(
            scheduler_config=config,
            config=ServiceConfig(result_cache=False, intermediate_cache=False),
        )
        a_handles = [
            service.session("a").submit(star_query(), "dynamic")
            for _ in range(3)
        ]
        b_handle = service.session("b").submit(star_query(), "dynamic")
        service.run_all()
        assert b_handle.schedule.admitted_at >= a_handles[2].schedule.admitted_at


class TestAdaptiveSlices:
    def test_adaptive_slices_preserve_answers(self):
        even = build_service(
            scheduler_config=SchedulerConfig(job_slots=2),
            config=ServiceConfig(result_cache=False, intermediate_cache=False),
        )
        adaptive = build_service(
            scheduler_config=SchedulerConfig(job_slots=2, adaptive_slices=True),
            config=ServiceConfig(result_cache=False, intermediate_cache=False),
        )
        results = {}
        for name, service in (("even", even), ("adaptive", adaptive)):
            handles = [
                service.session("a").submit(star_query(), "dynamic"),
                service.session("b").submit(star_query(), "cost_based"),
            ]
            service.run_all()
            results[name] = [sorted(map(repr, h.result().rows)) for h in handles]
        assert results["even"] == results["adaptive"]


class TestObservability:
    def test_queue_delay_annotation_in_explain_analyze(self):
        service = build_service(
            scheduler_config=SchedulerConfig(max_concurrent_queries=1),
            config=ServiceConfig(result_cache=False, intermediate_cache=False),
        )
        service.session("a").submit(star_query(), "dynamic")
        delayed = service.session("b").submit(star_query(), "dynamic")
        service.run_all()
        assert delayed.schedule.queue_delay_seconds > 0.0
        report = delayed.result().explain_analyze()
        assert "-- schedule: queue delay" in report
        assert "tenant 'b'" in report

    def test_timeline_carries_tenant_lanes(self):
        service = build_service()
        service.session("a").submit(star_query(), "dynamic")
        service.session("b").submit(star_query(), "cost_based")
        service.run_all()
        timeline = service.scheduler.timeline
        assert timeline.multi_tenant
        assert timeline.tenant_names() == ["a", "b"]
        assert timeline.events_for_tenant("a")
        assert "tenant" in timeline.render()
        assert '"name": "tenant a"' in timeline.to_chrome_trace()

    def test_describe_reports_cache_and_tenants(self):
        service = build_service()
        service.session("a").submit(star_query(), "dynamic")
        service.run_all()
        info = service.describe()
        assert info["tenants"] == ["a"]
        assert "fact" in info["datasets"]
        assert info["cache"]["result_misses"] == 1
