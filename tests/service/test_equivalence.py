"""Service-path equivalence proof: one tenant, caches off == plain Session.

The service is allowed to *add* capability (caching, fairness, persistence)
but never to change what a query computes or charges. This test pins the
strongest form of that promise, in the style of the cross-engine harness
(tests/engine/equivalence.py): for every registered strategy, a single
tenant submitting through a cache-off service with a plain scheduler config
must be byte-identical to ``Session.submit``/``run_all`` on every facet —
rows, metrics (repr-exact floats), plan, phases, trace, schedule, decisions,
and the cluster timeline. The only sanctioned difference is the tenant
annotation itself (``ScheduleInfo.tenant`` and ``TimelineEvent.tenants``),
which is checked to be exactly the tenant tag and nothing else.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.engine.scheduler import SchedulerConfig
from repro.service import QueryService, ServiceConfig

from tests.conftest import build_star_session, load_star_data, small_cluster, star_query
from tests.engine.equivalence import (
    ALL_STRATEGIES,
    canonical_rows,
    metrics_fingerprint,
    schedule_fingerprint,
)

#: the facets compared for byte-identity (timeline handled separately so the
#: tenant annotation can be factored out explicitly).
FACETS = ("rows", "metrics", "plan", "phases", "trace", "schedule", "decisions")


def fingerprint(result) -> dict[str, str]:
    return {
        "rows": canonical_rows(result.rows),
        "metrics": metrics_fingerprint(result.metrics),
        "plan": result.plan_description,
        "phases": repr(list(result.phases)),
        "trace": result.trace.to_json() if result.trace else "none",
        "schedule": schedule_fingerprint(result.schedule),
        "decisions": repr(tuple(result.decisions)),
    }


def run_plain(session, strategy: str):
    session.reset_scheduler()
    handle = session.submit(star_query(), strategy)
    session.run_all()
    fp = fingerprint(handle.result())
    events = list(session.scheduler.timeline.events)
    session.reset_intermediates()
    return fp, events


def run_service_path(service: QueryService, strategy: str):
    service.reset_scheduler()
    tenant = service.session("solo")
    handle = tenant.submit(star_query(), strategy)
    service.run_all()
    fp = fingerprint(handle.result())
    events = list(service.scheduler.timeline.events)
    tenant.reset_intermediates()
    return fp, events, handle


@pytest.fixture(scope="module")
def plain_session():
    return build_star_session()


@pytest.fixture(scope="module")
def cache_off_service():
    service = QueryService(
        small_cluster(),
        scheduler_config=SchedulerConfig(),
        config=ServiceConfig(result_cache=False, intermediate_cache=False),
    )
    load_star_data(service)
    return service


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_service_path_byte_identical_to_session(
    plain_session, cache_off_service, strategy
):
    plain_fp, plain_events = run_plain(plain_session, strategy)
    service_fp, service_events, handle = run_service_path(
        cache_off_service, strategy
    )

    for facet in FACETS:
        assert service_fp[facet] == plain_fp[facet], (
            f"{strategy}: service path diverges from Session on {facet}\n"
            f"  session {plain_fp[facet]!r}\n"
            f"  service {service_fp[facet]!r}"
        )

    # timeline: identical except the tenant tag, which is exactly "solo"
    assert len(service_events) == len(plain_events), strategy
    for plain_event, service_event in zip(plain_events, service_events):
        assert service_event.tenants == ("solo",), strategy
        assert replace(service_event, tenants=()) == plain_event, strategy

    # the tenant annotation itself is the only scheduling difference
    assert handle.schedule.tenant == "solo"
    assert not handle.schedule.cache_hit


def test_cache_off_service_has_no_cache_wiring(cache_off_service):
    assert cache_off_service.cache is None
    assert cache_off_service.executor.cache is None
    assert cache_off_service.scheduler.on_admit is None
    assert cache_off_service.scheduler.on_finish is None
