"""Persistent feedback/sketch store: round-trips, tokens, versioning."""

import json

import pytest

from repro.common.errors import StatisticsError
from repro.common.types import DataType, Schema
from repro.core.policy import ReplanPolicy
from repro.service import QueryService, ServiceConfig, ServiceStore, ingest_token
from repro.service.store import STORE_FORMAT_VERSION, StoredFeedback

from tests.conftest import load_star_data, small_cluster, star_query


def build_service(**kwargs) -> QueryService:
    service = QueryService(small_cluster(), **kwargs)
    load_star_data(service)
    return service


def canonical(state: dict) -> str:
    """JSON-normalized state (tuples and lists compare equal on disk)."""
    return json.dumps(state, sort_keys=True, default=repr)


class TestIngestToken:
    SCHEMA = Schema.of(("x", DataType.INT), ("y", DataType.INT))
    ROWS = [{"x": 1, "y": 2}, {"x": 3, "y": 4}]

    def test_equal_content_equal_token(self):
        assert ingest_token(self.SCHEMA, self.ROWS, 1.0) == ingest_token(
            self.SCHEMA, [dict(r) for r in self.ROWS], 1.0
        )

    def test_value_change_changes_token(self):
        changed = [{"x": 1, "y": 2}, {"x": 3, "y": 5}]
        assert ingest_token(self.SCHEMA, self.ROWS, 1.0) != ingest_token(
            self.SCHEMA, changed, 1.0
        )

    def test_row_order_changes_token(self):
        # order drives partition layout, so it must change the token
        assert ingest_token(self.SCHEMA, self.ROWS, 1.0) != ingest_token(
            self.SCHEMA, list(reversed(self.ROWS)), 1.0
        )

    def test_scale_changes_token(self):
        assert ingest_token(self.SCHEMA, self.ROWS, 1.0) != ingest_token(
            self.SCHEMA, self.ROWS, 2.0
        )


class TestStoreRoundTrip:
    def test_save_load_save_is_byte_identical(self, tmp_path):
        service = build_service()
        tenant = service.session("alice")
        tenant.submit(star_query(), "dynamic")
        service.run_all()

        first = tmp_path / "store.json"
        second = tmp_path / "store2.json"
        service.save_store(str(first))
        restored = ServiceStore.open(str(first))
        restored.save(str(second))
        assert first.read_bytes() == second.read_bytes()
        assert restored.sketched_datasets() == ["da", "db", "dc", "fact"]
        assert restored.feedback.queries == service.feedback.queries

    def test_restored_feedback_derives_identical_thresholds(self, tmp_path):
        service = build_service()
        tenant = service.session("alice")
        for _ in range(3):
            tenant.submit(star_query(), "dynamic")
            service.run_all()
            tenant.reset_intermediates()

        path = tmp_path / "store.json"
        service.save_store(str(path))
        restored = ServiceStore.open(str(path))

        policy = ReplanPolicy.adaptive_policy(min_history=1)
        query = star_query()
        original = service.feedback.derive(policy, service.cluster, query)
        assert restored.feedback.derive(policy, service.cluster, query) == original

    def test_restored_sketches_skip_recollection_with_equal_estimates(
        self, tmp_path
    ):
        saver = build_service()
        path = tmp_path / "store.json"
        saver.save_store(str(path))

        fresh = QueryService(small_cluster())
        fresh.load_store(str(path))
        load_star_data(fresh)  # byte-identical rows: tokens match
        # the persisted sketches were registered, not recollected, and they
        # describe the data identically to the original collection pass
        for name in ("fact", "da", "db", "dc"):
            assert canonical(fresh.statistics.get(name).to_state()) == canonical(
                saver.statistics.get(name).to_state()
            )
        # the round-trip must not have mutated the persisted state either
        roundtrip = tmp_path / "store2.json"
        fresh.save_store(str(roundtrip))
        assert path.read_bytes() == roundtrip.read_bytes()

    def test_changed_content_rejects_persisted_sketches(self, tmp_path):
        saver = build_service()
        path = tmp_path / "store.json"
        saver.save_store(str(path))

        fresh = QueryService(small_cluster())
        fresh.load_store(str(path))
        load_star_data(fresh, seed=8)  # different rows: tokens differ
        # a fresh collection replaced the stale sketch entry for fact
        assert canonical(fresh.store.to_state()) != canonical(
            saver.store.to_state()
        )

    def test_format_version_mismatch_rejected(self):
        store = ServiceStore()
        state = store.to_state()
        state["version"] = STORE_FORMAT_VERSION + 1
        with pytest.raises(StatisticsError, match="format"):
            ServiceStore().restore_state(state)


class TestSaveCrashCleanup:
    """Regression: a raise mid-``save`` (serialization error, disk full)
    left an orphaned ``.tmp`` file next to the store."""

    def test_failed_save_leaves_no_tmp(self, tmp_path, monkeypatch):
        store = ServiceStore()
        path = tmp_path / "store.json"

        def boom():
            raise ValueError("injected mid-write failure")

        monkeypatch.setattr(store, "to_state", boom)
        with pytest.raises(ValueError, match="injected"):
            store.save(str(path))
        assert not path.exists()
        assert not (tmp_path / "store.json.tmp").exists()

    def test_failed_save_preserves_previous_file(self, tmp_path, monkeypatch):
        store = ServiceStore()
        path = tmp_path / "store.json"
        store.save(str(path))
        good = path.read_bytes()

        def boom():
            raise ValueError("injected mid-write failure")

        monkeypatch.setattr(store, "to_state", boom)
        with pytest.raises(ValueError):
            store.save(str(path))
        assert path.read_bytes() == good
        assert not (tmp_path / "store.json.tmp").exists()

    def test_successful_save_still_cleans_up(self, tmp_path):
        store = ServiceStore()
        path = tmp_path / "store.json"
        store.save(str(path))
        assert path.exists()
        assert not (tmp_path / "store.json.tmp").exists()


class TestOpenCorruptStore:
    """``open`` must degrade to a fresh store on unreadable files — the
    persisted feedback is an optimization, never a correctness input."""

    def test_truncated_json_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "store.json"
        ServiceStore().save(str(path))
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        with pytest.warns(RuntimeWarning, match="starting fresh"):
            store = ServiceStore.open(str(path))
        assert store.sketched_datasets() == []
        assert store.feedback.queries == 0

    def test_garbage_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("not json at all {{{")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            store = ServiceStore.open(str(path))
        assert store.sketched_datasets() == []

    def test_wrong_shape_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps({"version": STORE_FORMAT_VERSION}))
        with pytest.warns(RuntimeWarning, match="starting fresh"):
            store = ServiceStore.open(str(path))
        assert store.sketched_datasets() == []

    def test_version_mismatch_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "store.json"
        store = ServiceStore()
        state = store.to_state()
        state["version"] = STORE_FORMAT_VERSION + 1
        path.write_text(json.dumps(state, default=repr))
        with pytest.warns(RuntimeWarning, match="starting fresh"):
            opened = ServiceStore.open(str(path))
        assert opened.sketched_datasets() == []

    def test_healthy_file_loads_without_warning(self, tmp_path):
        import warnings as warnings_module

        path = tmp_path / "store.json"
        ServiceStore().save(str(path))
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            ServiceStore.open(str(path))


class TestStoredFeedbackGroups:
    def test_observations_route_into_dataset_groups(self):
        service = build_service()
        tenant = service.session("alice")
        tenant.submit(star_query(), "dynamic")
        service.run_all()
        assert isinstance(service.feedback, StoredFeedback)
        assert "da+db+dc+fact" in service.feedback.groups
        # the combined window still sees everything
        assert service.feedback.queries >= 1


class TestDeterminismGuard:
    """Two tenants on a shared cold store == two isolated sessions."""

    FACETS = ("rows", "metrics", "plan", "phases", "trace", "decisions")

    @staticmethod
    def _fingerprint(result) -> dict:
        from tests.engine.equivalence import canonical_rows, metrics_fingerprint

        return {
            "rows": canonical_rows(result.rows),
            "metrics": metrics_fingerprint(result.metrics),
            "plan": result.plan_description,
            "phases": repr(list(result.phases)),
            "trace": result.trace.to_json() if result.trace else "none",
            "decisions": repr(tuple(result.decisions)),
        }

    def test_shared_cold_store_matches_isolated_sessions(self):
        from tests.conftest import build_star_session

        shared = build_service(
            config=ServiceConfig(result_cache=False, intermediate_cache=False)
        )
        shared_results = []
        for tenant in ("alice", "bob"):
            handle = shared.session(tenant).submit(star_query(), "dynamic")
            shared.run_all()
            shared_results.append(self._fingerprint(handle.result()))
            shared.session(tenant).reset_intermediates()
            shared.reset_scheduler()

        for shared_fp in shared_results:
            session = build_star_session()
            handle = session.submit(star_query(), "dynamic")
            session.run_all()
            isolated_fp = self._fingerprint(handle.result())
            for facet in self.FACETS:
                assert shared_fp[facet] == isolated_fp[facet], facet
