"""Feedback-driven re-planning (DESIGN.md §8).

The contract under test: with the policy *off* every execution is
byte-identical to the fixed paper schedule; with it *on*, a bad Q-error miss
buys one extra re-optimization job (sketch refresh) that can flip the
endgame join order and pay for itself; a well-predicted run may fuse its
remaining joins early; and adaptive thresholds converge to the session's
observed history without a single unbounded (inf) record poisoning them.
"""

from __future__ import annotations

import math
from dataclasses import asdict

import pytest

from repro.bench.feedback import fuse_query, load_universe, skew_query
from repro.common.errors import OptimizationError
from repro.core.driver import DynamicOptimizer, SimulatedFailure
from repro.core.policy import FeedbackLog, ReplanPolicy, RuntimeThresholds
from repro.session import Session
from repro.spec import PlannerSpec
from repro.testing import rows_equal_unordered

from tests.conftest import build_star_session, small_cluster, star_query


@pytest.fixture(scope="module")
def universe():
    """The engineered skew/uniform universe (smoke size), shared per module."""
    session = Session()
    load_universe(session, smoke=True)
    return session


def run(session, query, policy=None) -> "ExecutionResult":  # noqa: F821
    optimizer = DynamicOptimizer(policy=policy)
    try:
        return optimizer.execute(query, session)
    finally:
        session.reset_intermediates()


class TestPolicyValidation:
    def test_constructors(self):
        assert not ReplanPolicy.off().enabled
        assert ReplanPolicy.default(6.0).qerror_threshold == 6.0
        adaptive = ReplanPolicy.adaptive_policy(min_history=3)
        assert adaptive.adaptive and adaptive.early_fuse
        assert adaptive.min_history == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"qerror_threshold": 0.5},
            {"fuse_qerror": 0.99},
            {"widen_max_tables": 2},
            {"fuse_max_joins": 1},
            {"min_history": 0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(OptimizationError):
            ReplanPolicy(**kwargs)

    def test_is_bad_miss(self):
        thresholds = RuntimeThresholds(qerror_threshold=4.0)
        policy = ReplanPolicy.default()
        assert policy.is_bad_miss(4.01, thresholds)
        assert not policy.is_bad_miss(4.0, thresholds)
        assert not policy.is_bad_miss(None, thresholds)
        assert not policy.is_bad_miss(float("nan"), thresholds)
        assert ReplanPolicy.off().is_bad_miss(100.0, thresholds) is False

    def test_may_fuse(self):
        policy = ReplanPolicy(early_fuse=True, fuse_qerror=1.5, fuse_max_joins=3)
        assert policy.may_fuse([1.1, 1.4], 3)
        assert not policy.may_fuse([], 3)  # no evidence yet
        assert not policy.may_fuse([1.1], 4)  # too many joins left
        assert not policy.may_fuse([1.1, 2.0], 3)  # one stage missed
        assert not policy.may_fuse([float("inf")], 2)  # unbounded miss
        assert not ReplanPolicy.default().may_fuse([1.0], 2)  # fusing off

    def test_resolve_defaults(self):
        assert ReplanPolicy.off().resolve(None) == RuntimeThresholds()
        assert ReplanPolicy.default(7.0).resolve(None) == RuntimeThresholds(
            qerror_threshold=7.0
        )

    def test_resolve_adaptive_without_history_is_static(self):
        session = Session(small_cluster())
        thresholds = ReplanPolicy.adaptive_policy().resolve(session)
        assert thresholds == RuntimeThresholds()


class TestNonFiniteQError:
    """Regression: ``is_bad_miss`` guarded NaN but not inf, so a degenerate
    zero-estimate stage (infinite Q-error) bought a replan on every
    remaining join — while ``observe_qerror`` correctly refused to keep the
    same value. Both sides now apply the same isfinite rule."""

    THRESHOLDS = RuntimeThresholds()

    def test_inf_is_not_a_bad_miss(self):
        policy = ReplanPolicy.default()
        assert not policy.is_bad_miss(float("inf"), self.THRESHOLDS)

    def test_nan_and_none_still_ignored(self):
        policy = ReplanPolicy.default()
        assert not policy.is_bad_miss(float("nan"), self.THRESHOLDS)
        assert not policy.is_bad_miss(None, self.THRESHOLDS)

    def test_finite_miss_still_triggers(self):
        policy = ReplanPolicy.default()
        assert policy.is_bad_miss(
            self.THRESHOLDS.qerror_threshold * 2, self.THRESHOLDS
        )

    def test_all_inf_trace_never_replans(self):
        """An all-inf Q-error history pins the decision: the trigger stays
        silent on every stage, matching what the adaptive window (which
        counts but never keeps inf) would derive."""
        policy = ReplanPolicy.default()
        log = FeedbackLog()
        for _ in range(16):
            log.observe_qerror(float("inf"))
        assert log.records == 0 and log.infinite_records == 16
        assert not any(
            policy.is_bad_miss(float("inf"), self.THRESHOLDS) for _ in range(16)
        )


class TestFeedbackLog:
    def test_infinite_records_are_counted_not_kept(self):
        log = FeedbackLog()
        log.observe_qerror(float("inf"))
        log.observe_qerror(float("nan"))
        log.observe_qerror(2.0)
        assert log.records == 1
        assert log.infinite_records == 2
        assert log.qerror_quantile(0.5) == 2.0

    def test_window_bounds_history(self):
        log = FeedbackLog(window=4)
        for q in (1.0, 2.0, 3.0, 4.0, 5.0):
            log.observe_qerror(q)
        assert log.records == 4
        assert min(log.q_errors) == 2.0

    def test_derive_waits_for_min_history(self):
        log = FeedbackLog()
        policy = ReplanPolicy.adaptive_policy(min_history=8)
        for _ in range(7):
            log.observe_qerror(40.0)
        assert log.derive(policy) == RuntimeThresholds(
            qerror_threshold=policy.qerror_threshold
        )

    def test_derive_chronic_misses_deepen_everything(self):
        log = FeedbackLog()
        policy = ReplanPolicy.adaptive_policy(min_history=8)
        for _ in range(12):
            log.observe_qerror(40.0)
        thresholds = log.derive(policy, small_cluster())
        # tail clamps at 8x the base, median stays above it: chronic misses
        assert thresholds.qerror_threshold == policy.qerror_threshold * 8.0
        assert thresholds.stats_cutoff == 2
        assert thresholds.pushdown_min_predicates == 1

    def test_derive_tight_estimates_relax_the_cutoff(self):
        log = FeedbackLog()
        policy = ReplanPolicy.adaptive_policy(min_history=8)
        for _ in range(12):
            log.observe_qerror(1.1)
        thresholds = log.derive(policy, small_cluster())
        assert thresholds.qerror_threshold == 2.0  # floor
        assert thresholds.stats_cutoff == 4
        assert thresholds.pushdown_min_predicates == 2

    def test_derive_budget_shrinks_with_spills(self):
        log = FeedbackLog()
        policy = ReplanPolicy.adaptive_policy(min_history=4)
        for _ in range(6):
            log.observe_qerror(2.0)
        log.query_costs.append((5.0, 100.0))  # spilled
        log.query_costs.append((0.0, 80.0))
        cluster = small_cluster()
        thresholds = log.derive(policy, cluster)
        assert log.spill_ratio == 0.5
        assert thresholds.broadcast_budget_bytes == pytest.approx(
            cluster.broadcast_threshold_bytes * 0.5
        )

    def test_derive_budget_floor(self):
        log = FeedbackLog()
        policy = ReplanPolicy.adaptive_policy(min_history=4)
        for _ in range(6):
            log.observe_qerror(2.0)
        for _ in range(5):
            log.query_costs.append((1.0, 10.0))  # every query spilled
        cluster = small_cluster()
        thresholds = log.derive(policy, cluster)
        assert thresholds.broadcast_budget_bytes == pytest.approx(
            cluster.broadcast_threshold_bytes * 0.25
        )

    def test_sessions_feed_the_log_through_the_scheduler(self):
        session = build_star_session()
        assert session.feedback.queries == 0
        session.execute(star_query())
        session.reset_intermediates()
        assert session.feedback.queries == 1
        assert session.feedback.records > 0


class TestPolicyOffDeterminism:
    """ReplanPolicy.off() (and no policy at all) is the fixed schedule."""

    def test_off_matches_no_policy(self, universe):
        baseline = run(universe, skew_query())
        off = run(universe, skew_query(), policy=ReplanPolicy.off())
        assert off.rows == baseline.rows
        assert off.plan_description == baseline.plan_description
        assert off.phases == baseline.phases
        assert asdict(off.metrics) == asdict(baseline.metrics)
        assert off.seconds == baseline.seconds
        assert off.decisions == () and baseline.decisions == ()

    def test_high_threshold_never_triggers(self, universe):
        baseline = run(universe, skew_query())
        lenient = run(
            universe, skew_query(), policy=ReplanPolicy.default(qerror_threshold=100.0)
        )
        assert lenient.decisions == ()
        assert lenient.phases == baseline.phases
        assert lenient.seconds == baseline.seconds


class TestQErrorTrigger:
    def test_bad_miss_triggers_replan_and_flips_the_endgame(self, universe):
        fixed = run(universe, skew_query())
        replanned = run(universe, skew_query(), policy=ReplanPolicy.default())

        actions = [d.action for d in replanned.decisions]
        assert "replan" in actions
        trigger = next(d for d in replanned.decisions if d.action == "replan")
        assert trigger.q_error > trigger.threshold
        assert math.isfinite(trigger.q_error)
        # the refresh ran as a charged phase of its own
        assert "replan:__join_0" in replanned.phases
        # corrected sketches flipped the endgame join order...
        assert replanned.plan_description != fixed.plan_description
        # ...same answer, cheaper run (refresh included)
        assert rows_equal_unordered(replanned.rows, fixed.rows)
        assert replanned.seconds < fixed.seconds

    def test_refresh_can_be_disabled(self, universe):
        policy = ReplanPolicy(refresh_sketches=False, widen_search=False)
        result = run(universe, skew_query(), policy=policy)
        # the miss is still logged, but no refresh job ran
        assert [d.action for d in result.decisions] == ["replan"]
        assert not any(p.startswith("replan:") for p in result.phases)

    def test_widened_pick_still_answers_correctly(self, universe):
        fixed = run(universe, skew_query())
        policy = ReplanPolicy(refresh_sketches=False, widen_search=True)
        widened = run(universe, skew_query(), policy=policy)
        assert rows_equal_unordered(widened.rows, fixed.rows)
        assert any(d.action == "replan" for d in widened.decisions)

    def test_decisions_describe_readably(self, universe):
        result = run(universe, skew_query(), policy=ReplanPolicy.default())
        text = result.decisions[0].describe()
        assert "replan" in text and "q=" in text


class TestEarlyFuse:
    def test_tight_estimates_fuse_the_tail(self, universe):
        fixed = run(universe, fuse_query())
        policy = ReplanPolicy(early_fuse=True, fuse_max_joins=3)
        fused = run(universe, fuse_query(), policy=policy)

        assert [d.action for d in fused.decisions] == ["fuse"]
        # one materialization point was skipped
        assert len(fused.phases) == len(fixed.phases) - 1
        assert rows_equal_unordered(fused.rows, fixed.rows)
        assert fused.seconds < fixed.seconds

    def test_skewed_run_never_fuses(self, universe):
        policy = ReplanPolicy(early_fuse=True, fuse_max_joins=3)
        result = run(universe, skew_query(), policy=policy)
        assert "fuse" not in [d.action for d in result.decisions]


class TestAdaptiveSession:
    def test_threshold_converges_to_observed_history(self):
        session = Session()
        load_universe(session, smoke=True)
        policy = ReplanPolicy.adaptive_policy(min_history=4)
        spec = PlannerSpec.of("dynamic", policy=policy)

        first = policy.resolve(session)
        assert first == RuntimeThresholds()  # no history yet

        session.execute(skew_query(), spec)
        session.reset_intermediates()
        adapted = policy.resolve(session)
        assert adapted != first
        assert adapted.qerror_threshold >= 2.0
        assert adapted.qerror_threshold <= policy.qerror_threshold * 8.0

        # the adapted run still answers correctly and still triggers
        result = session.execute(skew_query(), spec)
        session.reset_intermediates()
        assert any(d.action == "replan" for d in result.decisions)


class TestCheckpointWithPolicy:
    def test_resume_preserves_thresholds_and_answer(self, universe):
        clean = run(universe, skew_query(), policy=ReplanPolicy.default())

        optimizer = DynamicOptimizer(
            policy=ReplanPolicy.default(), fail_after_jobs=4
        )
        with pytest.raises(SimulatedFailure) as excinfo:
            optimizer.execute(skew_query(), universe)
        checkpoint = excinfo.value.checkpoint
        # the checkpoint carries the resolved thresholds and policy state
        assert checkpoint.thresholds == RuntimeThresholds(qerror_threshold=4.0)
        resumed = optimizer.resume(checkpoint, universe)
        universe.reset_intermediates()

        assert rows_equal_unordered(resumed.rows, clean.rows)
        assert resumed.phases == clean.phases
        assert [d.action for d in resumed.decisions] == [
            d.action for d in clean.decisions
        ]
