"""Fault tolerance via re-optimization checkpoints (Section 8 future work).

"Runtime dynamic optimization can also be used as a way to achieve
fault-tolerance by integrating checkpoints. That would help the system to
recover from a failure by not having to start over from the beginning of a
long-running query." — every materialized re-optimization point doubles as
a checkpoint; a failed driver resumes from the last one without repeating
completed join stages.
"""

import pytest

from repro.bench.runner import workbench_for_query
from repro.core.driver import DynamicOptimizer, SimulatedFailure
from repro.testing import evaluate_reference, rows_equal_unordered

from tests.conftest import build_star_session, star_query


class TestCheckpointResume:
    def run_with_failure(self, session, query, fail_after):
        optimizer = DynamicOptimizer(fail_after_jobs=fail_after)
        with pytest.raises(SimulatedFailure) as excinfo:
            optimizer.execute(query, session)
        return optimizer, excinfo.value.checkpoint

    def test_resume_after_pushdown_failure(self):
        session = build_star_session()
        query = star_query()
        optimizer, checkpoint = self.run_with_failure(session, query, fail_after=2)
        result = optimizer.resume(checkpoint, session)
        session.reset_intermediates()
        assert rows_equal_unordered(result.rows, evaluate_reference(query, session))

    def test_resume_after_join_stage_failure(self):
        bench = workbench_for_query("Q17", 10)
        query = bench.query("Q17")
        optimizer, checkpoint = self.run_with_failure(
            bench.session, query, fail_after=5
        )
        # completed stages are on disk already
        assert any(n.startswith("__join") for n in bench.session.datasets.names())
        result = optimizer.resume(checkpoint, bench.session)
        reference_session_rows = result.rows
        bench.session.reset_intermediates()
        clean = DynamicOptimizer().execute(query, bench.session)
        bench.session.reset_intermediates()
        assert rows_equal_unordered(reference_session_rows, clean.rows)

    def test_no_work_repeated_after_resume(self):
        bench = workbench_for_query("Q17", 10)
        query = bench.query("Q17")
        optimizer, checkpoint = self.run_with_failure(
            bench.session, query, fail_after=5
        )
        jobs_before = checkpoint.metrics.jobs
        result = optimizer.resume(checkpoint, bench.session)
        bench.session.reset_intermediates()
        clean = DynamicOptimizer().execute(query, bench.session)
        bench.session.reset_intermediates()
        # total job count (checkpointed + resumed) equals a clean run's
        assert result.metrics.jobs == clean.metrics.jobs
        assert jobs_before < clean.metrics.jobs

    def test_checkpoint_carries_reconstructed_query(self):
        bench = workbench_for_query("Q17", 10)
        query = bench.query("Q17")
        _, checkpoint = self.run_with_failure(bench.session, query, fail_after=5)
        # after 3 pushdowns + 2 join stages, two FROM entries were merged
        assert len(checkpoint.current.tables) == len(query.tables) - 2
        assert checkpoint.iteration == 2
        bench.session.reset_intermediates()

    def test_failure_fires_only_once(self):
        session = build_star_session()
        optimizer = DynamicOptimizer(fail_after_jobs=1)
        with pytest.raises(SimulatedFailure) as excinfo:
            optimizer.execute(star_query(), session)
        result = optimizer.resume(excinfo.value.checkpoint, session)
        session.reset_intermediates()
        assert result.phases[-1] == "final"
