"""Exhaustive checkpoint/resume sweep over a 5-join query.

Injects a simulated failure after *every* job index the driver checkpoints
at, resumes from the carried checkpoint, and verifies the Section-8 recovery
contract each time: the answer is unchanged and no completed join stage is
ever re-executed (the combined job count equals a clean run's).
"""

from __future__ import annotations

import random

import pytest

from repro.common.types import DataType, Schema
from repro.core.driver import DynamicOptimizer, SimulatedFailure
from repro.lang.builder import QueryBuilder
from repro.session import Session
from repro.testing import evaluate_reference, rows_equal_unordered
from tests.conftest import small_cluster

#: jobs in a clean dynamic run of the sweep query: 1 pushdown + 3 join
#: materializations (6 tables down to the 2-join endgame) + 1 final job.
CLEAN_JOBS = 5
#: the driver checks the failure injector after the pushdown phase and after
#: each join materialization — i.e. at job counts 1..CLEAN_JOBS-1.
CHECKPOINTED_JOB_INDEXES = tuple(range(1, CLEAN_JOBS))

FACT_SCHEMA = Schema.of(
    ("f_id", DataType.INT),
    ("f_k1", DataType.INT),
    ("f_k2", DataType.INT),
    ("f_k3", DataType.INT),
    ("f_k4", DataType.INT),
    ("f_k5", DataType.INT),
    ("f_x", DataType.INT),
    primary_key=("f_id",),
)

DIMENSIONS = (("d1", 40), ("d2", 30), ("d3", 20), ("d4", 15), ("d5", 10))


def build_sweep_session(seed: int = 11) -> Session:
    rng = random.Random(seed)
    session = Session(small_cluster())
    session.load(
        "fact",
        FACT_SCHEMA,
        [
            {
                "f_id": i,
                "f_k1": rng.randrange(40),
                "f_k2": rng.randrange(30),
                "f_k3": rng.randrange(20),
                "f_k4": rng.randrange(15),
                "f_k5": rng.randrange(10),
                "f_x": rng.randrange(100),
            }
            for i in range(1500)
        ],
    )
    for prefix, count in DIMENSIONS:
        schema = Schema.of(
            (f"{prefix}_id", DataType.INT),
            (f"{prefix}_attr", DataType.INT),
            primary_key=(f"{prefix}_id",),
        )
        session.load(
            prefix,
            schema,
            [{f"{prefix}_id": i, f"{prefix}_attr": i % 4} for i in range(count)],
        )
    return session


def sweep_query():
    builder = (
        QueryBuilder()
        .select("fact.f_id", "d1.d1_attr")
        .from_table("fact")
        .where_udf("mymod10", "fact.f_x", "=", 3)
    )
    for index, (prefix, _) in enumerate(DIMENSIONS, start=1):
        builder = builder.from_table(prefix).join(
            f"fact.f_k{index}", f"{prefix}.{prefix}_id"
        )
    return builder.build()


@pytest.fixture(scope="module")
def clean_run():
    session = build_sweep_session()
    query = sweep_query()
    result = DynamicOptimizer().execute(query, session)
    session.reset_intermediates()
    reference = evaluate_reference(query, session)
    return result, reference


class TestCheckpointSweep:
    def test_clean_run_shape(self, clean_run):
        """Guard: the sweep below covers every checkpointed job index."""
        result, reference = clean_run
        assert result.metrics.jobs == CLEAN_JOBS
        assert result.phases[0] == "pushdown:fact"
        assert result.phases[-1] == "final"
        assert rows_equal_unordered(result.rows, reference)

    @pytest.mark.parametrize("fail_after", CHECKPOINTED_JOB_INDEXES)
    def test_resume_from_every_checkpoint(self, fail_after, clean_run):
        clean, reference = clean_run
        session = build_sweep_session()
        query = sweep_query()
        optimizer = DynamicOptimizer(fail_after_jobs=fail_after)
        with pytest.raises(SimulatedFailure) as excinfo:
            optimizer.execute(query, session)
        checkpoint = excinfo.value.checkpoint

        # the failure fired at exactly the requested job index, and every
        # join stage completed by then is already materialized on "disk"
        assert checkpoint.metrics.jobs == fail_after
        materialized = [
            name
            for name in session.datasets.names()
            if name.startswith("__join_")
        ]
        assert len(materialized) == checkpoint.iteration

        result = optimizer.resume(checkpoint, session)
        session.reset_intermediates()

        assert rows_equal_unordered(result.rows, reference)
        # no completed join stage re-executes: checkpointed + resumed jobs
        # together add up to exactly a clean run's job count
        assert result.metrics.jobs == clean.metrics.jobs
        assert result.phases == clean.phases
        # the checkpointed tracer kept recording: the resumed trace covers
        # the whole run, not just the tail
        assert [s.name for s in result.trace.phase_spans()] == clean.phases
        assert result.trace.root.end_seconds == pytest.approx(result.seconds)
