"""Query Reconstruction tests (Section 5.4)."""

import pytest

from repro.common.errors import QueryError
from repro.common.types import DataType, Schema
from repro.core.reconstruction import reconstruct_after_join, replace_filtered_table
from repro.lang.binding import ColumnResolver
from repro.storage.ingest import register_intermediate

from tests.conftest import build_star_session, star_query


@pytest.fixture
def session():
    return build_star_session()


class TestReplaceFilteredTable:
    def test_swaps_dataset_and_drops_predicates(self):
        query = star_query()
        rewritten = replace_filtered_table(query, "da", "__filtered_da")
        assert rewritten.table("da").dataset == "__filtered_da"
        assert rewritten.predicates_for("da") == ()
        # other clauses untouched
        assert rewritten.select == query.select
        assert rewritten.joins == query.joins
        assert len(rewritten.predicates) == len(query.predicates) - 1


class TestReconstructAfterJoin:
    def make_intermediate(self, session, columns):
        schema = Schema.of(*[(c, DataType.INT) for c in columns])
        register_intermediate("__join_0", schema, [[]], None, session.datasets)

    def test_rewrites_from_and_where(self, session):
        query = star_query()
        resolver = ColumnResolver(query, session.datasets.schema_lookup)
        self.make_intermediate(
            session, ["fact.f_val", "fact.f_b", "fact.f_c", "da.a_attr"]
        )
        rewritten = reconstruct_after_join(
            query, resolver, frozenset(("fact", "da")), "__join_0"
        )
        assert set(rewritten.aliases) == {"db", "dc", "__join_0"}
        # the executed join condition is gone, the other two remain
        assert len(rewritten.joins) == 2
        # predicates of the merged pair are gone
        assert all(p.alias not in ("fact", "da") for p in rewritten.predicates)
        # SELECT clause is textually unchanged (qualified names survive)
        assert rewritten.select == query.select

    def test_remaining_joins_rebind_to_intermediate(self, session):
        query = star_query()
        resolver = ColumnResolver(query, session.datasets.schema_lookup)
        self.make_intermediate(
            session, ["fact.f_val", "fact.f_b", "fact.f_c", "da.a_attr"]
        )
        rewritten = reconstruct_after_join(
            query, resolver, frozenset(("fact", "da")), "__join_0"
        )
        new_resolver = ColumnResolver(rewritten, session.datasets.schema_lookup)
        graph = new_resolver.join_graph()
        assert frozenset(("__join_0", "db")) in graph
        assert frozenset(("__join_0", "dc")) in graph

    def test_missing_alias_rejected(self, session):
        query = star_query()
        resolver = ColumnResolver(query, session.datasets.schema_lookup)
        with pytest.raises(QueryError):
            reconstruct_after_join(query, resolver, frozenset(("ghost", "da")), "x")

    def test_join_count_decreases_by_one(self, session):
        query = star_query()
        resolver = ColumnResolver(query, session.datasets.schema_lookup)
        self.make_intermediate(
            session, ["fact.f_val", "fact.f_b", "fact.f_c", "da.a_attr"]
        )
        rewritten = reconstruct_after_join(
            query, resolver, frozenset(("fact", "da")), "__join_0"
        )
        assert rewritten.join_count() == query.join_count() - 1
