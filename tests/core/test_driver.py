"""Dynamic optimization driver tests (Algorithm 1 end to end)."""

import pytest

from repro.algebra.plan import JoinNode
from repro.core.driver import DynamicOptimizer, greedy_full_plan, resolve_logical
from repro.algebra.plan import LeafNode
from repro.testing import evaluate_reference, rows_equal_unordered

from tests.conftest import build_star_session, star_query


@pytest.fixture
def session():
    return build_star_session()


class TestDriverEndToEnd:
    def test_result_matches_reference(self, session):
        query = star_query()
        result = DynamicOptimizer().execute(query, session)
        session.reset_intermediates()
        reference = evaluate_reference(query, session)
        assert rows_equal_unordered(result.rows, reference)

    def test_phases_follow_algorithm_1(self, session):
        query = star_query()
        result = DynamicOptimizer().execute(query, session)
        session.reset_intermediates()
        # 2 pushdowns (db, dc), 1 re-optimized join (3 joins -> loop once),
        # then the final 2-join job.
        pushdowns = [p for p in result.phases if p.startswith("pushdown:")]
        joins = [p for p in result.phases if p.startswith("join:")]
        assert len(pushdowns) == 2
        assert len(joins) == 1
        assert result.phases[-1] == "final"

    def test_plan_capture_over_original_tables(self, session):
        query = star_query()
        optimizer = DynamicOptimizer()
        optimizer.execute(query, session)
        session.reset_intermediates()
        tree = optimizer.last_tree
        assert tree.aliases == frozenset(("fact", "da", "db", "dc"))
        # leaf predicates restored on the captured tree
        filtered = [l for l in tree.leaves() if l.predicates]
        assert {l.alias for l in filtered} == {"da", "db", "dc"}

    def test_metrics_include_overheads(self, session):
        result = DynamicOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        assert result.metrics.materialize > 0
        assert result.metrics.jobs == 4  # 2 pushdowns + 1 join + final

    def test_charge_online_stats_flag(self, session):
        charged = DynamicOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        uncharged = DynamicOptimizer(charge_online_stats=False).execute(
            star_query(), session
        )
        session.reset_intermediates()
        assert uncharged.metrics.stats == 0.0
        assert charged.seconds >= uncharged.seconds

    def test_pushdown_disabled(self, session):
        optimizer = DynamicOptimizer(pushdown_enabled=False)
        result = optimizer.execute(star_query(), session)
        session.reset_intermediates()
        assert not any(p.startswith("pushdown") for p in result.phases)
        reference = evaluate_reference(star_query(), session)
        assert rows_equal_unordered(result.rows, reference)

    def test_single_shot_mode(self, session):
        optimizer = DynamicOptimizer(reoptimize_joins=False)
        result = optimizer.execute(star_query(), session)
        session.reset_intermediates()
        assert result.phases[-1] == "single-shot"
        # pushdown jobs + exactly one query job
        assert result.metrics.jobs == 3
        reference = evaluate_reference(star_query(), session)
        assert rows_equal_unordered(result.rows, reference)

    def test_two_join_query_skips_loop(self, session):
        from repro.lang.builder import QueryBuilder

        query = (
            QueryBuilder()
            .select("fact.f_val")
            .from_table("fact")
            .from_table("da")
            .from_table("db")
            .join("fact.f_a", "da.a_id")
            .join("fact.f_b", "db.b_id")
            .build()
        )
        result = DynamicOptimizer().execute(query, session)
        session.reset_intermediates()
        assert result.metrics.jobs == 1  # just the final job
        assert rows_equal_unordered(result.rows, evaluate_reference(query, session))

    def test_intermediates_cleaned_by_reset(self, session):
        DynamicOptimizer().execute(star_query(), session)
        assert any(n.startswith("__") for n in session.datasets.names())
        session.reset_intermediates()
        assert not any(n.startswith("__") for n in session.datasets.names())


class TestResolveLogical:
    def test_substitutes_registered_subtrees(self):
        leaf_a = LeafNode("a", "ta")
        registry = {"__join_0": leaf_a}
        node = LeafNode("__join_0", "__join_0")
        assert resolve_logical(node, registry) is leaf_a

    def test_recurses_joins(self):
        leaf_a, leaf_b = LeafNode("a", "ta"), LeafNode("b", "tb")
        node = JoinNode(
            build=LeafNode("__x", "__x"),
            probe=leaf_b,
            build_keys=("a.k",),
            probe_keys=("b.k",),
        )
        resolved = resolve_logical(node, {"__x": leaf_a})
        assert resolved.build is leaf_a
        assert resolved.probe is leaf_b


class TestGreedyFullPlan:
    def test_covers_all_aliases(self, session):
        query = star_query()
        plan = greedy_full_plan(query, session, session.statistics.copy(), False)
        assert plan.aliases == frozenset(query.aliases)

    def test_disconnected_rejected(self, session):
        from repro.common.errors import OptimizationError
        from repro.lang.ast import Query, TableRef

        query = Query(
            select=("da.a_id",),
            tables=(TableRef("da", "da"), TableRef("db", "db")),
        )
        with pytest.raises(OptimizationError):
            greedy_full_plan(query, session, session.statistics.copy(), False)
