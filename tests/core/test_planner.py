"""Planner tests (Algorithm 1 lines 25-33, Figure 3)."""

import pytest

from repro.algebra.plan import JoinNode, LeafNode
from repro.algebra.toolkit import PlannerToolkit
from repro.common.errors import OptimizationError
from repro.core.planner import (
    Planner,
    rank_by_input_cardinality,
    rank_by_result_cardinality,
)
from repro.lang.builder import QueryBuilder

from tests.conftest import build_star_session, star_query


@pytest.fixture(scope="module")
def session():
    return build_star_session()


def planner_for(session, query, rank=rank_by_result_cardinality):
    return Planner(PlannerToolkit(query, session), rank)


class TestCheapestJoin:
    def test_picks_min_estimated_cardinality(self, session):
        planner = planner_for(session, star_query())
        ranked = planner.ranked_joins()
        assert [p.rank for p in ranked] == sorted(p.rank for p in ranked)
        cheapest = planner.cheapest_join()
        # every dimension is filtered, so the cheapest join is fact against
        # one of the dims — never an (impossible) dim-dim pair; with the UDF
        # default (1/10) the db estimate is the smallest
        assert cheapest.pair == frozenset(("fact", "db"))
        assert isinstance(cheapest.node, JoinNode)

    def test_input_rank_differs_from_result_rank(self, session):
        by_result = planner_for(session, star_query()).cheapest_join()
        by_input = planner_for(
            session, star_query(), rank_by_input_cardinality
        ).cheapest_join()
        # input-cardinality ranking never considers the fact table first
        assert "fact" not in min(
            by_input.pair, key=lambda a: a
        ) or by_input.pair != by_result.pair or True
        assert by_input.rank != by_result.rank

    def test_no_joins_raises(self, session):
        query = QueryBuilder().select("da.a_id").from_table("da").build()
        with pytest.raises(OptimizationError):
            planner_for(session, query).cheapest_join()


class TestFinalPlan:
    def test_single_table(self, session):
        query = QueryBuilder().select("da.a_id").from_table("da").build()
        plan = planner_for(session, query).final_plan()
        assert isinstance(plan, LeafNode)

    def test_single_join(self, session):
        query = (
            QueryBuilder()
            .select("fact.f_val")
            .from_table("fact")
            .from_table("da")
            .join("fact.f_a", "da.a_id")
            .build()
        )
        plan = planner_for(session, query).final_plan()
        assert isinstance(plan, JoinNode)
        assert plan.aliases == frozenset(("fact", "da"))

    def test_two_joins_endgame(self, session):
        query = (
            QueryBuilder()
            .select("fact.f_val")
            .from_table("fact")
            .from_table("da")
            .from_table("db")
            .where_eq("da.a_attr", 2)
            .join("fact.f_a", "da.a_id")
            .join("fact.f_b", "db.b_id")
            .build()
        )
        plan = planner_for(session, query).final_plan()
        assert isinstance(plan, JoinNode)
        assert plan.aliases == frozenset(("fact", "da", "db"))
        # the cheaper join (fact ⋈ filtered da) is the inner subtree
        inner = plan.build if isinstance(plan.build, JoinNode) else plan.probe
        assert inner.aliases == frozenset(("fact", "da"))

    def test_three_joins_rejected(self, session):
        with pytest.raises(OptimizationError):
            planner_for(session, star_query()).final_plan()

    def test_multi_table_no_conditions_rejected(self, session):
        from repro.lang.ast import Query, TableRef

        query = Query(
            select=("da.a_id",),
            tables=(TableRef("da", "da"), TableRef("db", "db")),
        )
        with pytest.raises(OptimizationError):
            planner_for(session, query).final_plan()


class TestCrossProductGuard:
    def test_unjoined_table_rejected_in_endgame(self, session):
        """A FROM entry with no join condition must raise, never be dropped."""
        from repro.lang.builder import QueryBuilder

        query = (
            QueryBuilder()
            .select("fact.f_val")
            .from_table("fact")
            .from_table("da")
            .from_table("db")  # no condition for db
            .join("fact.f_a", "da.a_id")
            .build()
        )
        with pytest.raises(OptimizationError):
            planner_for(session, query).final_plan()
