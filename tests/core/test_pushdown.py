"""Predicate push-down execution tests (Algorithm 1 lines 6-9, 20-23)."""

import pytest

from repro.core.predicate_pushdown import (
    execute_pushdowns,
    intermediate_name_for,
    join_columns_of,
)
from repro.engine.metrics import JobMetrics

from tests.conftest import build_star_session, star_query


@pytest.fixture
def session():
    return build_star_session()


def run_pushdowns(session, query):
    metrics = JobMetrics()
    phases = []
    working = session.statistics.copy()
    outcome = execute_pushdowns(query, session, working, metrics, phases)
    return outcome, working, metrics, phases


class TestPushdownExecution:
    def test_only_qualifying_tables_pushed(self, session):
        # da: single simple predicate -> no; db: single UDF -> yes;
        # dc: two simple predicates -> yes
        outcome, _, _, phases = run_pushdowns(session, star_query())
        assert sorted(outcome.executed_aliases) == ["db", "dc"]
        assert phases == [f"pushdown:{a}" for a in outcome.executed_aliases]

    def test_intermediates_materialized_and_filtered(self, session):
        outcome, _, _, _ = run_pushdowns(session, star_query())
        filtered_db = session.datasets.get(intermediate_name_for("db"))
        assert filtered_db.is_intermediate
        rows = list(filtered_db.rows())
        # mymod10(b_attr) = 1 keeps b_attr == 1 -> 8 of 40 rows
        assert len(rows) == 8
        # only surviving columns kept (the join key)
        assert all(set(row) == {"db.b_id"} for row in rows)

    def test_statistics_updated(self, session):
        outcome, working, _, _ = run_pushdowns(session, star_query())
        stats = working.get(intermediate_name_for("dc"))
        assert stats.row_count == 10  # c_attr == 1 keeps 10 of 30
        # sketches collected on join-participating columns
        assert "dc.c_id" in stats.fields
        # session statistics untouched
        assert not session.statistics.has(intermediate_name_for("dc"))

    def test_query_rewritten(self, session):
        outcome, _, _, _ = run_pushdowns(session, star_query())
        rewritten = outcome.query
        assert rewritten.table("db").dataset == intermediate_name_for("db")
        assert rewritten.predicates_for("db") == ()
        # da keeps its estimable single predicate
        assert len(rewritten.predicates_for("da")) == 1

    def test_costs_charged(self, session):
        _, _, metrics, _ = run_pushdowns(session, star_query())
        assert metrics.jobs == 2
        assert metrics.startup > 0
        assert metrics.materialize > 0
        assert metrics.scan > 0

    def test_join_columns_of(self):
        columns = join_columns_of(star_query())
        assert "fact.f_a" in columns and "da.a_id" in columns

    def test_no_candidates_no_jobs(self, session):
        from repro.lang.builder import QueryBuilder

        query = (
            QueryBuilder()
            .select("fact.f_val")
            .from_table("fact")
            .from_table("da")
            .where_eq("da.a_attr", 2)
            .join("fact.f_a", "da.a_id")
            .build()
        )
        outcome, _, metrics, phases = run_pushdowns(session, query)
        assert outcome.executed_aliases == []
        assert metrics.jobs == 0
        assert outcome.query == query
