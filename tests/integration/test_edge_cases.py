"""Edge cases across the full stack: empty data, degenerate queries, skew."""

import pytest

from repro.common.types import DataType, Schema
from repro.lang.builder import QueryBuilder
from repro.session import Session
from repro.testing import evaluate_reference, rows_equal_unordered

from tests.conftest import small_cluster

ALL = ("dynamic", "cost_based", "from_order", "worst_order", "pilot_run", "ingres")


def session_with(fact_rows, dim_rows):
    session = Session(small_cluster())
    session.load(
        "f",
        Schema.of(("id", DataType.INT), ("k", DataType.INT), primary_key=("id",)),
        fact_rows,
    )
    session.load(
        "d",
        Schema.of(("d_id", DataType.INT), ("v", DataType.INT), primary_key=("d_id",)),
        dim_rows,
    )
    return session


def two_table_query(**extra):
    builder = (
        QueryBuilder()
        .select("f.id", "d.v")
        .from_table("f")
        .from_table("d")
        .join("f.k", "d.d_id")
    )
    return builder.build()


class TestEmptyInputs:
    @pytest.mark.parametrize("optimizer", ALL)
    def test_empty_fact(self, optimizer):
        session = session_with([], [{"d_id": i, "v": i} for i in range(5)])
        result = session.execute(two_table_query(), optimizer)
        session.reset_intermediates()
        assert result.rows == []

    @pytest.mark.parametrize("optimizer", ALL)
    def test_empty_dimension(self, optimizer):
        session = session_with([{"id": i, "k": i} for i in range(10)], [])
        result = session.execute(two_table_query(), optimizer)
        session.reset_intermediates()
        assert result.rows == []

    def test_filter_eliminating_everything(self):
        session = session_with(
            [{"id": i, "k": i % 3} for i in range(20)],
            [{"d_id": i, "v": i} for i in range(3)],
        )
        query = (
            QueryBuilder()
            .select("f.id")
            .from_table("f")
            .from_table("d")
            .where_eq("d.v", 999)
            .where_compare("d.v", ">", -1)
            .join("f.k", "d.d_id")
            .build()
        )
        for optimizer in ALL:
            result = session.execute(query, optimizer)
            session.reset_intermediates()
            assert result.rows == []


class TestDegenerateQueries:
    def test_single_table_no_joins_dynamic(self):
        session = session_with([{"id": i, "k": i} for i in range(10)], [])
        query = QueryBuilder().select("f.id").from_table("f").build()
        result = session.execute(query, "dynamic")
        session.reset_intermediates()
        assert len(result.rows) == 10

    def test_single_table_with_filter(self):
        session = session_with([{"id": i, "k": i % 4} for i in range(40)], [])
        query = (
            QueryBuilder()
            .select("f.id")
            .from_table("f")
            .where_eq("f.k", 1)
            .build()
        )
        result = session.execute(query, "dynamic")
        session.reset_intermediates()
        assert len(result.rows) == 10


class TestSkew:
    def test_extreme_key_skew_still_correct(self):
        # 90% of fact rows share one join key: partitions are imbalanced but
        # results must be exact
        fact = [{"id": i, "k": 0 if i % 10 else i % 3} for i in range(200)]
        dims = [{"d_id": i, "v": i} for i in range(3)]
        session = session_with(fact, dims)
        query = two_table_query()
        reference = evaluate_reference(query, session)
        for optimizer in ("dynamic", "cost_based", "worst_order"):
            result = session.execute(query, optimizer)
            session.reset_intermediates()
            assert rows_equal_unordered(result.rows, reference)

    def test_all_rows_one_key(self):
        fact = [{"id": i, "k": 7} for i in range(50)]
        dims = [{"d_id": 7, "v": 1}]
        session = session_with(fact, dims)
        result = session.execute(two_table_query(), "dynamic")
        session.reset_intermediates()
        assert len(result.rows) == 50


class TestSelfJoinAliases:
    def test_same_dataset_twice(self):
        session = Session(small_cluster())
        session.load(
            "people",
            Schema.of(
                ("p_id", DataType.INT),
                ("manager", DataType.INT),
                primary_key=("p_id",),
            ),
            [{"p_id": i, "manager": i // 3} for i in range(30)],
        )
        query = (
            QueryBuilder()
            .select("e.p_id", "m.p_id")
            .from_table("people", "e")
            .from_table("people", "m")
            .join("e.manager", "m.p_id")
            .build()
        )
        reference = evaluate_reference(query, session)
        for optimizer in ("dynamic", "cost_based"):
            result = session.execute(query, optimizer)
            session.reset_intermediates()
            assert rows_equal_unordered(result.rows, reference)
