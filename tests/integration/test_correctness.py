"""Cross-optimizer correctness: everyone must match the brute-force oracle.

This is the central integration guarantee: whatever plan an optimizer
chooses — any join order, any algorithm mix, with or without
re-optimization points — the result rows are identical to the reference
evaluation.
"""

import pytest

from repro.bench.runner import QUERIES, workbench_for_query
from repro.spec import PlannerSpec
from repro.testing import evaluate_reference, rows_equal_unordered

from tests.conftest import build_star_session, star_query

ALL_OPTIMIZERS = (
    "dynamic",
    "cost_based",
    "from_order",
    "best_order",
    "worst_order",
    "pilot_run",
    "ingres",
)


@pytest.mark.parametrize("optimizer", ALL_OPTIMIZERS)
def test_star_query_matches_reference(optimizer):
    session = build_star_session()
    query = star_query()
    result = session.execute(query, PlannerSpec.of(optimizer))
    session.reset_intermediates()
    assert rows_equal_unordered(result.rows, evaluate_reference(query, session))


@pytest.mark.parametrize("label", sorted(QUERIES))
@pytest.mark.parametrize("optimizer", ("dynamic", "cost_based", "worst_order"))
def test_paper_queries_match_reference_sf10(label, optimizer):
    bench = workbench_for_query(label, 10)
    query = bench.query(label)
    result = bench.session.execute(query, PlannerSpec.of(optimizer))
    bench.session.reset_intermediates()
    reference = evaluate_reference(query, bench.session)
    assert rows_equal_unordered(result.rows, reference)


@pytest.mark.parametrize("label", sorted(QUERIES))
def test_inl_results_match_hash_results_sf10(label):
    bench = workbench_for_query(label, 10)
    bench.ensure_indexes()
    query = bench.query(label)
    with_inl = bench.session.execute(
        query, PlannerSpec.of("dynamic", inl_enabled=True)
    )
    bench.session.reset_intermediates()
    without = bench.session.execute(query, PlannerSpec.of("dynamic"))
    bench.session.reset_intermediates()
    assert rows_equal_unordered(with_inl.rows, without.rows)


def test_parameter_rebinding_changes_results():
    from repro.workloads.tpcds import query_50

    bench = workbench_for_query("Q50", 10)
    first = bench.session.execute(query_50(moy=9, year=2000), PlannerSpec.of("dynamic"))
    bench.session.reset_intermediates()
    second = bench.session.execute(query_50(moy=2, year=1999), PlannerSpec.of("dynamic"))
    bench.session.reset_intermediates()
    reference = evaluate_reference(query_50(moy=2, year=1999), bench.session)
    assert rows_equal_unordered(second.rows, reference)
    assert not rows_equal_unordered(first.rows, second.rows) or not first.rows
