"""Session facade tests."""

import pytest

from repro.common.errors import OptimizationError
from repro.common.types import DataType, Schema
from repro.session import Session
from repro.spec import PlannerSpec

from tests.conftest import build_star_session, star_query


class TestSession:
    def test_optimizer_names(self):
        names = Session().optimizer_names()
        assert "dynamic" in names and "predicate_transfer" in names
        assert len(names) == 10

    def test_dataset_rows(self):
        session = build_star_session()
        assert session.dataset_rows("fact") == 2000

    def test_require_loaded(self):
        session = build_star_session()
        session.require_loaded("fact", "da")
        with pytest.raises(OptimizationError):
            session.require_loaded("ghost")

    def test_execute_unknown_optimizer(self):
        session = build_star_session()
        with pytest.raises(OptimizationError):
            session.execute(star_query(), "nope")

    def test_create_index_enables_inl(self):
        session = build_star_session()
        session.create_index("fact", "f_a")
        assert session.datasets.get("fact").has_index("f_a")

    def test_reset_intermediates_removes_stats_too(self):
        session = build_star_session()
        session.execute(star_query(), "dynamic")
        session.reset_intermediates()
        leftovers = [n for n in session.statistics.names() if n.startswith("__")]
        assert leftovers == []

    def test_load_rejects_duplicates(self):
        session = Session()
        schema = Schema.of(("x", DataType.INT))
        session.load("t", schema, [])
        from repro.common.errors import CatalogError

        with pytest.raises(CatalogError):
            session.load("t", schema, [])

    def test_execute_forwards_options(self):
        session = build_star_session()
        session.create_index("fact", "f_a")
        result = session.execute(
            star_query(), PlannerSpec.of("dynamic", inl_enabled=True)
        )
        session.reset_intermediates()
        assert result.rows is not None
