"""Tests for the brute-force reference evaluator itself."""

import pytest

from repro.common.errors import QueryError
from repro.common.types import DataType, Schema
from repro.lang.ast import Query, TableRef
from repro.lang.builder import QueryBuilder
from repro.session import Session
from repro.testing import evaluate_reference, rows_equal_unordered

from tests.conftest import small_cluster


@pytest.fixture
def tiny_session():
    session = Session(small_cluster())
    session.load(
        "t",
        Schema.of(("id", DataType.INT), ("g", DataType.INT), primary_key=("id",)),
        [{"id": i, "g": i % 3} for i in range(9)],
    )
    session.load(
        "u",
        Schema.of(("uid", DataType.INT), ("t_id", DataType.INT), primary_key=("uid",)),
        [{"uid": i, "t_id": i % 9} for i in range(18)],
    )
    return session


class TestReference:
    def test_single_table_projection(self, tiny_session):
        query = QueryBuilder().select("t.g").from_table("t").build()
        rows = evaluate_reference(query, tiny_session)
        assert len(rows) == 9
        assert all(set(r) == {"t.g"} for r in rows)

    def test_filter(self, tiny_session):
        query = (
            QueryBuilder().select("t.id").from_table("t").where_eq("t.g", 1).build()
        )
        rows = evaluate_reference(query, tiny_session)
        assert sorted(r["t.id"] for r in rows) == [1, 4, 7]

    def test_join(self, tiny_session):
        query = (
            QueryBuilder()
            .select("t.id", "u.uid")
            .from_table("t")
            .from_table("u")
            .join("t.id", "u.t_id")
            .build()
        )
        rows = evaluate_reference(query, tiny_session)
        assert len(rows) == 18

    def test_group_by_count(self, tiny_session):
        query = (
            QueryBuilder()
            .select("t.g")
            .from_table("t")
            .group_by("t.g")
            .order_by("t.g")
            .build()
        )
        rows = evaluate_reference(query, tiny_session)
        assert rows == [
            {"t.g": 0, "count": 3},
            {"t.g": 1, "count": 3},
            {"t.g": 2, "count": 3},
        ]

    def test_limit(self, tiny_session):
        query = (
            QueryBuilder().select("t.id").from_table("t").order_by("t.id").limit(4).build()
        )
        assert len(evaluate_reference(query, tiny_session)) == 4

    def test_cross_product_rejected(self, tiny_session):
        query = Query(
            select=("t.id",), tables=(TableRef("t", "t"), TableRef("u", "u"))
        )
        with pytest.raises(QueryError):
            evaluate_reference(query, tiny_session)


class TestRowsEqualUnordered:
    def test_order_insensitive(self):
        assert rows_equal_unordered([{"a": 1}, {"a": 2}], [{"a": 2}, {"a": 1}])

    def test_multiset_semantics(self):
        assert not rows_equal_unordered([{"a": 1}, {"a": 1}], [{"a": 1}])

    def test_value_differences_detected(self):
        assert not rows_equal_unordered([{"a": 1}], [{"a": 2}])

    def test_mixed_type_values_sortable(self):
        # Regression: a NULLable column puts None next to ints across rows;
        # the canonical sort used to compare the raw values and raise
        # TypeError ("'<' not supported between instances of 'NoneType' and
        # 'int'"). The comparison must instead succeed and stay order-free.
        left = [{"a": None, "b": 1}, {"a": 3, "b": 1}, {"a": "x", "b": 1}]
        right = [{"a": "x", "b": 1}, {"a": None, "b": 1}, {"a": 3, "b": 1}]
        assert rows_equal_unordered(left, right)
        assert not rows_equal_unordered(left, right[:2])

    def test_mixed_types_not_conflated(self):
        # The sort key maps values through a total order, but equality still
        # uses the actual values: 1 and "1" are different rows.
        assert not rows_equal_unordered([{"a": 1}], [{"a": "1"}])
