"""Figure-6 experiment machinery at test scale: modes, monotonicity."""

import pytest

from repro.bench.overhead import (
    _tree_with_materialized_filters,
    overhead_report,
)
from repro.bench.runner import workbench_for_query
from repro.core.driver import DynamicOptimizer
from repro.core.predicate_pushdown import intermediate_name_for
from repro.optimizers.base import execute_tree


class TestOverheadModes:
    @pytest.mark.parametrize("query", ("Q17", "Q50", "Q8", "Q9"))
    def test_decomposition_is_consistent(self, query):
        report = overhead_report(query, 10)
        # the full run is never cheaper than the no-online-stats run, which
        # is never cheaper than the upfront replay of the same plan
        assert report.full_seconds >= report.no_online_stats_seconds - 1e-9
        assert report.no_online_stats_seconds >= report.upfront_seconds - 1e-9

    def test_tree_swap_replaces_filtered_leaves(self):
        bench = workbench_for_query("Q17", 10)
        optimizer = DynamicOptimizer()
        optimizer.execute(bench.query("Q17"), bench.session)
        tree = optimizer.last_tree
        swapped = _tree_with_materialized_filters(
            tree,
            {"d1": intermediate_name_for("d1")},
        )
        d1_leaves = [l for l in swapped.leaves() if l.alias == "d1"]
        assert d1_leaves[0].is_intermediate
        assert d1_leaves[0].predicates == ()
        # other filtered leaves untouched
        d2_leaves = [l for l in swapped.leaves() if l.alias == "d2"]
        assert d2_leaves[0].predicates
        bench.session.reset_intermediates()

    def test_swapped_tree_executes_same_rows(self):
        bench = workbench_for_query("Q50", 10)
        query = bench.query("Q50")
        optimizer = DynamicOptimizer()
        baseline = optimizer.execute(query, bench.session)
        tree = optimizer.last_tree
        bench.session.reset_intermediates()

        from repro.core.predicate_pushdown import execute_pushdowns
        from repro.core.reconstruction import replace_filtered_table
        from repro.engine.metrics import JobMetrics

        working = bench.session.statistics.copy()
        outcome = execute_pushdowns(
            query, bench.session, working, JobMetrics(), []
        )
        swapped = _tree_with_materialized_filters(tree, outcome.intermediates)
        replay = execute_tree(swapped, outcome.query, bench.session)
        bench.session.reset_intermediates()
        from repro.testing import rows_equal_unordered

        assert rows_equal_unordered(replay.rows, baseline.rows)
