"""Figure 4: the original job splits into phase 1/2/3 subjobs."""

import pytest

from repro.core.driver import DynamicOptimizer
from repro.bench.runner import workbench_for_query

from tests.conftest import build_star_session, star_query


class TestFigure4Phases:
    def test_star_query_phase_structure(self):
        session = build_star_session()
        result = DynamicOptimizer().execute(star_query(), session)
        session.reset_intermediates()
        kinds = []
        for phase in result.phases:
            kinds.append(phase.split(":")[0])
        # Phase 1 (pushdown sinks) strictly precede phase 2 (join sinks),
        # and the final (DistributeResult) job comes last.
        first_join = kinds.index("join")
        assert all(k == "pushdown" for k in kinds[:first_join])
        assert kinds[-1] == "final"

    def test_q17_has_three_pushdowns_and_reoptimization_points(self):
        bench = workbench_for_query("Q17", 10)
        result = DynamicOptimizer().execute(bench.query("Q17"), bench.session)
        bench.session.reset_intermediates()
        pushdowns = [p for p in result.phases if p.startswith("pushdown:")]
        joins = [p for p in result.phases if p.startswith("join:")]
        assert sorted(pushdowns) == ["pushdown:d1", "pushdown:d2", "pushdown:d3"]
        # 7 joins -> loop until 2 remain: 5 materialized join stages
        assert len(joins) == 5
        assert result.metrics.jobs == 3 + 5 + 1

    def test_q50_has_two_reoptimization_points(self):
        bench = workbench_for_query("Q50", 10)
        result = DynamicOptimizer().execute(bench.query("Q50"), bench.session)
        bench.session.reset_intermediates()
        joins = [p for p in result.phases if p.startswith("join:")]
        # "the four joins introduce two re-optimization points before the
        # remaining query has only two joins"
        assert len(joins) == 2

    def test_intermediates_registered_then_consumed(self):
        session = build_star_session()
        optimizer = DynamicOptimizer()
        optimizer.execute(star_query(), session)
        names = [n for n in session.datasets.names() if n.startswith("__")]
        # 2 pushdown materializations + 1 join materialization
        assert len(names) == 3
        for name in names:
            assert session.datasets.get(name).is_intermediate
        session.reset_intermediates()

    def test_online_stats_skipped_in_last_iteration(self):
        # Q50: first loop iteration (5 tables -> 4) collects sketches; the
        # second (4 -> 3) must register row counts only.
        bench = workbench_for_query("Q50", 10)
        optimizer = DynamicOptimizer()
        optimizer.execute(bench.query("Q50"), bench.session)
        first = bench.session.datasets.get("__join_0")
        assert first is not None
        # statistics for __join_1 live in the driver's working catalog, not
        # the session's; check the materialized datasets instead
        assert bench.session.datasets.has("__join_1")
        bench.session.reset_intermediates()
