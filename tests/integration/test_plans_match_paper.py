"""Plan-level claims from the paper's Section 7.2 narratives.

These tests pin the qualitative plan properties the reproduction is
calibrated to: which tables get broadcast at which scale factors, where INL
triggers, and how the optimizers' plans differ.
"""

import pytest

from repro.bench.runner import run_query, workbench_for_query
from repro.core.driver import DynamicOptimizer


def dynamic_plan(label, scale_factor, inl=False):
    result = run_query(label, scale_factor, "dynamic", inl_enabled=inl)
    return result.plan_description


class TestBroadcastClaims:
    def test_q17_dimensions_broadcast_at_all_scales(self):
        """'the dimension tables and store will be broadcast in all scale
        factors'"""
        for scale_factor in (10, 100, 1000):
            plan = dynamic_plan("Q17", scale_factor)
            assert "σ(d1) ⋈b" in plan or "⋈b (σ(d1)" in plan or "σ(d1)" in plan
            assert plan.count("⋈b") >= 3

    def test_q17_item_broadcast_only_below_sf1000(self):
        """'along with item in factors 10 and 100'"""
        for scale_factor in (10, 100):
            plan = dynamic_plan("Q17", scale_factor)
            assert "item ⋈b" in plan or "⋈b item" in plan or "(item ⋈b" in plan
        plan_1000 = dynamic_plan("Q17", 1000)
        assert "item ⋈b" not in plan_1000

    def test_q9_part_broadcast_only_below_sf1000(self):
        """'pick the broadcast algorithm in the case of the part table for
        scale factors 10 and 100'"""
        for scale_factor, expected in ((10, True), (100, True), (1000, False)):
            plan = dynamic_plan("Q9", scale_factor)
            has_broadcast_part = "σ(p) ⋈b" in plan or "⋈b σ(p)" in plan
            assert has_broadcast_part is expected, (scale_factor, plan)

    def test_q9_nation_supplier_broadcast(self):
        """'as well as in the case of the joined result of nation and
        supplier tables' (at the scales where it fits)"""
        for scale_factor in (10, 100):
            plan = dynamic_plan("Q9", scale_factor)
            assert "(n ⋈b s)" in plan or "(s ⋈b n)" in plan, plan

    def test_q50_filtered_dimension_broadcast(self):
        for scale_factor in (10, 100, 1000):
            plan = dynamic_plan("Q50", scale_factor)
            assert "σ(d1) ⋈b sr" in plan or "(σ(d1) ⋈" in plan, plan


class TestInlClaims:
    def test_q17_inl_for_fact_dimension_joins(self):
        # The paper's plan uses INL on all three fact ⋈ filtered-dim joins;
        # our greedy sometimes absorbs sr/cs through the pruned fact first,
        # so at minimum the ss ⋈ σ(d1) join must be INL.
        for scale_factor in (10, 100, 1000):
            plan = dynamic_plan("Q17", scale_factor, inl=True)
            assert "σ(d1) ⋈i ss" in plan, plan

    def test_q50_inl_for_store_returns(self):
        """'the INL join algorithm only in the case of the join between the
        filtered dimension table and the store_returns table'"""
        for scale_factor in (10, 100, 1000):
            plan = dynamic_plan("Q50", scale_factor, inl=True)
            assert "σ(d1) ⋈i sr" in plan, plan
            assert plan.count("⋈i") == 1

    def test_q9_inl_for_lineitem_part(self):
        for scale_factor in (10, 100):
            plan = dynamic_plan("Q9", scale_factor, inl=True)
            assert "σ(p) ⋈i l" in plan, plan

    def test_q8_no_inl(self):
        """'This is a case where the INL cannot be triggered for any of the
        approaches.'"""
        for optimizer in ("dynamic", "cost_based", "ingres"):
            result = run_query("Q8", 100, optimizer, inl_enabled=True)
            assert "⋈i" not in result.plan_description

    def test_cost_based_misses_inl_on_q50(self):
        """'pilot-run and cost-based will miss the opportunity for choosing
        INL since store_returns ... derives from intermediate data'"""
        dynamic = run_query("Q50", 100, "dynamic", inl_enabled=True)
        cost = run_query("Q50", 100, "cost_based", inl_enabled=True)
        assert "⋈i" in dynamic.plan_description
        assert "⋈i" not in cost.plan_description


class TestOptimizerContrasts:
    def test_worst_order_joins_facts_first_q17(self):
        from repro.optimizers.worst_order import WorstOrderOptimizer

        bench = workbench_for_query("Q17", 100)
        optimizer = WorstOrderOptimizer()
        optimizer.execute(bench.query("Q17"), bench.session)
        bench.session.reset_intermediates()
        leaves = [l.alias for l in optimizer.last_tree.leaves()]
        # the first two tables joined are raw facts or their unfiltered kin
        assert leaves[0] in ("ss", "sr", "cs", "store", "item")
        assert "⋈b" not in optimizer.last_tree.describe()

    def test_dynamic_prunes_before_fact_fact_join_q50(self):
        bench = workbench_for_query("Q50", 100)
        optimizer = DynamicOptimizer()
        result = optimizer.execute(bench.query("Q50"), bench.session)
        bench.session.reset_intermediates()
        joins = [p for p in result.phases if p.startswith("join:")]
        # first materialized join involves the filtered dimension, not ss⋈sr
        assert "d1" in joins[0]

    def test_pilot_diverges_from_dynamic_somewhere(self):
        differences = 0
        for label in ("Q17", "Q50", "Q8", "Q9"):
            dynamic = run_query(label, 1000, "dynamic")
            pilot = run_query(label, 1000, "pilot_run")
            if dynamic.plan_description != pilot.plan_description:
                differences += 1
        assert differences >= 1
