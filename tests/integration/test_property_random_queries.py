"""Randomized end-to-end property: every optimizer equals the oracle.

Hypothesis generates random chain/star schemas, data distributions and
predicate mixes; for each, every optimization strategy must produce exactly
the reference rows. This is the strongest correctness net in the suite: it
exercises arbitrary join orders, all three join algorithms, partitioning
edge cases (empty filters, skewed keys, nulls) and the full reconstruction
machinery at once.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import DataType, Schema
from repro.lang.builder import QueryBuilder
from repro.session import Session
from repro.spec import PlannerSpec
from repro.testing import evaluate_reference, rows_equal_unordered

from tests.conftest import small_cluster

OPTIMIZERS = (
    "dynamic",
    "cost_based",
    "from_order",
    "worst_order",
    "pilot_run",
    "ingres",
)


@st.composite
def universe(draw):
    """A fact table + 1-3 dimensions, with random sizes and predicates."""
    rng_seed = draw(st.integers(min_value=0, max_value=10_000))
    dim_count = draw(st.integers(min_value=1, max_value=3))
    fact_rows = draw(st.integers(min_value=0, max_value=400))
    dim_sizes = [draw(st.integers(min_value=1, max_value=40)) for _ in range(dim_count)]
    null_every = draw(st.sampled_from([0, 7, 13]))
    predicate_kinds = [
        draw(st.sampled_from(["none", "eq", "range", "udf", "param"]))
        for _ in range(dim_count)
    ]
    return rng_seed, fact_rows, dim_sizes, null_every, predicate_kinds


def build_case(rng_seed, fact_rows, dim_sizes, null_every, predicate_kinds):
    import random

    rng = random.Random(rng_seed)
    session = Session(small_cluster())
    fact_fields = [("f_id", DataType.INT)] + [
        (f"fk{i}", DataType.INT) for i in range(len(dim_sizes))
    ]
    session.load(
        "fact",
        Schema.of(*fact_fields, primary_key=("f_id",)),
        [
            {
                "f_id": i,
                **{
                    f"fk{d}": (
                        None
                        if null_every and i % null_every == 0
                        else rng.randrange(dim_sizes[d])
                    )
                    for d in range(len(dim_sizes))
                },
            }
            for i in range(fact_rows)
        ],
    )
    builder = QueryBuilder().select("fact.f_id").from_table("fact")
    for d, size in enumerate(dim_sizes):
        name = f"dim{d}"
        session.load(
            name,
            Schema.of(
                (f"d{d}_id", DataType.INT),
                (f"d{d}_v", DataType.INT),
                primary_key=(f"d{d}_id",),
            ),
            [{f"d{d}_id": i, f"d{d}_v": i % 5} for i in range(size)],
        )
        builder.from_table(name)
        builder.join(f"fact.fk{d}", f"{name}.d{d}_id")
        kind = predicate_kinds[d]
        column = f"{name}.d{d}_v"
        if kind == "eq":
            builder.where_eq(column, 2)
        elif kind == "range":
            builder.where_between(column, 1, 3)
        elif kind == "udf":
            builder.where_udf("mymod10", column, "=", 1)
        elif kind == "param":
            builder.where_param(column, "=", "p")
    builder.bind(p=3)
    return session, builder.build()


@settings(max_examples=15, deadline=None)
@given(universe())
def test_all_optimizers_match_oracle(case):
    session, query = build_case(*case)
    reference = evaluate_reference(query, session)
    for optimizer in OPTIMIZERS:
        result = session.execute(query, optimizer)
        session.reset_intermediates()
        assert rows_equal_unordered(result.rows, reference), optimizer


@settings(max_examples=10, deadline=None)
@given(universe())
def test_dynamic_with_inl_matches_oracle(case):
    session, query = build_case(*case)
    for d in range(len(query.tables) - 1):
        session.create_index("fact", f"fk{d}")
    reference = evaluate_reference(query, session)
    result = session.execute(query, PlannerSpec.of("dynamic", inl_enabled=True))
    session.reset_intermediates()
    assert rows_equal_unordered(result.rows, reference)
