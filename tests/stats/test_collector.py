"""Statistics collector tests."""

from repro.stats.collector import FieldStatistics, StatisticsCollector


def rows(n=100):
    return [{"a": i % 10, "b": f"s{i % 4}", "c": None if i % 5 == 0 else i} for i in range(n)]


class TestFieldStatistics:
    def test_numeric_feeds_both_sketches(self):
        stats = FieldStatistics("a")
        for i in range(100):
            stats.observe(i % 10)
        assert abs(stats.distinct_count - 10) <= 1
        assert len(stats.quantiles) == 100

    def test_strings_skip_quantiles(self):
        stats = FieldStatistics("b")
        stats.observe("x")
        stats.observe("y")
        assert len(stats.quantiles) == 0
        assert abs(stats.distinct_count - 2) <= 0.5

    def test_nulls_counted_not_sketched(self):
        stats = FieldStatistics("c")
        stats.observe(None)
        stats.observe(1)
        assert stats.null_count == 1
        assert len(stats.quantiles) == 1

    def test_histogram_none_for_non_numeric(self):
        stats = FieldStatistics("b")
        stats.observe("x")
        assert stats.histogram() is None

    def test_histogram_for_numeric(self):
        stats = FieldStatistics("a")
        for i in range(200):
            stats.observe(i)
        histogram = stats.histogram(8)
        assert histogram is not None
        assert histogram.total == 200

    def test_merge_combines(self):
        a, b = FieldStatistics("a"), FieldStatistics("a")
        for i in range(50):
            a.observe(i)
        for i in range(50, 100):
            b.observe(i)
        b.observe(None)
        merged = a.merge(b)
        assert merged.null_count == 1
        assert abs(merged.distinct_count - 100) <= 5
        assert len(merged.quantiles) == 100

    def test_boolean_treated_numeric(self):
        stats = FieldStatistics("flag")
        stats.observe(True)
        stats.observe(False)
        assert len(stats.quantiles) == 2


class TestCollector:
    def test_row_count(self):
        collector = StatisticsCollector(["a"])
        collector.observe_rows(rows(42))
        assert collector.row_count == 42

    def test_tracked_fields_only(self):
        collector = StatisticsCollector(["a"])
        collector.observe_rows(rows())
        assert collector.tracked_field_names == ["a"]

    def test_missing_field_counts_null(self):
        collector = StatisticsCollector(["ghost"])
        collector.observe_row({"a": 1})
        assert collector.field("ghost").null_count == 1

    def test_sketch_cost_units(self):
        collector = StatisticsCollector(["a", "b"])
        collector.observe_rows(rows(10))
        assert collector.sketch_cost_units() == 20

    def test_empty_tracked_fields_cost(self):
        collector = StatisticsCollector([])
        collector.observe_rows(rows(10))
        assert collector.sketch_cost_units() == 10
