"""Statistics catalog tests."""

import pytest

from repro.common.errors import CatalogError
from repro.stats.catalog import DatasetStatistics, StatisticsCatalog
from repro.stats.collector import StatisticsCollector


def entry(name="t", rows=100, width=40, scale=1.0):
    return DatasetStatistics(name=name, row_count=rows, row_width=width, scale=scale)


class TestDatasetStatistics:
    def test_byte_size(self):
        assert entry(rows=10, width=8).byte_size == 80

    def test_distinct_fallback_is_row_count(self):
        assert entry(rows=50).distinct_count("missing") == 50

    def test_distinct_capped_by_rows(self):
        collector = StatisticsCollector(["k"])
        for i in range(100):
            collector.observe_row({"k": i})
        stats = DatasetStatistics("t", 10, 40, dict(collector.fields))
        assert stats.distinct_count("k") <= 10

    def test_distinct_from_sketch(self):
        collector = StatisticsCollector(["k"])
        for i in range(1000):
            collector.observe_row({"k": i % 25})
        stats = DatasetStatistics("t", 1000, 40, dict(collector.fields))
        assert abs(stats.distinct_count("k") - 25) <= 2


class TestCatalog:
    def test_register_get(self):
        catalog = StatisticsCatalog()
        catalog.register(entry())
        assert catalog.get("t").row_count == 100

    def test_missing_raises(self):
        with pytest.raises(CatalogError):
            StatisticsCatalog().get("nope")

    def test_has_and_remove(self):
        catalog = StatisticsCatalog()
        catalog.register(entry())
        assert catalog.has("t")
        catalog.remove("t")
        assert not catalog.has("t")

    def test_remove_missing_is_noop(self):
        StatisticsCatalog().remove("ghost")

    def test_names_sorted(self):
        catalog = StatisticsCatalog()
        catalog.register(entry("b"))
        catalog.register(entry("a"))
        assert catalog.names() == ["a", "b"]

    def test_copy_membership_independent(self):
        catalog = StatisticsCatalog()
        catalog.register(entry("t"))
        clone = catalog.copy()
        clone.register(entry("u"))
        assert not catalog.has("u")
        assert clone.has("t")

    def test_copy_shares_entries(self):
        catalog = StatisticsCatalog()
        catalog.register(entry("t"))
        assert catalog.copy().get("t") is catalog.get("t")

    def test_register_from_collector_scale(self):
        catalog = StatisticsCatalog()
        collector = StatisticsCollector(["a"])
        collector.observe_row({"a": 1})
        stats = catalog.register_from_collector("t", collector, 40, scale=100.0)
        assert stats.scale == 100.0
        assert stats.row_count == 1
