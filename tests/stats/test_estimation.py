"""Cardinality and selectivity estimation tests (formula 1, defaults)."""

import pytest

from repro.lang.ast import (
    BetweenPredicate,
    ComparisonPredicate,
    JoinCondition,
    ParameterPredicate,
    UdfPredicate,
)
from repro.stats.catalog import DatasetStatistics
from repro.stats.collector import StatisticsCollector
from repro.stats.estimation import (
    DEFAULT_EQUALITY_SELECTIVITY,
    DEFAULT_INEQUALITY_SELECTIVITY,
    conjunctive_selectivity,
    default_selectivity,
    filtered_cardinality,
    join_cardinality,
    predicate_selectivity,
)


def stats_for(rows, name="t", width=40, scale=1.0, predicates_applied=False):
    fields = sorted({key for row in rows for key in row})
    collector = StatisticsCollector(fields)
    collector.observe_rows(rows)
    return DatasetStatistics(
        name,
        len(rows),
        width,
        dict(collector.fields),
        predicates_applied=predicates_applied,
        scale=scale,
    )


@pytest.fixture(scope="module")
def uniform_stats():
    return stats_for([{"x": i % 100, "label": f"v{i % 4}"} for i in range(10_000)])


class TestDefaults:
    def test_equality_default(self):
        assert default_selectivity("=") == DEFAULT_EQUALITY_SELECTIVITY
        assert default_selectivity("!=") == DEFAULT_EQUALITY_SELECTIVITY

    def test_inequality_default(self):
        for op in ("<", "<=", ">", ">="):
            assert default_selectivity(op) == DEFAULT_INEQUALITY_SELECTIVITY

    def test_udf_predicate_gets_default(self, uniform_stats):
        predicate = UdfPredicate("t.x", "mymod10", "=", 3)
        assert predicate_selectivity(uniform_stats, predicate) == (
            DEFAULT_EQUALITY_SELECTIVITY
        )

    def test_parameter_predicate_gets_default(self, uniform_stats):
        predicate = ParameterPredicate("t.x", ">", "p")
        assert predicate_selectivity(uniform_stats, predicate) == (
            DEFAULT_INEQUALITY_SELECTIVITY
        )

    def test_unknown_field_gets_default(self, uniform_stats):
        predicate = ComparisonPredicate("t.ghost", "=", 1)
        assert predicate_selectivity(uniform_stats, predicate) == (
            DEFAULT_EQUALITY_SELECTIVITY
        )


class TestHistogramEstimates:
    def test_range_estimate(self, uniform_stats):
        predicate = ComparisonPredicate("t.x", "<", 50)
        assert predicate_selectivity(uniform_stats, predicate) == pytest.approx(
            0.5, abs=0.08
        )

    def test_between_estimate(self, uniform_stats):
        predicate = BetweenPredicate("t.x", 20, 39)
        assert predicate_selectivity(uniform_stats, predicate) == pytest.approx(
            0.2, abs=0.08
        )

    def test_string_equality_uses_distinct(self, uniform_stats):
        predicate = ComparisonPredicate("t.label", "=", "v2")
        assert predicate_selectivity(uniform_stats, predicate) == pytest.approx(
            0.25, abs=0.05
        )

    def test_non_numeric_between_defaults(self, uniform_stats):
        predicate = BetweenPredicate("t.label", "a", "z")
        assert predicate_selectivity(uniform_stats, predicate) == (
            DEFAULT_INEQUALITY_SELECTIVITY
        )


class TestConjunctions:
    def test_independence_multiplication(self, uniform_stats):
        predicates = [
            ComparisonPredicate("t.x", "<", 50),
            ComparisonPredicate("t.label", "=", "v2"),
        ]
        combined = conjunctive_selectivity(uniform_stats, predicates)
        assert combined == pytest.approx(0.5 * 0.25, abs=0.05)

    def test_filtered_cardinality(self, uniform_stats):
        predicates = [ComparisonPredicate("t.x", "<", 10)]
        assert filtered_cardinality(uniform_stats, predicates) == pytest.approx(
            1000, rel=0.35
        )

    def test_predicates_applied_passthrough(self):
        stats = stats_for([{"x": 1}] * 10, predicates_applied=True)
        predicates = [ComparisonPredicate("t.x", "=", 1)]
        assert filtered_cardinality(stats, predicates) == 10

    def test_empty_conjunction_is_one(self, uniform_stats):
        assert conjunctive_selectivity(uniform_stats, []) == 1.0


class TestJoinCardinality:
    def make_sides(self):
        left = stats_for(
            [{"k": i % 50, "v": i} for i in range(1000)], name="left"
        )
        right = stats_for([{"k": i} for i in range(50)], name="right")
        return left, right

    def test_fk_join_estimate(self):
        left, right = self.make_sides()
        conditions = [JoinCondition("left.k", "right.k")]
        estimate = join_cardinality(left, right, conditions)
        # |left ⋈ right| should be ~|left| for a fk join
        assert estimate == pytest.approx(1000, rel=0.15)

    def test_filtered_rows_override(self):
        left, right = self.make_sides()
        conditions = [JoinCondition("left.k", "right.k")]
        estimate = join_cardinality(left, right, conditions, left_rows=100)
        assert estimate == pytest.approx(100, rel=0.15)

    def test_composite_uses_most_selective_conjunct(self):
        rows_left = [{"a": i % 20, "b": i % 400} for i in range(1000)]
        rows_right = [{"a": i % 20, "b": i % 400} for i in range(1000)]
        left, right = stats_for(rows_left, "l"), stats_for(rows_right, "r")
        conditions = [JoinCondition("l.a", "r.a"), JoinCondition("l.b", "r.b")]
        estimate = join_cardinality(left, right, conditions)
        # divide by max U (~400), not by 20*400
        assert estimate == pytest.approx(1000 * 1000 / 400, rel=0.2)

    def test_no_conditions_is_cross_product(self):
        left, right = self.make_sides()
        assert join_cardinality(left, right, []) == 1000 * 50

    def test_never_negative(self):
        left, right = self.make_sides()
        conditions = [JoinCondition("left.k", "right.k")]
        assert join_cardinality(left, right, conditions, left_rows=0) == 0.0
