"""CORDS-style correlation discovery tests."""

import random

import pytest

from repro.common.errors import StatisticsError
from repro.common.types import DataType, Schema
from repro.session import Session
from repro.stats.correlation import (
    ColumnCorrelation,
    CorrelationDetector,
    discover_correlations,
)

from tests.conftest import small_cluster


def rows_independent(n=3000, seed=1):
    rng = random.Random(seed)
    return [{"a": rng.randrange(30), "b": rng.randrange(30)} for _ in range(n)]


def rows_dependent(n=3000, seed=1):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        a = rng.randrange(30)
        out.append({"a": a, "b": a * 2})  # b is a function of a
    return out


class TestDetector:
    def test_independent_columns_low_strength(self):
        detector = CorrelationDetector([("a", "b")])
        detector.observe_rows(rows_independent())
        result = detector.result("a", "b")
        assert result.correlation_strength < 0.3
        assert not result.is_correlated

    def test_functional_dependency_high_strength(self):
        detector = CorrelationDetector([("a", "b")])
        detector.observe_rows(rows_dependent())
        result = detector.result("a", "b")
        assert result.correlation_strength > 0.9
        assert result.is_correlated

    def test_pair_order_insensitive(self):
        detector = CorrelationDetector([("b", "a")])
        detector.observe_rows(rows_dependent())
        assert detector.result("a", "b") == detector.result("b", "a")

    def test_untracked_pair_raises(self):
        detector = CorrelationDetector([("a", "b")])
        with pytest.raises(StatisticsError):
            detector.result("a", "ghost")

    def test_empty_pairs_rejected(self):
        with pytest.raises(StatisticsError):
            CorrelationDetector([])

    def test_nulls_ignored(self):
        detector = CorrelationDetector([("a", "b")])
        detector.observe_rows([{"a": None, "b": 1}, {"a": 1, "b": None}] * 10)
        detector.observe_rows(rows_dependent(500))
        assert detector.result("a", "b").is_correlated

    def test_multiple_pairs_one_pass(self):
        rng = random.Random(2)
        rows = [
            {"x": rng.randrange(20), "y": rng.randrange(20), "z": None}
            for _ in range(2000)
        ]
        for row in rows:
            row["z"] = row["x"] % 5  # z depends on x
        detector = CorrelationDetector([("x", "y"), ("x", "z")])
        detector.observe_rows(rows)
        results = {(
            r.column_a, r.column_b): r.is_correlated for r in detector.results()}
        assert results[("x", "y")] is False
        assert results[("x", "z")] is True


class TestCorrelationMath:
    def test_perfect_dependency_strength_one(self):
        corr = ColumnCorrelation("a", "b", 30, 30, 30, 10_000)
        assert corr.correlation_strength == pytest.approx(1.0)

    def test_independent_strength_zero(self):
        corr = ColumnCorrelation("a", "b", 30, 30, 900, 10_000)
        assert corr.correlation_strength == pytest.approx(0.0)

    def test_capped_by_row_count(self):
        corr = ColumnCorrelation("a", "b", 100, 100, 500, 500)
        assert corr.independence_expectation == 500

    def test_degenerate_single_value_columns(self):
        corr = ColumnCorrelation("a", "b", 1, 1, 1, 100)
        assert corr.correlation_strength == 0.0


class TestDiscoverOnDataset:
    def test_detects_the_q8_orders_correlation(self):
        """The paper's injected correlation: o_orderstatus is a function of
        the o_orderdate era — CORDS-style discovery finds it."""
        from repro.workloads.tpch import generate

        session = Session(small_cluster())
        orders = generate(10)["orders"]
        schema = Schema.of(
            ("o_orderkey", DataType.INT),
            ("o_custkey", DataType.INT),
            ("o_orderstatus", DataType.STRING),
            ("o_orderdate", DataType.DATE),
            ("o_totalprice", DataType.DOUBLE),
            primary_key=("o_orderkey",),
        )
        session.load("orders", schema, orders)
        dataset = session.datasets.get("orders")
        (status_date,) = discover_correlations(
            dataset, [("o_orderdate", "o_orderstatus")], sample_limit=None
        )
        (status_cust,) = discover_correlations(
            dataset, [("o_custkey", "o_orderstatus")], sample_limit=None
        )
        # date->status is (nearly) functionally dependent; customer is not
        assert status_date.correlation_strength > status_cust.correlation_strength

    def test_sample_limit_respected(self):
        session = Session(small_cluster())
        schema = Schema.of(("a", DataType.INT), ("b", DataType.INT))
        session.load("t", schema, rows_dependent(5000))
        results = discover_correlations(
            session.datasets.get("t"), [("a", "b")], sample_limit=100
        )
        assert results[0].rows == 100
