"""JoinAlgorithmRule and PushDownPredicateRule tests."""

import pytest

from repro.algebra.rules.join_algorithm import JoinSide, choose_algorithm
from repro.algebra.rules.pushdown import (
    needs_pushdown,
    pushdown_candidates,
    surviving_columns,
)
from repro.cluster.config import ClusterConfig
from repro.engine.operators.joins import JoinAlgorithm
from repro.lang.ast import (
    ComparisonPredicate,
    JoinCondition,
    ParameterPredicate,
    Query,
    TableRef,
    UdfPredicate,
)

CLUSTER = ClusterConfig(broadcast_budget_bytes=1000.0)


def side(bytes_, **kwargs):
    defaults = dict(rows=bytes_ / 10, byte_size=bytes_)
    defaults.update(kwargs)
    return JoinSide(**defaults)


class TestJoinAlgorithmRule:
    def test_hash_when_both_large(self):
        choice = choose_algorithm(side(5000), side(8000), ("k",), ("k",), CLUSTER)
        assert choice.algorithm is JoinAlgorithm.HASH
        assert choice.build_is_left  # smaller side builds

    def test_broadcast_when_one_side_fits(self):
        choice = choose_algorithm(side(500), side(8000), ("k",), ("k",), CLUSTER)
        assert choice.algorithm is JoinAlgorithm.BROADCAST
        assert choice.build_is_left

    def test_broadcast_orientation_right(self):
        choice = choose_algorithm(side(8000), side(500), ("k",), ("k",), CLUSTER)
        assert choice.algorithm is JoinAlgorithm.BROADCAST
        assert not choice.build_is_left

    def test_inl_requires_enable_flag(self):
        build = side(500, filtered=True)
        probe = side(9000, is_base=True, indexed_fields=frozenset(("k",)))
        choice = choose_algorithm(build, probe, ("j",), ("k",), CLUSTER)
        assert choice.algorithm is JoinAlgorithm.BROADCAST
        choice = choose_algorithm(
            build, probe, ("j",), ("k",), CLUSTER, inl_enabled=True
        )
        assert choice.algorithm is JoinAlgorithm.INDEX_NESTED_LOOP

    def test_inl_requires_index_on_first_field(self):
        build = side(500, filtered=True)
        probe = side(9000, is_base=True, indexed_fields=frozenset(("other",)))
        choice = choose_algorithm(
            build, probe, ("j",), ("k",), CLUSTER, inl_enabled=True
        )
        assert choice.algorithm is not JoinAlgorithm.INDEX_NESTED_LOOP

    def test_inl_requires_filtered_build(self):
        # "the dataset that gets broadcast must be filtered"
        build = side(500, filtered=False)
        probe = side(9000, is_base=True, indexed_fields=frozenset(("k",)))
        choice = choose_algorithm(
            build, probe, ("j",), ("k",), CLUSTER, inl_enabled=True
        )
        assert choice.algorithm is JoinAlgorithm.BROADCAST

    def test_inl_requires_base_predicate_free_probe(self):
        build = side(500, filtered=True)
        probe = side(
            9000,
            is_base=True,
            indexed_fields=frozenset(("k",)),
            predicate_free=False,
        )
        choice = choose_algorithm(
            build, probe, ("j",), ("k",), CLUSTER, inl_enabled=True
        )
        assert choice.algorithm is not JoinAlgorithm.INDEX_NESTED_LOOP

    def test_inl_size_budget(self):
        build = side(5000, filtered=True)  # too big for the 1000-byte budget
        probe = side(90_000, is_base=True, indexed_fields=frozenset(("k",)))
        choice = choose_algorithm(
            build, probe, ("j",), ("k",), CLUSTER, inl_enabled=True
        )
        assert choice.algorithm is JoinAlgorithm.HASH

    def test_hints_only_mode_defaults_to_hash(self):
        choice = choose_algorithm(
            side(10), side(8000), ("k",), ("k",), CLUSTER, honor_hints_only=True
        )
        assert choice.algorithm is JoinAlgorithm.HASH

    def test_hints_only_mode_respects_hint(self):
        hinted = side(10, broadcast_hint=True)
        choice = choose_algorithm(
            hinted, side(8000), ("k",), ("k",), CLUSTER, honor_hints_only=True
        )
        assert choice.algorithm is JoinAlgorithm.BROADCAST
        assert choice.build_is_left


def query_with_predicates():
    return Query(
        select=("a.x", "b.y"),
        tables=(TableRef("ta", "a"), TableRef("tb", "b"), TableRef("tc", "c")),
        predicates=(
            ComparisonPredicate("a.x", "=", 1),
            ComparisonPredicate("a.y", "<", 2),
            UdfPredicate("b.z", "mymod10", "=", 3),
            ComparisonPredicate("c.w", "=", 4),
        ),
        joins=(JoinCondition("a.k", "b.k"), JoinCondition("b.j", "c.j")),
        group_by=("b.y",),
    )


class TestPushdownRule:
    def test_needs_pushdown_multiple(self):
        predicates = (
            ComparisonPredicate("a.x", "=", 1),
            ComparisonPredicate("a.y", "=", 2),
        )
        assert needs_pushdown(predicates)

    def test_needs_pushdown_single_complex(self):
        assert needs_pushdown((UdfPredicate("a.x", "mymod10", "=", 1),))
        assert needs_pushdown((ParameterPredicate("a.x", "=", "p"),))

    def test_single_simple_not_pushed(self):
        assert not needs_pushdown((ComparisonPredicate("a.x", "=", 1),))

    def test_surviving_columns(self):
        query = query_with_predicates()
        alias_columns = {"a.x", "a.y", "a.k"}
        kept = surviving_columns(query, alias_columns)
        # a.x in select, a.k in a join; a.y only in a local predicate -> dropped
        assert set(kept) == {"a.x", "a.k"}

    def test_candidates(self):
        query = query_with_predicates()
        columns = {
            "a": {"a.x", "a.y", "a.k"},
            "b": {"b.y", "b.z", "b.k", "b.j"},
            "c": {"c.w", "c.j"},
        }
        candidates = pushdown_candidates(query, columns)
        # a: two predicates -> yes; b: one complex -> yes; c: one simple -> no
        assert [c.table.alias for c in candidates] == ["a", "b"]
        b_candidate = candidates[1]
        assert set(b_candidate.keep_columns) == {"b.y", "b.k", "b.j"}
