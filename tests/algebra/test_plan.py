"""Plan-tree tests."""

from repro.algebra.plan import JoinNode, LeafNode, is_bushy, is_right_deep
from repro.engine.operators.joins import JoinAlgorithm
from repro.lang.ast import ComparisonPredicate


def leaf(alias, predicates=()):
    return LeafNode(alias=alias, dataset=alias, predicates=tuple(predicates))


def join(build, probe, algorithm=JoinAlgorithm.HASH):
    return JoinNode(
        build=build,
        probe=probe,
        build_keys=(f"{sorted(build.aliases)[0]}.k",),
        probe_keys=(f"{sorted(probe.aliases)[0]}.k",),
        algorithm=algorithm,
    )


class TestNodes:
    def test_leaf_aliases(self):
        assert leaf("a").aliases == frozenset(("a",))

    def test_join_aliases_union(self):
        node = join(leaf("a"), join(leaf("b"), leaf("c")))
        assert node.aliases == frozenset(("a", "b", "c"))

    def test_describe_markers(self):
        node = join(leaf("a"), leaf("b"), JoinAlgorithm.BROADCAST)
        assert node.describe() == "(a ⋈b b)"
        node = join(leaf("a"), leaf("b"), JoinAlgorithm.INDEX_NESTED_LOOP)
        assert "⋈i" in node.describe()
        node = join(leaf("a"), leaf("b"))
        assert node.describe() == "(a ⋈ b)"

    def test_describe_sigma_for_filtered_leaf(self):
        filtered = leaf("a", [ComparisonPredicate("a.x", "=", 1)])
        assert filtered.describe() == "σ(a)"

    def test_join_nodes_postorder(self):
        inner = join(leaf("a"), leaf("b"))
        outer = join(inner, leaf("c"))
        assert outer.join_nodes() == [inner, outer]

    def test_leaves_in_order(self):
        tree = join(join(leaf("a"), leaf("b")), leaf("c"))
        assert [l.alias for l in tree.leaves()] == ["a", "b", "c"]

    def test_with_algorithm(self):
        node = join(leaf("a"), leaf("b"))
        assert node.with_algorithm(JoinAlgorithm.BROADCAST).algorithm == (
            JoinAlgorithm.BROADCAST
        )


class TestShapePredicates:
    def test_leaf_is_right_deep_not_bushy(self):
        assert is_right_deep(leaf("a"))
        assert not is_bushy(leaf("a"))

    def test_linear_chain_right_deep(self):
        tree = join(leaf("a"), join(leaf("b"), leaf("c")))
        assert is_right_deep(tree)
        assert not is_bushy(tree)

    def test_bushy_detected(self):
        tree = join(join(leaf("a"), leaf("b")), join(leaf("c"), leaf("d")))
        assert is_bushy(tree)
        assert not is_right_deep(tree)

    def test_left_accumulated_not_right_deep(self):
        tree = join(join(leaf("a"), leaf("b")), leaf("c"))
        assert not is_right_deep(tree)
        assert not is_bushy(tree)
