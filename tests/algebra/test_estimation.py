"""Plan-level estimation tests: leaves, joins, widths, cost metrics."""

import pytest

from repro.algebra.plan import JoinNode, LeafNode
from repro.algebra.toolkit import PlannerToolkit
from repro.engine.operators.joins import JoinAlgorithm
from repro.lang.ast import ComparisonPredicate, UdfPredicate
from repro.stats.estimation import DEFAULT_EQUALITY_SELECTIVITY

from tests.conftest import build_star_session, star_query


@pytest.fixture(scope="module")
def toolkit():
    session = build_star_session()
    return PlannerToolkit(star_query(), session)


def make_join_node(toolkit, a, b):
    conditions = toolkit.conditions_across(frozenset((a,)), frozenset((b,)))
    return toolkit.make_join(toolkit.leaf(a), toolkit.leaf(b), conditions)


class TestLeafEstimates:
    def test_unfiltered_leaf_is_row_count(self, toolkit):
        estimate = toolkit.estimator.leaf_estimate(toolkit.leaf("fact"))
        assert estimate.rows == 2000
        assert estimate.scale == 10_000.0

    def test_simple_filter_uses_histogram(self, toolkit):
        estimate = toolkit.estimator.leaf_estimate(toolkit.leaf("da"))
        # a_attr = 2 over 7 values of 50 rows ~ 7-8 rows
        assert estimate.rows == pytest.approx(50 / 7, rel=0.6)

    def test_udf_filter_uses_default(self, toolkit):
        estimate = toolkit.estimator.leaf_estimate(toolkit.leaf("db"))
        assert estimate.rows == pytest.approx(40 * DEFAULT_EQUALITY_SELECTIVITY)


class TestJoinEstimates:
    def test_fk_join_close_to_fact_size(self, toolkit):
        node = JoinNode(
            build=LeafNode("da", "da"),
            probe=LeafNode("fact", "fact"),
            build_keys=("da.a_id",),
            probe_keys=("fact.f_a",),
        )
        estimate = toolkit.estimator.estimate(node)
        assert estimate.rows == pytest.approx(2000, rel=0.15)

    def test_join_width_is_concatenated(self, toolkit):
        node = make_join_node(toolkit, "fact", "da")
        estimate = toolkit.estimator.estimate(node)
        left = toolkit.estimator.estimate(toolkit.leaf("fact"))
        right = toolkit.estimator.estimate(toolkit.leaf("da"))
        assert estimate.row_width == left.row_width + right.row_width

    def test_join_scale_is_max(self, toolkit):
        node = make_join_node(toolkit, "fact", "da")
        assert toolkit.estimator.estimate(node).scale == 10_000.0

    def test_modeled_rows(self, toolkit):
        estimate = toolkit.estimator.leaf_estimate(toolkit.leaf("fact"))
        assert estimate.modeled_rows == 2000 * 10_000.0
        assert estimate.byte_size == estimate.modeled_rows * estimate.row_width


class TestCosts:
    def test_cout_is_sum_of_intermediate_volumes(self, toolkit):
        inner = make_join_node(toolkit, "fact", "da")
        outer = toolkit.make_join(
            inner,
            toolkit.leaf("db"),
            toolkit.conditions_across(inner.aliases, frozenset(("db",))),
        )
        inner_only = toolkit.estimator.cout_cost(inner)
        total = toolkit.estimator.cout_cost(outer)
        assert total > inner_only > 0
        assert toolkit.estimator.cout_cost(toolkit.leaf("fact")) == 0.0

    def test_movement_cost_positive_and_orders_algorithms(self, toolkit):
        node = make_join_node(toolkit, "fact", "da")
        hash_cost = toolkit.estimator.plan_cost(
            node.with_algorithm(JoinAlgorithm.HASH)
        )
        bcast_cost = toolkit.estimator.plan_cost(
            node.with_algorithm(JoinAlgorithm.BROADCAST)
        )
        assert hash_cost > 0 and bcast_cost > 0
        # tiny filtered dim vs big fact: broadcast must be cheaper
        assert bcast_cost < hash_cost


class TestCompositeRules:
    def test_product_rule_collapses_composites(self):
        session = build_star_session()
        query = star_query()
        # add a second (redundant) conjunct between fact and da
        from dataclasses import replace
        from repro.lang.ast import JoinCondition

        query2 = replace(
            query, joins=query.joins + (JoinCondition("fact.f_b", "da.a_attr"),)
        )
        max_toolkit = PlannerToolkit(query2, session, composite_rule="max")
        product_toolkit = PlannerToolkit(query2, session, composite_rule="product")
        node_max = make_join_node(max_toolkit, "fact", "da")
        node_product = make_join_node(product_toolkit, "fact", "da")
        est_max = max_toolkit.estimator.estimate(node_max).rows
        est_product = product_toolkit.estimator.estimate(node_product).rows
        assert est_product < est_max

    def test_unknown_rule_rejected(self):
        session = build_star_session()
        from repro.common.errors import PlanError

        with pytest.raises(PlanError):
            PlannerToolkit(star_query(), session, composite_rule="geometric")
