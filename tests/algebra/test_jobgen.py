"""Job construction tests: compilation, projection push-down, Figure 4 jobs."""

import pytest

from repro.algebra.jobgen import (
    build_final_job,
    build_pushdown_job,
    build_sink_job,
    compile_plan,
    leaf_provides,
    node_provides,
    query_required_columns,
)
from repro.algebra.plan import JoinNode, LeafNode
from repro.algebra.toolkit import PlannerToolkit
from repro.common.errors import PlanError
from repro.engine.operators.joins import JoinAlgorithm
from repro.engine.operators.scan import ReaderOp, ScanOp
from repro.engine.operators.select import ProjectOp, SelectOp
from repro.engine.operators.sink import DistributeResultOp, SinkOp
from repro.lang.ast import ComparisonPredicate

from tests.conftest import star_query


def fact_da_plan(toolkit, algorithm=JoinAlgorithm.BROADCAST):
    conditions = toolkit.conditions_across(frozenset(("fact",)), frozenset(("da",)))
    node = toolkit.make_join(toolkit.leaf("da"), toolkit.leaf("fact"), conditions)
    return node.with_algorithm(algorithm)


@pytest.fixture
def toolkit(star_session):
    return PlannerToolkit(star_query(), star_session)


class TestCompile:
    def test_leaf_with_predicates_gets_select(self, star_session, toolkit):
        op = compile_plan(toolkit.leaf("da"), star_session.datasets)
        assert isinstance(op, SelectOp)
        assert isinstance(op.children[0], ScanOp)

    def test_plain_leaf_is_scan(self, star_session, toolkit):
        op = compile_plan(toolkit.leaf("fact"), star_session.datasets)
        assert isinstance(op, ScanOp)

    def test_intermediate_leaf_is_reader(self, star_session):
        from repro.storage.ingest import register_intermediate
        from repro.common.types import DataType, Schema

        register_intermediate(
            "inter",
            Schema.of(("fact.f_a", DataType.INT)),
            [[]],
            None,
            star_session.datasets,
        )
        leaf = LeafNode("inter", "inter", is_intermediate=True)
        op = compile_plan(leaf, star_session.datasets)
        assert isinstance(op, ReaderOp)

    def test_inl_probe_must_be_base_leaf(self, star_session, toolkit):
        inner = fact_da_plan(toolkit)
        bad = JoinNode(
            build=toolkit.leaf("db"),
            probe=inner,
            build_keys=("db.b_id",),
            probe_keys=("fact.f_b",),
            algorithm=JoinAlgorithm.INDEX_NESTED_LOOP,
        )
        with pytest.raises(PlanError):
            compile_plan(bad, star_session.datasets)

    def test_inl_probe_must_be_predicate_free(self, star_session, toolkit):
        bad = JoinNode(
            build=toolkit.leaf("db"),
            probe=toolkit.leaf("da"),  # has predicates
            build_keys=("db.b_id",),
            probe_keys=("da.a_id",),
            algorithm=JoinAlgorithm.INDEX_NESTED_LOOP,
        )
        with pytest.raises(PlanError):
            compile_plan(bad, star_session.datasets)


class TestProjectionPushdown:
    def test_projection_inserted_when_required_given(self, star_session, toolkit):
        plan = fact_da_plan(toolkit)
        op = compile_plan(plan, star_session.datasets, {"fact.f_val"})
        assert isinstance(op, ProjectOp)
        assert set(op.columns) <= {"fact.f_val"}

    def test_leaf_projection_keeps_keys(self, star_session, toolkit):
        plan = fact_da_plan(toolkit)
        job = build_final_job(plan, star_query(), star_session.datasets)
        data, _ = star_session.executor.execute(job)
        # executing works because join keys survived below the join
        assert data.row_count >= 0

    def test_no_projection_without_required(self, star_session, toolkit):
        op = compile_plan(fact_da_plan(toolkit), star_session.datasets)
        assert not isinstance(op, ProjectOp)

    def test_query_required_columns(self):
        query = star_query()
        required = query_required_columns(query)
        assert "fact.f_val" in required and "da.a_attr" in required

    def test_provides_helpers(self, star_session, toolkit):
        leaf = toolkit.leaf("da")
        assert leaf_provides(leaf, star_session.datasets) == {"da.a_id", "da.a_attr"}
        plan = fact_da_plan(toolkit)
        provides = node_provides(plan, star_session.datasets)
        assert {"da.a_id", "fact.f_val"} <= provides


class TestJobBuilders:
    def test_final_job_shape(self, star_session, toolkit):
        job = build_final_job(fact_da_plan(toolkit), star_query(), star_session.datasets)
        assert isinstance(job.root, DistributeResultOp)
        assert job.phase == "final"

    def test_final_job_with_tail(self, star_session, toolkit):
        query = star_query()
        from dataclasses import replace

        grouped = replace(
            query, group_by=("da.a_attr",), order_by=("da.a_attr",), limit=3
        )
        job = build_final_job(fact_da_plan(toolkit), grouped, star_session.datasets)
        data, _ = star_session.executor.execute(job)
        assert data.row_count <= 3
        assert all("count" in row for row in data.all_rows())

    def test_sink_job_materializes(self, star_session, toolkit):
        job = build_sink_job(
            fact_da_plan(toolkit),
            "i0",
            ("fact.f_val", "fact.f_b"),
            ("fact.f_b",),
            star_session.datasets,
        )
        assert isinstance(job.root, SinkOp)
        star_session.executor.execute(job)
        assert star_session.datasets.get("i0").is_intermediate

    def test_pushdown_job(self, star_session):
        from repro.lang.ast import TableRef

        job = build_pushdown_job(
            TableRef("da", "da"),
            (ComparisonPredicate("da.a_attr", "=", 2),),
            ("da.a_id",),
            "filtered_da",
            ("da.a_id",),
        )
        assert job.phase == "pushdown"
        data, metrics = star_session.executor.execute(job)
        assert all(set(row) == {"da.a_id"} for row in data.all_rows())
        assert metrics.materialize > 0

    def test_job_render(self, star_session, toolkit):
        job = build_final_job(fact_da_plan(toolkit), star_query(), star_session.datasets)
        text = job.render()
        assert "Job" in text and "DistributeResult" in text

    def test_jobs_carry_their_source_plan(self, star_session, toolkit):
        plan = fact_da_plan(toolkit)
        final = build_final_job(plan, star_query(), star_session.datasets)
        sink = build_sink_job(plan, "i0", ("fact.f_val",), (), star_session.datasets)
        assert final.plan is plan and sink.plan is plan


class TestErrorPaths:
    """Unknown node types and released namespaces fail loudly, not mid-job."""

    def test_node_provides_rejects_unknown_node(self, star_session):
        class WeirdNode:
            """A plan-node type the analyzers were never taught about."""

        with pytest.raises(PlanError, match="cannot analyze"):
            node_provides(WeirdNode(), star_session.datasets)

    def test_compile_plan_rejects_unknown_node(self, star_session):
        class WeirdNode:
            pass

        with pytest.raises(PlanError, match="cannot compile"):
            compile_plan(WeirdNode(), star_session.datasets)

    def test_reader_over_released_namespace_is_flagged(self, star_session):
        """A sink job recompiled after its ``__q<id>`` namespace was dropped
        (the scheduler's failure cleanup) must verify as P002 before launch,
        not crash mid-query."""
        from repro.analysis.verifier import verify_job
        from repro.common.types import DataType, Schema
        from repro.storage.ingest import register_intermediate

        register_intermediate(
            "__q3_i0",
            Schema.of(("fact.f_a", DataType.INT)),
            [[{"fact.f_a": 1}]],
            None,
            star_session.datasets,
        )
        leaf = LeafNode("__q3_i0", "__q3_i0", is_intermediate=True)
        job = build_sink_job(
            leaf, "__q3_i1", ("fact.f_a",), (), star_session.datasets
        )
        assert verify_job(job, star_session.datasets) == []
        star_session.datasets.drop("__q3_i0")
        codes = [d.code for d in verify_job(job, star_session.datasets)]
        assert "P002" in codes
