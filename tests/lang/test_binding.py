"""Column resolution tests, including intermediates with qualified columns."""

import pytest

from repro.common.errors import QueryError
from repro.common.types import DataType, Schema
from repro.lang.ast import JoinCondition, Query, TableRef
from repro.lang.binding import ColumnResolver, provided_columns


def schemas():
    return {
        "ta": Schema.of(("x", DataType.INT), ("k", DataType.INT)),
        "tb": Schema.of(("y", DataType.INT), ("k", DataType.INT)),
        # intermediate: physical columns are already qualified
        "i_ab": Schema.of(("a.x", DataType.INT), ("b.k", DataType.INT)),
    }


def lookup(name):
    return schemas()[name]


class TestProvidedColumns:
    def test_base_table_qualified_by_alias(self):
        columns = provided_columns(TableRef("ta", "a1"), lookup)
        assert columns == {"a1.x", "a1.k"}

    def test_intermediate_keeps_original_names(self):
        columns = provided_columns(TableRef("i_ab", "i_ab"), lookup)
        assert columns == {"a.x", "b.k"}


class TestResolver:
    def test_provider_base(self):
        query = Query(select=("a.x",), tables=(TableRef("ta", "a"), TableRef("tb", "b")))
        resolver = ColumnResolver(query, lookup)
        assert resolver.provider("a.x") == "a"
        assert resolver.provider("b.y") == "b"

    def test_provider_through_intermediate(self):
        query = Query(
            select=("a.x",),
            tables=(TableRef("i_ab", "i_ab"), TableRef("tb", "c")),
            joins=(JoinCondition("b.k", "c.k"),),
        )
        resolver = ColumnResolver(query, lookup)
        # b.k now lives inside the intermediate
        assert resolver.provider("b.k") == "i_ab"
        assert resolver.join_sides(JoinCondition("b.k", "c.k")) == ("i_ab", "c")

    def test_unresolvable_column_raises(self):
        query = Query(select=("a.x",), tables=(TableRef("ta", "a"),))
        resolver = ColumnResolver(query, lookup)
        with pytest.raises(QueryError):
            resolver.provider("ghost.col")

    def test_collision_detected(self):
        # same dataset under two aliases is fine (different prefixes), but an
        # intermediate clashing with a base alias is not
        query = Query(
            select=("a.x",),
            tables=(TableRef("ta", "a"), TableRef("i_ab", "i_ab")),
        )
        with pytest.raises(QueryError):
            ColumnResolver(query, lookup)

    def test_columns_of(self):
        query = Query(select=("a.x",), tables=(TableRef("ta", "a"),))
        resolver = ColumnResolver(query, lookup)
        assert resolver.columns_of("a") == {"a.x", "a.k"}

    def test_join_graph_groups_pairs(self):
        query = Query(
            select=("a.x",),
            tables=(TableRef("ta", "a"), TableRef("tb", "b")),
            joins=(JoinCondition("a.k", "b.k"), JoinCondition("a.x", "b.y")),
        )
        graph = ColumnResolver(query, lookup).join_graph()
        assert len(graph) == 1
        assert len(graph[frozenset(("a", "b"))]) == 2

    def test_join_graph_drops_absorbed_conditions(self):
        # both sides of a.x = b.k live in the intermediate -> self-join, dropped
        query = Query(
            select=("a.x",),
            tables=(TableRef("i_ab", "i_ab"), TableRef("tb", "c")),
            joins=(JoinCondition("a.x", "b.k"), JoinCondition("b.k", "c.k")),
        )
        graph = ColumnResolver(query, lookup).join_graph()
        assert len(graph) == 1
        assert frozenset(("i_ab", "c")) in graph
