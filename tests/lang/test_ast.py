"""Query AST and predicate evaluation tests."""

import pytest

from repro.common.errors import QueryError
from repro.lang.ast import (
    BetweenPredicate,
    ComparisonPredicate,
    EvaluationContext,
    JoinCondition,
    ParameterPredicate,
    Query,
    TableRef,
    UdfPredicate,
    split_column,
)
from repro.lang.udf import default_registry


def context(**params):
    return EvaluationContext(params, default_registry())


class TestSplitColumn:
    def test_roundtrip(self):
        assert split_column("a.b") == ("a", "b")

    @pytest.mark.parametrize("bad", ["plain", ".b", "a.", ""])
    def test_malformed(self, bad):
        with pytest.raises(QueryError):
            split_column(bad)


class TestComparisonPredicate:
    def test_all_operators(self):
        row = {"t.x": 5}
        cases = {
            ("=", 5): True,
            ("=", 4): False,
            ("!=", 4): True,
            ("<", 6): True,
            ("<=", 5): True,
            (">", 5): False,
            (">=", 5): True,
        }
        for (op, value), expected in cases.items():
            assert ComparisonPredicate("t.x", op, value).evaluate(row, context()) is expected

    def test_null_never_matches(self):
        predicate = ComparisonPredicate("t.x", "=", None)
        assert predicate.evaluate({"t.x": None}, context()) is False

    def test_invalid_operator(self):
        with pytest.raises(QueryError):
            ComparisonPredicate("t.x", "~", 1)

    def test_alias_and_complexity(self):
        predicate = ComparisonPredicate("t.x", "=", 1)
        assert predicate.alias == "t"
        assert predicate.is_complex is False

    def test_describe(self):
        assert "t.x = 1" in ComparisonPredicate("t.x", "=", 1).describe()


class TestBetweenPredicate:
    def test_inclusive(self):
        predicate = BetweenPredicate("t.x", 1, 3)
        assert predicate.evaluate({"t.x": 1}, context())
        assert predicate.evaluate({"t.x": 3}, context())
        assert not predicate.evaluate({"t.x": 4}, context())

    def test_null(self):
        assert not BetweenPredicate("t.x", 1, 3).evaluate({"t.x": None}, context())


class TestParameterPredicate:
    def test_binds_at_runtime(self):
        predicate = ParameterPredicate("t.x", "=", "p")
        assert predicate.is_complex
        assert predicate.evaluate({"t.x": 9}, context(p=9))
        assert not predicate.evaluate({"t.x": 9}, context(p=8))

    def test_unbound_raises(self):
        with pytest.raises(QueryError):
            ParameterPredicate("t.x", "=", "p").evaluate({"t.x": 1}, context())


class TestUdfPredicate:
    def test_evaluates_through_registry(self):
        predicate = UdfPredicate("t.x", "mymod10", "=", 3)
        assert predicate.is_complex
        assert predicate.evaluate({"t.x": 13}, context())
        assert not predicate.evaluate({"t.x": 14}, context())

    def test_unknown_udf_raises(self):
        with pytest.raises(QueryError):
            UdfPredicate("t.x", "ghost", "=", 1).evaluate({"t.x": 1}, context())


def sample_query():
    return Query(
        select=("a.x",),
        tables=(TableRef("ta", "a"), TableRef("tb", "b"), TableRef("tc", "c")),
        predicates=(ComparisonPredicate("a.x", "=", 1),),
        joins=(
            JoinCondition("a.k", "b.k"),
            JoinCondition("b.j", "c.j"),
            JoinCondition("b.j2", "c.j2"),
        ),
    )


class TestQuery:
    def test_duplicate_aliases_rejected(self):
        with pytest.raises(QueryError):
            Query(select=("a.x",), tables=(TableRef("t", "a"), TableRef("u", "a")))

    def test_table_lookup(self):
        query = sample_query()
        assert query.table("b").dataset == "tb"
        with pytest.raises(QueryError):
            query.table("ghost")

    def test_join_count_merges_conjuncts(self):
        # b-c has two conditions but is one join
        assert sample_query().join_count() == 2

    def test_join_pairs_order(self):
        pairs = sample_query().join_pairs()
        assert pairs == [frozenset(("a", "b")), frozenset(("b", "c"))]

    def test_conditions_between(self):
        conditions = sample_query().conditions_between("c", "b")
        assert len(conditions) == 2

    def test_predicates_for(self):
        query = sample_query()
        assert len(query.predicates_for("a")) == 1
        assert query.predicates_for("b") == ()

    def test_describe_contains_clauses(self):
        text = sample_query().describe()
        assert "SELECT a.x" in text
        assert "FROM" in text
        assert "a.k = b.k" in text

    def test_join_condition_aliases(self):
        assert JoinCondition("a.k", "b.k").aliases() == ("a", "b")
