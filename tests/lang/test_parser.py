"""Mini SQL parser tests."""

import pytest

from repro.common.errors import ParseError
from repro.lang.ast import (
    BetweenPredicate,
    ComparisonPredicate,
    ParameterPredicate,
    UdfPredicate,
)
from repro.lang.parser import parse_query


class TestParserBasics:
    def test_minimal(self):
        query = parse_query("SELECT t.x FROM t")
        assert query.select == ("t.x",)
        assert query.tables[0].dataset == "t"
        assert query.tables[0].alias == "t"

    def test_alias_with_as(self):
        query = parse_query("SELECT o.x FROM orders AS o")
        assert query.tables[0].dataset == "orders"
        assert query.tables[0].alias == "o"

    def test_alias_without_as(self):
        query = parse_query("SELECT o.x FROM orders o")
        assert query.tables[0].alias == "o"

    def test_multiple_tables_and_select(self):
        query = parse_query("SELECT a.x, b.y FROM ta a, tb b WHERE a.k = b.k")
        assert query.aliases == ("a", "b")
        assert len(query.joins) == 1

    def test_case_insensitive_keywords(self):
        query = parse_query("select t.x from t where t.x = 1")
        assert len(query.predicates) == 1


class TestPredicates:
    def test_comparison_int(self):
        query = parse_query("SELECT t.x FROM t WHERE t.x >= 10")
        (predicate,) = query.predicates
        assert isinstance(predicate, ComparisonPredicate)
        assert predicate.op == ">=" and predicate.value == 10

    def test_comparison_string(self):
        query = parse_query("SELECT t.x FROM t WHERE t.s = 'ASIA'")
        assert query.predicates[0].value == "ASIA"

    def test_comparison_float_and_negative(self):
        query = parse_query("SELECT t.x FROM t WHERE t.v < -2.5")
        assert query.predicates[0].value == -2.5

    def test_not_equal_spellings(self):
        for spelling in ("!=", "<>"):
            query = parse_query(f"SELECT t.x FROM t WHERE t.x {spelling} 3")
            assert query.predicates[0].op == "!="

    def test_between(self):
        query = parse_query("SELECT t.x FROM t WHERE t.d BETWEEN 5 AND 9")
        (predicate,) = query.predicates
        assert isinstance(predicate, BetweenPredicate)
        assert (predicate.low, predicate.high) == (5, 9)

    def test_udf(self):
        query = parse_query("SELECT t.x FROM t WHERE myyear(t.d) = 1998")
        (predicate,) = query.predicates
        assert isinstance(predicate, UdfPredicate)
        assert predicate.udf == "myyear"

    def test_parameter(self):
        query = parse_query("SELECT t.x FROM t WHERE t.m = $moy", moy=9)
        (predicate,) = query.predicates
        assert isinstance(predicate, ParameterPredicate)
        assert query.parameters == {"moy": 9}

    def test_join_vs_local_disambiguation(self):
        query = parse_query(
            "SELECT a.x FROM ta a, tb b WHERE a.k = b.k AND a.x = 1"
        )
        assert len(query.joins) == 1
        assert len(query.predicates) == 1

    def test_join_requires_equality(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a.x FROM ta a, tb b WHERE a.k < b.k")


class TestTail:
    def test_group_order_limit(self):
        query = parse_query(
            "SELECT t.g FROM t GROUP BY t.g ORDER BY t.g LIMIT 3"
        )
        assert query.group_by == ("t.g",)
        assert query.order_by == ("t.g",)
        assert query.limit == 3


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "FROM t",                       # missing SELECT
            "SELECT t.x",                   # missing FROM
            "SELECT x FROM t",              # unqualified column
            "SELECT t.x FROM t WHERE",      # dangling WHERE
            "SELECT t.x FROM t LIMIT",      # dangling LIMIT
            "SELECT t.x FROM t extra.tok",  # trailing garbage
            "SELECT t.x FROM t WHERE t.x ~ 3",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises((ParseError, ValueError)):
            parse_query(text)


class TestEndToEnd:
    def test_parsed_query_executes(self, star_session):
        query = parse_query(
            """
            SELECT fact.f_val, da.a_attr
            FROM fact, da, db
            WHERE da.a_attr = 2
              AND mymod10(db.b_attr) = 1
              AND fact.f_a = da.a_id
              AND fact.f_b = db.b_id
            """
        )
        from repro.testing import evaluate_reference, rows_equal_unordered

        result = star_session.execute(query, "dynamic")
        star_session.reset_intermediates()
        assert rows_equal_unordered(
            result.rows, evaluate_reference(query, star_session)
        )

    def test_paper_q50_as_sql(self, star_session):
        text = """
        SELECT store.s_store_id, ss.ss_sales_price
        FROM store_sales ss, store_returns sr, date_dim d1, date_dim d2, store
        WHERE d1.d_moy = $moy AND d1.d_year = $year
          AND d1.d_date_sk = sr.sr_returned_date_sk
          AND ss.ss_customer_sk = sr.sr_customer_sk
          AND ss.ss_item_sk = sr.sr_item_sk
          AND ss.ss_ticket_number = sr.sr_ticket_number
          AND ss.ss_sold_date_sk = d2.d_date_sk
          AND ss.ss_store_sk = store.s_store_sk
        """
        parsed = parse_query(text, moy=9, year=2000)
        from repro.workloads.tpcds import query_50

        built = query_50()
        assert parsed.join_count() == built.join_count()
        assert set(parsed.aliases) == set(built.aliases)
