"""QueryBuilder tests."""

import pytest

from repro.common.errors import QueryError
from repro.lang.ast import (
    BetweenPredicate,
    ComparisonPredicate,
    ParameterPredicate,
    UdfPredicate,
)
from repro.lang.builder import QueryBuilder


def base_builder():
    return (
        QueryBuilder()
        .select("a.x")
        .from_table("ta", "a")
        .from_table("tb", "b")
        .join("a.k", "b.k")
    )


class TestBuilder:
    def test_full_query(self):
        query = (
            base_builder()
            .where_eq("a.x", 1)
            .where_between("a.y", 0, 9)
            .where_param("b.z", "=", "p")
            .where_udf("mymod10", "b.w", "=", 3)
            .group_by("a.x")
            .order_by("a.x")
            .limit(5)
            .bind(p=7)
            .build()
        )
        assert query.select == ("a.x",)
        kinds = [type(p) for p in query.predicates]
        assert kinds == [
            ComparisonPredicate,
            BetweenPredicate,
            ParameterPredicate,
            UdfPredicate,
        ]
        assert query.limit == 5
        assert query.parameters == {"p": 7}

    def test_alias_defaults_to_dataset(self):
        query = QueryBuilder().select("t.x").from_table("t").build()
        assert query.tables[0].alias == "t"

    def test_duplicate_alias_rejected_eagerly(self):
        with pytest.raises(QueryError):
            QueryBuilder().from_table("t", "a").from_table("u", "a")

    def test_select_validates_shape(self):
        with pytest.raises(QueryError):
            QueryBuilder().select("unqualified")

    def test_join_validates_shape(self):
        with pytest.raises(QueryError):
            base_builder().join("a.k", "bad")

    def test_empty_from_rejected(self):
        with pytest.raises(QueryError):
            QueryBuilder().select("a.x").build()

    def test_empty_select_rejected(self):
        with pytest.raises(QueryError):
            QueryBuilder().from_table("t").build()

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError):
            base_builder().limit(-1)

    def test_broadcast_hint(self):
        query = (
            QueryBuilder()
            .select("a.x")
            .from_table("ta", "a", broadcast_hint=True)
            .build()
        )
        assert query.tables[0].broadcast_hint is True
