"""UDF registry tests."""

import pytest

from repro.common.errors import QueryError
from repro.lang.udf import UdfRegistry, default_registry


class TestRegistry:
    def test_register_and_get(self):
        registry = UdfRegistry()
        registry.register("double", lambda v: v * 2)
        assert registry.get("double")(3) == 6

    def test_duplicate_rejected(self):
        registry = UdfRegistry()
        registry.register("f", lambda v: v)
        with pytest.raises(QueryError):
            registry.register("f", lambda v: v)

    def test_missing_raises(self):
        with pytest.raises(QueryError):
            UdfRegistry().get("ghost")

    def test_has_and_names(self):
        registry = default_registry()
        assert registry.has("myyear")
        assert "mysub" in registry.names()


class TestDefaultUdfs:
    def test_myyear_cycle(self):
        myyear = default_registry().get("myyear")
        assert myyear(0) == 1992
        assert myyear(6 * 365) == 1998
        assert myyear(7 * 365) == 1992  # wraps
        assert myyear(None) is None

    def test_mysub_extracts_suffix(self):
        mysub = default_registry().get("mysub")
        assert mysub("Brand#3") == "#3"
        assert mysub("Brand#42") == "#42"
        assert mysub("NoHash") == "NoHash"
        assert mysub(None) is None

    def test_mymod(self):
        registry = default_registry()
        assert registry.get("mymod100")(250) == 50
        assert registry.get("mymod10")(37) == 7
        assert registry.get("mymod10")(None) is None
