"""Mutation tests: the equivalence harness must catch a broken kernel.

Each test plants one specific defect in a vectorized kernel (the free
functions in ``repro.engine.vector`` exist exactly so they can be patched
here) and asserts the cross-engine harness FAILS — proving the harness has
the sensitivity the tentpole guarantee rests on. The first test pins the
clean baseline every mutation is measured against, in the style of the plan
verifier's mutation suite.
"""

from __future__ import annotations

import pytest

from repro.cluster.cost import CostModel
from repro.engine import vector
from repro.engine.data import ColumnPartition, ColumnarData, PartitionedData
from repro.engine.metrics import JobMetrics
from repro.engine.operators.base import ExecState
from repro.engine.operators.select import SelectOp
from repro.lang.ast import ComparisonPredicate, EvaluationContext
from repro.stats.catalog import StatisticsCatalog
from repro.storage.catalog import DatasetCatalog

from tests.conftest import small_cluster
from tests.engine.equivalence import assert_engines_equivalent

CASE = ("Q50", "from_order")


def test_clean_baseline_passes():
    assert_engines_equivalent(*CASE)


class TestFusedKernelMutations:
    """Flip each branch of the fused scan+filter+project kernel."""

    def test_inverted_predicate_mask_is_caught(self, monkeypatch):
        original = vector.fused_filter_project

        def inverted(partition, predicates, live, evaluation, chunk_size):
            flipped = tuple(_NegatedPredicate(p) for p in predicates)
            return original(partition, flipped, live, evaluation, chunk_size)

        monkeypatch.setattr(vector, "fused_filter_project", inverted)
        with pytest.raises(AssertionError, match="engines diverge"):
            assert_engines_equivalent(*CASE)

    def test_dropped_predicate_is_caught(self, monkeypatch):
        original = vector.fused_filter_project

        def drops_last(partition, predicates, live, evaluation, chunk_size):
            return original(
                partition, predicates[:-1], live, evaluation, chunk_size
            )

        monkeypatch.setattr(vector, "fused_filter_project", drops_last)
        with pytest.raises(AssertionError, match="engines diverge"):
            assert_engines_equivalent(*CASE)

    def test_projection_off_by_one_is_caught(self, monkeypatch):
        original = vector.fused_filter_project

        def skips_first_survivor(
            partition, predicates, live, evaluation, chunk_size
        ):
            columns, length = original(
                partition, predicates, live, evaluation, chunk_size
            )
            if length:
                return {n: col[1:] for n, col in columns.items()}, length - 1
            return columns, length

        monkeypatch.setattr(
            vector, "fused_filter_project", skips_first_survivor
        )
        with pytest.raises(AssertionError, match="engines diverge"):
            assert_engines_equivalent(*CASE)

    def test_dead_column_gather_is_caught(self, monkeypatch):
        original = vector.fused_filter_project

        def drops_a_live_column(
            partition, predicates, live, evaluation, chunk_size
        ):
            columns, length = original(
                partition, predicates, live, evaluation, chunk_size
            )
            if columns:
                columns.pop(sorted(columns)[0])
            return columns, length

        monkeypatch.setattr(
            vector, "fused_filter_project", drops_a_live_column
        )
        with pytest.raises(AssertionError, match="engines diverge"):
            assert_engines_equivalent(*CASE)


class TestJoinKernelMutations:
    def test_reordered_probe_matches_are_caught(self, monkeypatch):
        original = vector.probe_hash_table

        def reversed_matches(table, key_column):
            build_idx, probe_idx = original(table, key_column)
            return build_idx[::-1], probe_idx[::-1]

        monkeypatch.setattr(vector, "probe_hash_table", reversed_matches)
        with pytest.raises(AssertionError, match="engines diverge"):
            assert_engines_equivalent(*CASE)


class _NegatedPredicate:
    """Wrapper flipping a predicate's batch verdicts (the planted bug)."""

    def __init__(self, inner):
        self.inner = inner
        self.column = inner.column

    def evaluate_batch(self, values, context):
        return [not ok for ok in self.inner.evaluate_batch(values, context)]


class TestFilterColumnsMutation:
    """``filter_columns`` serves already-extracted inputs (no lazy scan under
    the Select); it is not on the bench-query path, so its mutation is pinned
    by a direct operator-level A/B diff instead."""

    @staticmethod
    def _select_ab():
        from repro.common.types import DataType

        columns = {"t.a": DataType.INT, "t.v": DataType.INT}
        values = [(i % 5, i) for i in range(97)]
        row_parts = [
            [{"t.a": a, "t.v": v} for a, v in values[:50]],
            [{"t.a": a, "t.v": v} for a, v in values[50:]],
        ]
        col_parts = [
            ColumnPartition(
                {
                    "t.a": [a for a, _ in chunk],
                    "t.v": [v for _, v in chunk],
                },
                len(chunk),
            )
            for chunk in (values[:50], values[50:])
        ]
        predicate = ComparisonPredicate("t.a", "<=", 2)
        op_rows = SelectOp(_Stub(PartitionedData(row_parts, columns)), (predicate,))
        op_cols = SelectOp(_Stub(ColumnarData(col_parts, columns)), (predicate,))
        a = op_rows.execute_rows(_state("rowwise")).all_rows()
        b = op_cols.execute_columnar(_state("vectorized")).all_rows()
        return a, b

    def test_clean_operator_baseline(self):
        a, b = self._select_ab()
        assert a == b and a  # equal and non-trivial

    def test_chunk_boundary_mutation_is_caught(self, monkeypatch):
        original = vector.filter_columns

        def drops_chunk_tail(columns, length, predicates, evaluation, chunk_size):
            return original(
                columns, max(0, length - 1), predicates, evaluation, chunk_size
            )

        monkeypatch.setattr(vector, "filter_columns", drops_chunk_tail)
        a, b = self._select_ab()
        assert a != b


class _Stub:
    children = ()

    def __init__(self, data):
        self.data = data

    def run(self, state):
        return self.data


def _state(engine: str) -> ExecState:
    cluster = small_cluster()
    return ExecState(
        cluster=cluster,
        cost=CostModel(cluster),
        datasets=DatasetCatalog(),
        statistics=StatisticsCatalog(),
        evaluation=EvaluationContext(),
        metrics=JobMetrics(),
        engine=engine,
        chunk_size=16,
    )
