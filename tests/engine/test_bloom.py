"""Deterministic Bloom filter tests (repro.engine.bloom)."""

import pytest

from repro.common.errors import ReproError
from repro.engine.bloom import (
    BloomFilter,
    bloom_bit_count,
    bloom_hash_count,
    bloom_size_bytes,
)


class TestSizing:
    def test_bit_count_grows_with_expected(self):
        assert bloom_bit_count(1000) > bloom_bit_count(100) > bloom_bit_count(10)

    def test_bit_count_grows_with_tighter_fpp(self):
        assert bloom_bit_count(100, 0.001) > bloom_bit_count(100, 0.1)

    def test_minimum_floor(self):
        assert bloom_bit_count(1) >= 64
        assert bloom_hash_count(64, 1) >= 1

    def test_size_bytes_is_analytic(self):
        # No MIN_BITS floor, no rounding: scales linearly with expected keys.
        assert bloom_size_bytes(2000) == pytest.approx(2 * bloom_size_bytes(1000))

    def test_rejects_degenerate(self):
        with pytest.raises(ReproError):
            BloomFilter(0, 1)
        with pytest.raises(ReproError):
            BloomFilter(64, 0)


class TestMembership:
    def test_no_false_negatives(self):
        values = [f"key-{i}" for i in range(500)]
        bloom = BloomFilter.build(values, expected=len(values))
        assert all(bloom.might_contain(v) for v in values)

    def test_absent_values_mostly_rejected(self):
        bloom = BloomFilter.build(range(1000), expected=1000, fpp=0.01)
        false_positives = sum(
            bloom.might_contain(i) for i in range(1000, 3000)
        )
        # 2000 probes at 1% target: allow generous slack, but nowhere near
        # "everything passes".
        assert false_positives < 100

    def test_none_values_skipped(self):
        bloom = BloomFilter.build([None, "a", None], expected=3)
        assert bloom.might_contain("a")
        assert bloom.bits_set <= bloom.hash_count

    def test_mixed_types(self):
        bloom = BloomFilter.build([1, "1", (1, 2)], expected=3)
        assert bloom.might_contain(1)
        assert bloom.might_contain("1")
        assert bloom.might_contain((1, 2))


class TestDeterminism:
    def test_identical_builds_identical_fingerprints(self):
        a = BloomFilter.build(range(100), expected=100)
        b = BloomFilter.build(range(100), expected=100)
        assert a.fingerprint() == b.fingerprint()
        assert a.bits_set == b.bits_set

    def test_different_contents_differ(self):
        a = BloomFilter.build(range(100), expected=100)
        b = BloomFilter.build(range(1, 101), expected=100)
        assert a.fingerprint() != b.fingerprint()

    def test_insertion_order_irrelevant(self):
        a = BloomFilter.build([1, 2, 3], expected=3)
        b = BloomFilter.build([3, 1, 2], expected=3)
        assert a.fingerprint() == b.fingerprint()

    def test_large_filter_fingerprint(self):
        # Regression: fingerprinting went through repr() of the bit-array
        # int, which exceeds CPython's int-to-str digit limit for filters
        # sized for realistic cardinalities.
        bloom = BloomFilter.build(range(10_000), expected=10_000)
        assert bloom.size_bytes * 8 >= 4300 * 3  # big enough to have crashed
        assert len(bloom.fingerprint()) == 16


class TestChargeBytes:
    def test_defaults_to_physical_size(self):
        bloom = BloomFilter(640, 4)
        assert bloom.charge_bytes == float(bloom.size_bytes)

    def test_override_wins(self):
        bloom = BloomFilter(640, 4, charge_bytes=12345.5)
        assert bloom.charge_bytes == 12345.5

    def test_build_passes_override(self):
        bloom = BloomFilter.build([1], expected=1, charge_bytes=99.0)
        assert bloom.charge_bytes == 99.0
