"""Property test: chunk size is invisible.

DESIGN.md §10: the vectorized engine's chunk size bounds a kernel's working
set and nothing else — for any universe it must produce exactly the rows and
exactly the ``JobMetrics`` of the row-wise engine, at chunk size 1 (every
row its own chunk), 7 (chunks that straddle partition boundaries unevenly),
the default, and 10**6 (one chunk per partition).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import DataType, Schema
from repro.engine.vector import DEFAULT_CHUNK_SIZE
from repro.lang.builder import QueryBuilder
from repro.session import Session
from repro.spec import PlannerSpec

from tests.conftest import small_cluster
from tests.engine.equivalence import canonical_rows, metrics_fingerprint

CHUNK_SIZES = (1, 7, DEFAULT_CHUNK_SIZE, 10**6)

FACT = Schema.of(
    ("f_id", DataType.INT),
    ("f_k", DataType.INT),
    ("f_v", DataType.INT),
    primary_key=("f_id",),
)
DIM = Schema.of(
    ("d_id", DataType.INT),
    ("d_attr", DataType.INT),
    primary_key=("d_id",),
)

# Small random universes: values overlap enough for joins to match, and
# nullable fact values exercise the None guards in the filter kernels.
fact_rows = st.lists(
    st.tuples(
        st.integers(0, 12),
        st.one_of(st.none(), st.integers(0, 100)),
    ),
    min_size=0,
    max_size=120,
)
dim_rows = st.lists(st.integers(0, 9), min_size=1, max_size=16)


def _run(session: Session, query, engine: str, chunk_size: int) -> tuple:
    session.executor.engine = engine
    session.executor.chunk_size = chunk_size
    try:
        result = session.execute(query, PlannerSpec.of("from_order"))
        return (
            canonical_rows(result.rows),
            metrics_fingerprint(result.metrics),
            result.plan_description,
        )
    finally:
        session.reset_intermediates()


class TestChunkSizeInvariance:
    @given(fact=fact_rows, dim=dim_rows, threshold=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_rows_and_metrics_identical_across_chunk_sizes(
        self, fact, dim, threshold
    ):
        session = Session(small_cluster())
        session.load(
            "f",
            FACT,
            [
                {"f_id": i, "f_k": k, "f_v": v}
                for i, (k, v) in enumerate(fact)
            ],
        )
        session.load(
            "d",
            DIM,
            [{"d_id": i, "d_attr": x} for i, x in enumerate(dim)],
        )
        query = (
            QueryBuilder()
            .select("f.f_v", "d.d_attr")
            .from_table("f")
            .from_table("d")
            .where_compare("f.f_v", ">=", threshold)
            .join("f.f_k", "d.d_id")
            .build()
        )
        baseline = _run(session, query, "rowwise", DEFAULT_CHUNK_SIZE)
        for chunk_size in CHUNK_SIZES:
            assert _run(session, query, "vectorized", chunk_size) == baseline
