"""Modeled-scale propagation through the engine (DESIGN.md §5b.1)."""

import pytest

from repro.common.types import DataType, Schema
from repro.engine.data import PartitionedData
from repro.engine.job import Job
from repro.engine.operators.joins import BroadcastJoinOp, HashJoinOp
from repro.engine.operators.scan import ReaderOp, ScanOp
from repro.engine.operators.select import ProjectOp, SelectOp
from repro.engine.operators.sink import SinkOp
from repro.lang.ast import ComparisonPredicate
from repro.session import Session

from tests.conftest import small_cluster


@pytest.fixture
def session():
    session = Session(small_cluster())
    session.load(
        "big",
        Schema.of(("id", DataType.INT), ("k", DataType.INT), primary_key=("id",)),
        [{"id": i, "k": i % 10} for i in range(100)],
        scale=1e6,
    )
    session.load(
        "small",
        Schema.of(("s_id", DataType.INT), ("v", DataType.INT), primary_key=("s_id",)),
        [{"s_id": i, "v": i} for i in range(10)],
        scale=100.0,
    )
    return session


def run(session, op):
    return session.executor.execute(Job(op))


class TestScalePropagation:
    def test_scan_carries_dataset_scale(self, session):
        data, _ = run(session, ScanOp("big", "big"))
        assert data.scale == 1e6
        assert data.modeled_rows == 100 * 1e6

    def test_select_project_preserve_scale(self, session):
        op = ProjectOp(
            SelectOp(ScanOp("big", "big"), (ComparisonPredicate("big.k", "=", 1),)),
            ("big.id",),
        )
        data, _ = run(session, op)
        assert data.scale == 1e6

    def test_join_takes_max_scale(self, session):
        op = HashJoinOp(
            ScanOp("small", "small"), ScanOp("big", "big"), ("small.s_id",), ("big.k",)
        )
        data, _ = run(session, op)
        assert data.scale == 1e6

    def test_broadcast_join_same(self, session):
        op = BroadcastJoinOp(
            ScanOp("small", "small"), ScanOp("big", "big"), ("small.s_id",), ("big.k",)
        )
        data, _ = run(session, op)
        assert data.scale == 1e6

    def test_sink_and_reader_roundtrip_scale(self, session):
        sink = SinkOp(ScanOp("big", "big"), "inter", ("big.id", "big.k"))
        run(session, sink)
        data, _ = run(session, ReaderOp("inter"))
        assert data.scale == 1e6
        assert session.statistics.get("inter").scale == 1e6

    def test_cost_scales_with_modeled_rows(self, session):
        _, big_metrics = run(session, ScanOp("big", "big"))
        _, small_metrics = run(session, ScanOp("small", "small"))
        # big has 10x the stored rows but 10^4x the scale: the simulated
        # scan cost ratio must track modeled volume, not stored volume
        assert big_metrics.scan > small_metrics.scan * 1000

    def test_partitioned_data_defaults(self):
        data = PartitionedData([[{"a": 1}]], {"a": DataType.INT})
        assert data.scale == 1.0
        assert data.modeled_rows == 1
