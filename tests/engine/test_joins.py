"""Join operator correctness: every algorithm must equal brute force."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ExecutionError
from repro.common.types import DataType, Schema
from repro.engine.job import Job
from repro.engine.operators.joins import (
    BroadcastJoinOp,
    HashJoinOp,
    IndexNestedLoopJoinOp,
    JoinAlgorithm,
)
from repro.engine.operators.scan import ScanOp
from repro.engine.operators.select import SelectOp
from repro.lang.ast import ComparisonPredicate
from repro.session import Session

from tests.conftest import small_cluster


def two_table_session(left_rows, right_rows):
    session = Session(small_cluster())
    session.load(
        "L",
        Schema.of(("lid", DataType.INT), ("lk", DataType.INT), ("lk2", DataType.INT), primary_key=("lid",)),
        left_rows,
    )
    session.load(
        "R",
        Schema.of(("rid", DataType.INT), ("rk", DataType.INT), ("rk2", DataType.INT), primary_key=("rid",)),
        right_rows,
    )
    return session


def brute_force(left_rows, right_rows, keys):
    out = []
    for l in left_rows:
        for r in right_rows:
            if all(
                l[lk] == r[rk] and l[lk] is not None for lk, rk in keys
            ):
                out.append((l["lid"], r["rid"]))
    return sorted(out)


def engine_pairs(data):
    return sorted((row["L.lid"], row["R.rid"]) for row in data.all_rows())


def random_rows(n, key_domain, seed, prefix):
    rng = random.Random(seed)
    return [
        {
            f"{prefix}id": i,
            f"{prefix}k": rng.randrange(key_domain) if rng.random() > 0.05 else None,
            f"{prefix}k2": rng.randrange(3),
        }
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def joined_session():
    left = random_rows(300, 20, 1, "l")
    right = random_rows(100, 20, 2, "r")
    return two_table_session(left, right), left, right


class TestHashJoin:
    def test_matches_brute_force(self, joined_session):
        session, left, right = joined_session
        op = HashJoinOp(ScanOp("R", "R"), ScanOp("L", "L"), ("R.rk",), ("L.lk",))
        data, _ = session.executor.execute(Job(op))
        assert engine_pairs(data) == brute_force(left, right, [("lk", "rk")])

    def test_composite_key(self, joined_session):
        session, left, right = joined_session
        op = HashJoinOp(
            ScanOp("R", "R"), ScanOp("L", "L"), ("R.rk", "R.rk2"), ("L.lk", "L.lk2")
        )
        data, _ = session.executor.execute(Job(op))
        expected = brute_force(left, right, [("lk", "rk"), ("lk2", "rk2")])
        assert engine_pairs(data) == expected

    def test_exchange_skipped_when_copartitioned(self, joined_session):
        session, _, _ = joined_session
        # join on the primary (partitioning) keys: no exchange on either side
        op = HashJoinOp(ScanOp("R", "R"), ScanOp("L", "L"), ("R.rid",), ("L.lid",))
        _, metrics = session.executor.execute(Job(op))
        assert metrics.network == 0.0

    def test_exchange_charged_otherwise(self, joined_session):
        session, _, _ = joined_session
        op = HashJoinOp(ScanOp("R", "R"), ScanOp("L", "L"), ("R.rk",), ("L.lk",))
        _, metrics = session.executor.execute(Job(op))
        assert metrics.network > 0.0

    def test_key_arity_validated(self):
        with pytest.raises(ExecutionError):
            HashJoinOp(ScanOp("R", "R"), ScanOp("L", "L"), ("R.rk",), ())

    def test_output_partitioned_on_probe_key(self, joined_session):
        session, _, _ = joined_session
        op = HashJoinOp(ScanOp("R", "R"), ScanOp("L", "L"), ("R.rk",), ("L.lk",))
        data, _ = session.executor.execute(Job(op))
        assert data.partitioned_on == "L.lk"


class TestBroadcastJoin:
    def test_matches_brute_force(self, joined_session):
        session, left, right = joined_session
        op = BroadcastJoinOp(ScanOp("R", "R"), ScanOp("L", "L"), ("R.rk",), ("L.lk",))
        data, _ = session.executor.execute(Job(op))
        assert engine_pairs(data) == brute_force(left, right, [("lk", "rk")])

    def test_probe_partitioning_preserved(self, joined_session):
        session, _, _ = joined_session
        op = BroadcastJoinOp(
            ScanOp("R", "R"), ScanOp("L", "L"), ("R.rk",), ("L.lid",)
        )
        data, _ = session.executor.execute(Job(op))
        assert data.partitioned_on == "L.lid"

    def test_same_rows_as_hash(self, joined_session):
        session, _, _ = joined_session
        hash_op = HashJoinOp(ScanOp("R", "R"), ScanOp("L", "L"), ("R.rk",), ("L.lk",))
        bcast_op = BroadcastJoinOp(
            ScanOp("R", "R"), ScanOp("L", "L"), ("R.rk",), ("L.lk",)
        )
        hash_data, _ = session.executor.execute(Job(hash_op))
        bcast_data, _ = session.executor.execute(Job(bcast_op))
        assert engine_pairs(hash_data) == engine_pairs(bcast_data)


class TestIndexNestedLoopJoin:
    def test_matches_brute_force(self, joined_session):
        session, left, right = joined_session
        session.datasets.get("L").create_index("lk")
        build = SelectOp(ScanOp("R", "R"), (ComparisonPredicate("R.rk2", "=", 1),))
        op = IndexNestedLoopJoinOp(build, "L", "L", ("R.rk",), ("lk",))
        data, metrics = session.executor.execute(Job(op))
        expected = sorted(
            (l["lid"], r["rid"])
            for l in left
            for r in right
            if r["rk2"] == 1 and l["lk"] == r["rk"] and l["lk"] is not None
        )
        assert engine_pairs(data) == expected
        assert metrics.index > 0
        assert metrics.index_lookups > 0

    def test_requires_index(self, joined_session):
        session, _, _ = joined_session
        op = IndexNestedLoopJoinOp(
            ScanOp("R", "R"), "L", "L", ("R.rk",), ("lk2",)
        )
        with pytest.raises(ExecutionError):
            session.executor.execute(Job(op))

    def test_residual_conditions(self, joined_session):
        session, left, right = joined_session
        if not session.datasets.get("L").has_index("lk"):
            session.datasets.get("L").create_index("lk")
        op = IndexNestedLoopJoinOp(
            ScanOp("R", "R"), "L", "L", ("R.rk", "R.rk2"), ("lk", "lk2")
        )
        data, _ = session.executor.execute(Job(op))
        expected = brute_force(left, right, [("lk", "rk"), ("lk2", "rk2")])
        assert engine_pairs(data) == expected


class TestAlgorithmMarkers:
    def test_plan_markers(self):
        assert JoinAlgorithm.HASH.plan_marker == ""
        assert JoinAlgorithm.BROADCAST.plan_marker == "b"
        assert JoinAlgorithm.INDEX_NESTED_LOOP.plan_marker == "i"


class TestJoinEquivalenceProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_hash_equals_broadcast_equals_brute_force(
        self, n_left, n_right, domain, seed
    ):
        left = random_rows(n_left, domain, seed, "l")
        right = random_rows(n_right, domain, seed + 1, "r")
        session = two_table_session(left, right)
        expected = brute_force(left, right, [("lk", "rk")])
        for op_type in (HashJoinOp, BroadcastJoinOp):
            op = op_type(ScanOp("R", "R"), ScanOp("L", "L"), ("R.rk",), ("L.lk",))
            data, _ = session.executor.execute(Job(op))
            assert engine_pairs(data) == expected
