"""Cross-engine equivalence harness: row-wise vs vectorized, byte for byte.

DESIGN.md §10 promises that the vectorized engine is purely a data-plane
mode: for any query and strategy it must reproduce the row-wise engine's
rows, plans, phases, ``JobMetrics`` (including ``repr``-exact floats),
execution trace, schedule record, and cluster timeline. This module is the
instrument that proves it — an extension of the schedule-fingerprint A/B
diffing used by the space-sharing tests, widened to span engines.

``run_fingerprint`` executes one bench query under one strategy on one
engine and flattens everything observable into a dict of strings;
``assert_engines_equivalent`` runs both engines and diffs the dicts
component by component, so a regression names the first diverging facet
("metrics", "rows", "timeline", ...) instead of dumping two blobs.

The mutation tests reuse the same entry points: they patch a kernel in
``repro.engine.vector`` and assert the harness *fails*, which keeps the
harness itself honest.
"""

from __future__ import annotations

import json
from dataclasses import fields, replace

from repro.bench.runner import SWEEP_QUERIES, workbench_for_query
from repro.engine.scheduler import JobScheduler, SchedulerConfig
from repro.engine.vector import ENGINE_ROWWISE, ENGINE_VECTORIZED
from repro.optimizers import available_strategies
from repro.spec import PlannerSpec

#: every registered strategy; the equivalence sweep covers all of them.
ALL_STRATEGIES = tuple(sorted(available_strategies()))
#: the paper's four evaluation queries plus the JOB-style suite.
ALL_QUERIES = tuple(SWEEP_QUERIES)
#: the facets a fingerprint captures, in diff-report order.
FACETS = (
    "rows",
    "metrics",
    "plan",
    "phases",
    "trace",
    "schedule",
    "timeline",
    "chrome_trace",
    "decisions",
)


def canonical_rows(rows: list[dict]) -> str:
    """Rows as canonical JSON: key order inside a row is not significant
    (the two engines build output dicts in different orders for INL), row
    order and every value are."""
    return json.dumps(rows, sort_keys=True, default=repr)


def metrics_fingerprint(metrics) -> str:
    """Every JobMetrics field with full float precision (``repr``-exact)."""
    return " ".join(
        f"{f.name}={getattr(metrics, f.name)!r}"
        for f in fields(metrics)
        if not f.name.startswith("_")
    )


def schedule_fingerprint(schedule) -> str:
    if schedule is None:
        return "none"
    return " ".join(
        f"{name}={getattr(schedule, name)!r}"
        for name in (
            "query_id",
            "priority",
            "submitted_at",
            "admitted_at",
            "finished_at",
            "queue_delay_seconds",
            "busy_seconds",
            "error",
        )
    )


def run_fingerprint(
    label: str,
    optimizer: str,
    engine: str,
    scale_factor: int = 10,
    seed: int = 42,
    inl_enabled: bool = False,
    **options,
) -> dict[str, str]:
    """Execute one bench query on one engine; return its observable state.

    Runs through a single-slot :class:`JobScheduler` — the same path as
    ``Session.execute`` — but keeps the scheduler so the cluster timeline
    and chrome trace land in the fingerprint too. The cached workbench
    session is shared across engines (ingestion is engine-independent); the
    executor's engine attribute is flipped for the duration of the run and
    always restored.
    """
    bench = workbench_for_query(label, scale_factor, seed)
    session = bench.session
    if inl_enabled:
        bench.ensure_indexes()
        options["inl_enabled"] = True
    config = replace(
        session.scheduler_config or SchedulerConfig(),
        batch_pushdown_scans=False,
        job_slots=1,
    )
    previous = session.executor.engine
    session.executor.engine = engine
    try:
        scheduler = JobScheduler(session.executor, config)
        handle = scheduler.submit(
            bench.query(label),
            PlannerSpec.of(optimizer, **options).make(),
            session,
        )
        scheduler.run_all()
        result = handle.result()
        return {
            "rows": canonical_rows(result.rows),
            "metrics": metrics_fingerprint(result.metrics),
            "plan": result.plan_description,
            "phases": repr(list(result.phases)),
            "trace": result.trace.to_json() if result.trace else "none",
            "schedule": schedule_fingerprint(result.schedule),
            "timeline": scheduler.timeline.render(),
            "chrome_trace": scheduler.timeline.to_chrome_trace(),
            "decisions": repr(tuple(result.decisions)),
        }
    finally:
        session.executor.engine = previous
        session.reset_intermediates()


def diff_fingerprints(
    rowwise: dict[str, str], vectorized: dict[str, str]
) -> list[str]:
    """Names of the facets where the two engines diverge."""
    return [facet for facet in FACETS if rowwise[facet] != vectorized[facet]]


def assert_engines_equivalent(
    label: str,
    optimizer: str,
    scale_factor: int = 10,
    seed: int = 42,
    inl_enabled: bool = False,
    **options,
) -> dict[str, str]:
    """Run both engines and assert byte-identity facet by facet.

    Returns the (shared) fingerprint so callers can pin it further.
    """
    rowwise = run_fingerprint(
        label,
        optimizer,
        ENGINE_ROWWISE,
        scale_factor,
        seed,
        inl_enabled,
        **options,
    )
    vectorized = run_fingerprint(
        label,
        optimizer,
        ENGINE_VECTORIZED,
        scale_factor,
        seed,
        inl_enabled,
        **options,
    )
    divergent = diff_fingerprints(rowwise, vectorized)
    if divergent:
        details = []
        for facet in divergent:
            a, b = rowwise[facet], vectorized[facet]
            position = next(
                (i for i, (x, y) in enumerate(zip(a, b)) if x != y),
                min(len(a), len(b)),
            )
            window = slice(max(0, position - 40), position + 40)
            details.append(
                f"{facet}: first divergence at char {position}\n"
                f"  rowwise    ...{a[window]!r}\n"
                f"  vectorized ...{b[window]!r}"
            )
        raise AssertionError(
            f"{label}/{optimizer}: engines diverge on "
            f"{', '.join(divergent)}\n" + "\n".join(details)
        )
    return rowwise
