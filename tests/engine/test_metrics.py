"""JobMetrics accounting tests."""

import pytest

from repro.engine.metrics import ExecutionResult, JobMetrics


class TestJobMetrics:
    def test_total_sums_time_fields(self):
        metrics = JobMetrics(startup=1.0, scan=2.0, network=3.0, spill=0.5)
        assert metrics.total_seconds == pytest.approx(6.5)

    def test_counters_not_in_total(self):
        metrics = JobMetrics(tuples_scanned=100, rows_out=5)
        assert metrics.total_seconds == 0.0

    def test_merge_accumulates_everything(self):
        a = JobMetrics(scan=1.0, tuples_scanned=10, jobs=1)
        b = JobMetrics(scan=2.0, stats=0.5, tuples_scanned=5, jobs=1)
        a.merge(b)
        assert a.scan == 3.0
        assert a.stats == 0.5
        assert a.tuples_scanned == 15
        assert a.jobs == 2

    def test_merge_returns_self(self):
        a = JobMetrics()
        assert a.merge(JobMetrics()) is a

    def test_copy_independent(self):
        a = JobMetrics(scan=1.0)
        b = a.copy()
        b.scan = 9.0
        assert a.scan == 1.0

    def test_reoptimization_seconds(self):
        metrics = JobMetrics(startup=2.0, materialize=3.0, scan=10.0)
        assert metrics.reoptimization_seconds == 5.0

    def test_stats_seconds(self):
        assert JobMetrics(stats=1.5).stats_seconds == 1.5

    def test_breakdown_keys(self):
        breakdown = JobMetrics().breakdown()
        assert set(breakdown) == {
            "startup",
            "scan",
            "compute",
            "network",
            "materialize",
            "spill",
            "stats",
            "index",
            "output",
        }


class TestExecutionResult:
    def test_seconds_delegates(self):
        result = ExecutionResult(rows=[], metrics=JobMetrics(scan=4.0))
        assert result.seconds == 4.0
