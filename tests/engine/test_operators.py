"""Scan / Reader / Select / Assign / Project operator tests."""

import pytest

from repro.common.errors import ExecutionError
from repro.engine.job import Job
from repro.engine.operators.scan import ReaderOp, ScanOp
from repro.engine.operators.select import AssignOp, ProjectOp, SelectOp
from repro.engine.operators.sink import SinkOp
from repro.lang.ast import ComparisonPredicate, UdfPredicate


def run_op(session, op):
    data, metrics = session.executor.execute(Job(op, label="test"))
    return data, metrics


class TestScan:
    def test_qualifies_columns_with_alias(self, star_session):
        data, metrics = run_op(star_session, ScanOp("da", "d1"))
        assert set(data.columns) == {"d1.a_id", "d1.a_attr"}
        assert data.row_count == 50
        assert metrics.scan > 0
        assert metrics.tuples_scanned == 50

    def test_partitioned_on_primary_key(self, star_session):
        data, _ = run_op(star_session, ScanOp("fact", "fact"))
        assert data.partitioned_on == "fact.f_id"
        assert data.scale == 10_000.0

    def test_scan_rejects_intermediates(self, star_session):
        sink = SinkOp(ScanOp("da", "da"), "inter", ("da.a_id",))
        run_op(star_session, sink)
        with pytest.raises(ExecutionError):
            run_op(star_session, ScanOp("inter", "inter"))


class TestReader:
    def test_reads_back_materialized(self, star_session):
        sink = SinkOp(ScanOp("da", "da"), "inter", ("da.a_id", "da.a_attr"))
        run_op(star_session, sink)
        data, metrics = run_op(star_session, ReaderOp("inter"))
        assert data.row_count == 50
        assert set(data.columns) == {"da.a_id", "da.a_attr"}
        assert metrics.materialize > 0

    def test_reader_rejects_base_tables(self, star_session):
        with pytest.raises(ExecutionError):
            run_op(star_session, ReaderOp("da"))


class TestSelect:
    def test_filters_rows(self, star_session):
        op = SelectOp(ScanOp("da", "da"), (ComparisonPredicate("da.a_attr", "=", 2),))
        data, metrics = run_op(star_session, op)
        assert all(row["da.a_attr"] == 2 for row in data.all_rows())
        assert data.row_count == len([i for i in range(50) if i % 7 == 2])
        assert metrics.compute > 0

    def test_udf_predicate(self, star_session):
        op = SelectOp(
            ScanOp("da", "da"), (UdfPredicate("da.a_id", "mymod10", "=", 3),)
        )
        data, _ = run_op(star_session, op)
        assert sorted(r["da.a_id"] for r in data.all_rows()) == [3, 13, 23, 33, 43]

    def test_conjunction(self, star_session):
        op = SelectOp(
            ScanOp("da", "da"),
            (
                ComparisonPredicate("da.a_id", ">=", 10),
                ComparisonPredicate("da.a_id", "<", 20),
            ),
        )
        data, _ = run_op(star_session, op)
        assert data.row_count == 10


class TestAssign:
    def test_computes_column(self, star_session):
        op = AssignOp(ScanOp("da", "da"), "t", "mymod10", "da.a_id")
        data, _ = run_op(star_session, op)
        assert all(row["t"] == row["da.a_id"] % 10 for row in data.all_rows())
        assert "t" in data.columns


class TestProject:
    def test_keeps_only_named(self, star_session):
        op = ProjectOp(ScanOp("da", "da"), ("da.a_id",))
        data, _ = run_op(star_session, op)
        assert set(data.columns) == {"da.a_id"}
        assert all(set(row) == {"da.a_id"} for row in data.all_rows())

    def test_missing_columns_ignored(self, star_session):
        op = ProjectOp(ScanOp("da", "da"), ("da.a_id", "ghost.col"))
        data, _ = run_op(star_session, op)
        assert set(data.columns) == {"da.a_id"}

    def test_narrower_width(self, star_session):
        scan, _ = run_op(star_session, ScanOp("da", "da"))
        projected, _ = run_op(
            star_session, ProjectOp(ScanOp("da", "da"), ("da.a_id",))
        )
        assert projected.row_width < scan.row_width

    def test_render_tree(self, star_session):
        op = ProjectOp(ScanOp("da", "da"), ("da.a_id",))
        text = op.render()
        assert "Project" in text and "Scan" in text
