"""Concurrent admission: determinism, queue delay, priorities, isolation.

The scheduler's contract is that concurrency never changes a query's own
answer or charge: per-query rows, plan descriptions, phases and JobMetrics
are schedule-independent, while waiting shows up only in the per-query
``ScheduleInfo`` (and only under saturation).
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.common.errors import OptimizationError, ReproError
from repro.core.driver import DynamicOptimizer, SimulatedFailure
from repro.core.policy import ReplanPolicy
from repro.engine.scheduler import JobScheduler, SchedulerConfig
from repro.optimizers import make_optimizer
from repro.spec import PlannerSpec

from tests.conftest import build_star_session, star_query

ALL_STRATEGIES = sorted(
    [
        "dynamic",
        "cost_based",
        "from_order",
        "best_order",
        "worst_order",
        "pilot_run",
        "ingres",
        "greedy_static",
    ]
)


class TestDeterminismGuard:
    """Scheduled serial execution is byte-identical to the direct path."""

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_scheduled_matches_direct(self, name):
        direct_session = build_star_session()
        direct = make_optimizer(name).execute(star_query(), direct_session)

        scheduled_session = build_star_session()
        scheduled = scheduled_session.execute(star_query(), PlannerSpec.of(name))

        assert scheduled.rows == direct.rows
        assert scheduled.plan_description == direct.plan_description
        assert scheduled.phases == direct.phases
        assert asdict(scheduled.metrics) == asdict(direct.metrics)
        assert scheduled.seconds == direct.seconds

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_policy_off_matches_no_policy(self, name):
        """An explicit ReplanPolicy.off() never perturbs any strategy."""
        try:
            spec_off = PlannerSpec.of(name, policy=ReplanPolicy.off())
        except OptimizationError:
            pytest.skip(f"{name} does not take a policy")
        baseline = build_star_session().execute(star_query(), PlannerSpec.of(name))
        session = build_star_session()
        result = session.execute(star_query(), spec_off)
        assert result.rows == baseline.rows
        assert result.plan_description == baseline.plan_description
        assert result.phases == baseline.phases
        assert asdict(result.metrics) == asdict(baseline.metrics)
        assert result.seconds == baseline.seconds
        assert result.decisions == ()

    def test_direct_execution_has_no_schedule(self):
        session = build_star_session()
        result = DynamicOptimizer().execute(star_query(), session)
        assert result.schedule is None

    def test_scheduled_trace_matches_direct(self):
        direct = DynamicOptimizer().execute(star_query(), build_star_session())
        session = build_star_session()
        scheduled = session.execute(star_query())
        direct_spans = [(s.name, s.end_seconds) for s in direct.trace.phase_spans()]
        scheduled_spans = [
            (s.name, s.end_seconds) for s in scheduled.trace.phase_spans()
        ]
        assert scheduled_spans == direct_spans


class TestQueueDelay:
    def test_solo_query_has_zero_delay(self):
        session = build_star_session()
        result = session.execute(star_query())
        assert result.schedule is not None
        assert result.schedule.queue_delay_seconds == 0.0
        assert result.schedule.latency_seconds == pytest.approx(result.seconds)

    def test_saturation_charges_delay_without_touching_metrics(self):
        solo = build_star_session().execute(star_query())

        session = build_star_session()
        handles = [session.submit(star_query()) for _ in range(2)]
        session.run_all()
        results = [h.result() for h in handles]

        delays = [r.schedule.queue_delay_seconds for r in results]
        assert all(d >= 0.0 for d in delays)
        assert sum(delays) > 0.0  # someone waited for the shared cluster
        for result in results:
            assert result.rows == solo.rows
            assert result.plan_description == solo.plan_description
        # Latency covers own work plus waiting (plus shared-job co-tenancy).
        for result in results:
            assert (
                result.schedule.latency_seconds
                >= result.seconds + result.schedule.queue_delay_seconds - 1e-9
            )

    def test_timeline_agrees_with_handle_delays(self):
        session = build_star_session()
        handles = [session.submit(star_query()) for _ in range(2)]
        session.run_all()
        scheduler = session.scheduler
        for handle in handles:
            recorded = scheduler.timeline.queue_delay_of(handle.query_id)
            # Admission happened at clock zero here, so every delay the
            # handle accrued is visible on some timeline event.
            assert recorded == pytest.approx(handle.queue_delay_seconds)


class TestConcurrentAdmission:
    def test_concurrent_queries_match_serial_results(self):
        serial = [
            build_star_session().execute(star_query(), PlannerSpec.of(name))
            for name in ("dynamic", "ingres", "pilot_run")
        ]

        session = build_star_session()
        handles = [
            session.submit(star_query(), PlannerSpec.of(name))
            for name in ("dynamic", "ingres", "pilot_run")
        ]
        session.run_all()

        for handle, expected in zip(handles, serial):
            result = handle.result()
            assert result.rows == expected.rows
            assert result.plan_description == expected.plan_description
            assert result.phases == expected.phases

    def test_max_concurrent_one_serializes(self):
        session = build_star_session()
        scheduler = JobScheduler(
            session.executor, SchedulerConfig(max_concurrent_queries=1)
        )
        first = scheduler.submit(star_query(), make_optimizer("dynamic"), session)
        second = scheduler.submit(star_query(), make_optimizer("dynamic"), session)
        scheduler.run_all()

        assert first.done and second.done
        first_events = scheduler.timeline.events_for(first.query_id)
        second_events = scheduler.timeline.events_for(second.query_id)
        assert first_events and second_events
        # No interleaving: the second query's first job starts after the
        # first query completely finished.
        assert second_events[0].start_seconds >= first_events[-1].end_seconds
        assert second.admitted_at >= first.finished_at
        assert second.queue_delay_seconds > 0.0
        assert first.queue_delay_seconds == 0.0

    def test_priority_wins_admission(self):
        session = build_star_session()
        scheduler = JobScheduler(
            session.executor, SchedulerConfig(max_concurrent_queries=1)
        )
        low = scheduler.submit(
            star_query(), make_optimizer("dynamic"), session, priority=0, label="low"
        )
        high = scheduler.submit(
            star_query(), make_optimizer("dynamic"), session, priority=5, label="high"
        )
        finished = scheduler.run_all()

        assert [h.label for h in finished] == ["high", "low"]
        assert high.queue_delay_seconds == 0.0
        assert low.admitted_at >= high.finished_at

    def test_namespaced_intermediates_do_not_collide(self):
        session = build_star_session()
        handles = [session.submit(star_query()) for _ in range(2)]
        session.run_all()
        r1, r2 = (h.result() for h in handles)
        assert r1.rows == r2.rows
        # Each query materialized into its own __q<id> namespace while it
        # ran, and the scheduler dropped the namespace when it finished —
        # sustained traffic must not grow the session catalogs.
        assert not any(n.startswith("__") for n in session.datasets.names())

    def test_result_before_run_raises(self):
        session = build_star_session()
        handle = session.submit(star_query())
        with pytest.raises(ReproError):
            handle.result()

    def test_unknown_optimizer_raises_at_submit(self):
        session = build_star_session()
        with pytest.raises(OptimizationError):
            session.submit(star_query(), "nope")


class TestFailureIsolation:
    def test_failure_leaves_other_queries_untouched(self):
        clean = build_star_session().execute(star_query())

        session = build_star_session()
        doomed = session.submit(star_query(), PlannerSpec.of("dynamic", fail_after_jobs=2))
        healthy = session.submit(star_query())
        session.run_all()

        assert doomed.failed
        with pytest.raises(SimulatedFailure):
            doomed.result()

        result = healthy.result()
        assert result.rows == clean.rows
        assert result.plan_description == clean.plan_description
        assert result.phases == clean.phases
        assert result.schedule.queue_delay_seconds >= 0.0

    def test_failed_query_resumes_from_checkpoint(self):
        clean = build_star_session().execute(star_query())

        session = build_star_session()
        doomed = session.submit(star_query(), PlannerSpec.of("dynamic", fail_after_jobs=2))
        session.submit(star_query())
        session.run_all()

        checkpoint = doomed.error.checkpoint
        completed_jobs = checkpoint.metrics.jobs
        resumed = DynamicOptimizer().resume(checkpoint, session)
        assert resumed.rows == clean.rows
        assert resumed.phases == clean.phases
        # Recovery never repeats completed jobs.
        assert resumed.metrics.jobs == clean.metrics.jobs
        assert completed_jobs >= 2
