"""Regression tests for three scheduler bugs the space-shared executor exposed.

1. ``QueryHandle._record_outcome`` used truthiness instead of an ``is not
   None`` check to advance the outcome cursor, so a falsy outcome wedged the
   query forever.
2. ``JobScheduler._fail`` leaked: the driver generator was never closed (its
   ``finally`` blocks never ran when the *executor* raised) and the failed
   query's namespaced intermediates + statistics stayed in the session
   catalogs forever.
3. Failed queries got a ``finished_at`` but no ``ScheduleInfo`` and no
   timeline event, so throughput accounting silently dropped the capacity
   they consumed.
"""

from __future__ import annotations

import pytest

from repro.core.driver import DynamicOptimizer, SimulatedFailure
from repro.engine.metrics import JobMetrics
from repro.engine.scheduler import JobScheduler, SchedulerConfig
from repro.engine.scheduler.request import JobOutcome, JobRequest
from repro.engine.scheduler.scheduler import QueryHandle
from repro.optimizers import make_optimizer
from repro.spec import PlannerSpec

from tests.conftest import build_star_session, star_query


class FalsyOutcome(JobOutcome):
    """A legitimate outcome that happens to be falsy."""

    def __bool__(self) -> bool:
        return False


class TestOutcomeCursorBug:
    def test_falsy_outcome_still_advances_cursor(self):
        handle = QueryHandle(1, None, None, None, 0, "q", 0.0, 0)
        handle._group = True
        handle._requests = [object(), object()]
        handle._outcomes = [None, None]
        handle._cursor = 0

        handle._record_outcome(0, FalsyOutcome(data=None, metrics=JobMetrics()))
        # The cursor must move past any *answered* slot, falsy or not;
        # parking on it would make the scheduler re-launch request 0 forever.
        assert handle._cursor == 1
        handle._record_outcome(1, FalsyOutcome(data=None, metrics=JobMetrics()))
        assert handle._cursor == 2
        assert not handle._has_pending()


class DoomedStrategy:
    """Delegates to the dynamic driver, then yields a job the executor
    rejects — an *executor-side* failure, unlike ``SimulatedFailure`` which
    the driver raises itself. The generator is left suspended at its yield,
    so only an explicit ``close()`` runs the ``finally`` block."""

    def __init__(self, after_jobs: int = 2) -> None:
        self.after_jobs = after_jobs
        self.cleaned_up = False

    def stages(self, query, session, namespace=""):
        inner = DynamicOptimizer().stages(query, session, namespace=namespace)
        try:
            payload = None
            count = 0
            while True:
                if count >= self.after_jobs:
                    # job=None and virtual_cost=None: run_request blows up.
                    yield JobRequest(phase="doomed", cumulative=JobMetrics())
                    raise AssertionError("doomed request should never succeed")
                try:
                    item = inner.send(payload)
                except StopIteration as stop:
                    return stop.value
                payload = yield item
                count += 1
        finally:
            self.cleaned_up = True


class TestFailureLeaks:
    def test_executor_error_fails_handle_instead_of_crashing_run_all(self):
        session = build_star_session()
        scheduler = JobScheduler(session.executor, SchedulerConfig())
        doomed = scheduler.submit(star_query(), DoomedStrategy(), session)
        healthy = scheduler.submit(
            star_query(), make_optimizer("dynamic"), session
        )
        scheduler.run_all()  # must not propagate the executor error
        assert doomed.failed
        assert healthy.done

    def test_failed_query_generator_is_closed(self):
        session = build_star_session()
        scheduler = JobScheduler(session.executor, SchedulerConfig())
        strategy = DoomedStrategy()
        scheduler.submit(star_query(), strategy, session)
        scheduler.run_all()
        # The driver's finally-block ran even though the failure happened in
        # the executor, not in the generator.
        assert strategy.cleaned_up

    def test_failed_query_namespace_is_released(self):
        session = build_star_session()
        scheduler = JobScheduler(session.executor, SchedulerConfig())
        doomed = scheduler.submit(star_query(), DoomedStrategy(), session)
        scheduler.run_all()
        assert doomed.failed
        leftovers = [n for n in session.datasets.names() if n.startswith("__q1__")]
        assert leftovers == []

    def test_finished_query_namespace_is_released(self):
        session = build_star_session()
        handle = session.submit(star_query())
        session.run_all()
        assert handle.done
        assert not any(n.startswith("__") for n in session.datasets.names())

    def test_checkpointed_failure_keeps_intermediates_for_resume(self):
        # SimulatedFailure carries a checkpoint: its intermediates are the
        # recovery state, so the namespace must survive the failure.
        session = build_star_session()
        doomed = session.submit(star_query(), PlannerSpec.of("dynamic", fail_after_jobs=2))
        session.run_all()
        assert doomed.failed
        assert doomed.error.checkpoint is not None
        assert any(n.startswith("__q1__") for n in session.datasets.names())


class TestFailedQueryAccounting:
    def test_failed_query_gets_schedule_info(self):
        session = build_star_session()
        doomed = session.submit(star_query(), PlannerSpec.of("dynamic", fail_after_jobs=2))
        healthy = session.submit(star_query())
        session.run_all()

        assert doomed.failed and healthy.done
        info = doomed.schedule
        assert info is not None
        assert info.failed
        assert "SimulatedFailure" in info.error
        assert info.busy_seconds > 0.0  # the work it charged before dying
        assert info.finished_at == doomed.finished_at
        assert info.queue_delay_seconds >= 0.0
        # Finished queries expose the same record on the handle too.
        assert healthy.schedule is healthy.result().schedule
        assert not healthy.schedule.failed

    def test_failed_query_gets_timeline_event(self):
        session = build_star_session()
        doomed = session.submit(star_query(), PlannerSpec.of("dynamic", fail_after_jobs=2))
        session.submit(star_query())
        session.run_all()

        events = session.scheduler.timeline.events_for(doomed.query_id)
        failed_events = [e for e in events if e.kind == "failed"]
        assert len(failed_events) == 1
        assert failed_events[0].duration_seconds == 0.0
        assert "SimulatedFailure" in failed_events[0].label

    def test_throughput_table_keeps_failed_rows(self):
        from repro.bench.throughput import _lines_for

        session = build_star_session()
        doomed = session.submit(star_query(), PlannerSpec.of("dynamic", fail_after_jobs=2), label="doomed")
        healthy = session.submit(star_query(), label="healthy")
        session.run_all()

        lines = _lines_for([doomed, healthy])
        assert [line.label for line in lines] == ["doomed", "healthy"]
        assert lines[0].error is not None
        assert "SimulatedFailure" in lines[0].error
        assert lines[0].seconds > 0.0
        assert lines[1].error is None
        assert lines[1].rows > 0


class TestFailureUnderSpaceSharing:
    def test_sibling_queries_survive_a_mid_flight_failure(self):
        solo = build_star_session().execute(star_query())
        session = build_star_session()
        scheduler = JobScheduler(session.executor, SchedulerConfig(job_slots=2))
        doomed = scheduler.submit(star_query(), DoomedStrategy(), session)
        healthy = scheduler.submit(
            star_query(), make_optimizer("dynamic"), session
        )
        scheduler.run_all()
        assert doomed.failed
        assert healthy.done
        assert healthy.result().rows == solo.rows
