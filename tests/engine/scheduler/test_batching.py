"""Pushdown scan batching: merged same-dataset scans cost less, change nothing.

Two queries whose push-down candidates scan the same base dataset share one
scan job per dataset: fewer cluster jobs, a shared scan/startup charge, and
byte-identical rows. Disabling the config knob restores solo-run charges
exactly.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.engine.scheduler import JobScheduler, SchedulerConfig
from repro.lang.builder import QueryBuilder
from repro.optimizers import make_optimizer

from tests.conftest import build_star_session, star_query


def double_db_query():
    """Two aliases of the same base dataset, each a push-down candidate."""
    return (
        QueryBuilder()
        .select("fact.f_val", "b1.b_attr")
        .from_table("fact")
        .from_table("db", "b1")
        .from_table("db", "b2")
        .where_udf("mymod10", "b1.b_attr", "=", 1)
        .where_udf("mymod10", "b2.b_attr", "=", 2)
        .join("fact.f_b", "b1.b_id")
        .join("fact.f_c", "b2.b_id")
        .build()
    )


class TestCrossQueryBatching:
    def test_fewer_scan_jobs_than_solo_runs(self):
        solo = build_star_session().execute(star_query())

        session = build_star_session()
        handles = [session.submit(star_query()) for _ in range(2)]
        session.run_all()
        scheduler = session.scheduler
        results = [h.result() for h in handles]

        # The db and dc pushdown scans each merged across the two queries.
        assert scheduler.scans_saved == 2
        assert scheduler.cluster_jobs == 2 * solo.metrics.jobs - 2
        assert scheduler.timeline.batched_job_count == 2
        # Per-query job counts are unchanged — the cluster ran fewer.
        for result in results:
            assert result.metrics.jobs == solo.metrics.jobs

    def test_rows_unchanged_and_time_saved(self):
        solo = build_star_session().execute(star_query())

        session = build_star_session()
        handles = [session.submit(star_query()) for _ in range(2)]
        session.run_all()
        results = [h.result() for h in handles]

        for result in results:
            assert result.rows == solo.rows
            assert result.plan_description == solo.plan_description
        total = sum(r.seconds for r in results)
        assert total < 2 * solo.seconds
        # The shared base scans are charged once, not twice.
        scanned = sum(r.metrics.tuples_scanned for r in results)
        assert scanned < 2 * solo.metrics.tuples_scanned
        # Makespan equals total charged work: the cluster never idles and
        # every merged job's width is the sum of its branches' shares.
        assert session.scheduler.timeline.makespan_seconds == pytest.approx(total)

    def test_batching_disabled_restores_solo_charges(self):
        solo = build_star_session().execute(star_query())

        session = build_star_session()
        scheduler = JobScheduler(
            session.executor, SchedulerConfig(batch_pushdown_scans=False)
        )
        handles = [
            scheduler.submit(star_query(), make_optimizer("dynamic"), session)
            for _ in range(2)
        ]
        scheduler.run_all()

        assert scheduler.scans_saved == 0
        assert scheduler.cluster_jobs == 2 * solo.metrics.jobs
        for handle in handles:
            result = handle.result()
            assert result.rows == solo.rows
            assert asdict(result.metrics) == asdict(solo.metrics)


class TestSameQueryBatching:
    def test_two_aliases_of_one_dataset_share_the_scan(self):
        query = double_db_query()
        direct_session = build_star_session()
        direct = make_optimizer("dynamic").execute(query, direct_session)

        session = build_star_session()
        handle = session.submit(query)
        session.run_all()
        scheduled = handle.result()

        assert session.scheduler.scans_saved == 1
        assert scheduled.rows == direct.rows
        assert scheduled.plan_description == direct.plan_description
        # The two db scans merged into one cluster job: same answer,
        # strictly cheaper than the unbatched direct run.
        assert scheduled.seconds < direct.seconds
        assert scheduled.metrics.tuples_scanned < direct.metrics.tuples_scanned

    def test_solo_star_query_never_batches(self):
        # Candidates scan distinct datasets (db, dc): nothing to merge, so
        # the scheduled run stays byte-identical to the direct one.
        direct = make_optimizer("dynamic").execute(
            star_query(), build_star_session()
        )
        scheduled = build_star_session().execute(star_query())
        assert asdict(scheduled.metrics) == asdict(direct.metrics)

    def test_solo_execute_never_batches_even_shared_datasets(self):
        # Session.execute disables scan merging even when the query's own
        # pushdown scans share a dataset: a solo run's accounting must match
        # the pre-scheduler path exactly (the win belongs to submit/run_all).
        query = double_db_query()
        direct = make_optimizer("dynamic").execute(query, build_star_session())
        solo = build_star_session().execute(query)
        assert asdict(solo.metrics) == asdict(direct.metrics)
        assert solo.rows == direct.rows


class TestTimelineExport:
    def test_chrome_trace_shows_waits_and_batches(self):
        session = build_star_session()
        for _ in range(2):
            session.submit(star_query())
        session.run_all()
        timeline = session.scheduler.timeline

        payload = json.loads(timeline.to_chrome_trace())
        events = payload["traceEvents"]
        assert any(e["name"] == "wait" for e in events)
        assert any(e["args"].get("batched") for e in events if e["name"] != "wait")
        tids = {e["tid"] for e in events}
        assert tids == {1, 2}

        rendered = timeline.render()
        assert "merged scan" in rendered
        assert "q1+q2" in rendered
