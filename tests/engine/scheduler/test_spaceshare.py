"""Space-shared executor: slices, overlap, queue delay, serial identity.

The contract has two halves. ``job_slots=1`` (the default) must reproduce
the historical serial schedule *exactly* — same metrics, same schedules,
same timeline text — for every strategy; the determinism guard in
``test_scheduler.py`` already pins scheduled-vs-direct, so here we pin
explicit-config-vs-default. ``job_slots>1`` must genuinely overlap cluster
jobs of different queries on the shared clock, charge each job against its
partition slice (stretching its own seconds), and only charge queueing
delay for time when no slice was free.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ReproError
from repro.engine.scheduler import JobScheduler, SchedulerConfig
from repro.optimizers import make_optimizer

from tests.conftest import build_star_session, star_query
from tests.engine.scheduler.test_scheduler import ALL_STRATEGIES


def run_schedule(job_slots: int, count: int = 3, strategy: str = "dynamic"):
    session = build_star_session()
    scheduler = JobScheduler(
        session.executor, SchedulerConfig(job_slots=job_slots)
    )
    handles = [
        scheduler.submit(
            star_query(), make_optimizer(strategy), session, label=f"q{i}"
        )
        for i in range(count)
    ]
    scheduler.run_all()
    return scheduler, handles


def schedule_fingerprint(scheduler, handles):
    """Everything observable about a schedule, for exact comparison."""
    return (
        scheduler.timeline.render(),
        scheduler.timeline.to_chrome_trace(),
        scheduler.cluster_jobs,
        scheduler.scans_saved,
        [
            (
                h.status,
                repr(h.queue_delay_seconds),
                repr(h.finished_at),
                repr(h.result().metrics.total_seconds),
                len(h.result().rows),
            )
            for h in handles
        ],
    )


class TestSerialIdentity:
    """job_slots=1 is byte-identical to the pre-space-sharing scheduler."""

    def test_default_config_is_serial(self):
        assert SchedulerConfig().job_slots == 1

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_explicit_one_slot_matches_default(self, name):
        session_a = build_star_session()
        sched_a = JobScheduler(session_a.executor, SchedulerConfig())
        handles_a = [
            sched_a.submit(star_query(), make_optimizer(name), session_a)
            for _ in range(3)
        ]
        sched_a.run_all()

        session_b = build_star_session()
        sched_b = JobScheduler(
            session_b.executor, SchedulerConfig(job_slots=1)
        )
        handles_b = [
            sched_b.submit(star_query(), make_optimizer(name), session_b)
            for _ in range(3)
        ]
        sched_b.run_all()

        assert schedule_fingerprint(sched_a, handles_a) == schedule_fingerprint(
            sched_b, handles_b
        )

    def test_serial_timeline_is_not_space_shared(self):
        scheduler, _ = run_schedule(job_slots=1)
        assert not scheduler.timeline.space_shared
        assert all(e.slice_partitions is None for e in scheduler.timeline.events)
        assert all(e.slot == 0 for e in scheduler.timeline.events)
        # Serial jobs never overlap.
        assert scheduler.timeline.overlapping_pairs() == 0

    def test_solo_execute_is_serial_even_with_session_slots(self):
        from repro.session import Session

        solo = build_star_session().execute(star_query())
        session = build_star_session()
        session.scheduler_config = SchedulerConfig(job_slots=4)
        result = session.execute(star_query())
        assert result.seconds == solo.seconds
        assert result.rows == solo.rows


class TestSpaceSharing:
    def test_zero_job_slots_rejected(self):
        with pytest.raises(ReproError):
            SchedulerConfig(job_slots=0)

    def test_jobs_overlap_on_the_shared_clock(self):
        scheduler, handles = run_schedule(job_slots=2, count=4)
        assert all(h.done for h in handles)
        assert scheduler.timeline.space_shared
        assert scheduler.timeline.overlapping_pairs() > 0
        # At least one job ran on a proper slice of the 4-partition cluster.
        widths = {
            e.slice_partitions
            for e in scheduler.timeline.events
            if e.slice_partitions is not None
        }
        assert any(w < scheduler.executor.cluster.partitions for w in widths)

    def test_makespan_beats_serial(self):
        serial, _ = run_schedule(job_slots=1, count=4)
        shared, _ = run_schedule(job_slots=2, count=4)
        assert (
            shared.timeline.makespan_seconds < serial.timeline.makespan_seconds
        )

    def test_rows_identical_to_serial(self):
        serial, serial_handles = run_schedule(job_slots=1, count=4)
        shared, shared_handles = run_schedule(job_slots=2, count=4)
        for a, b in zip(serial_handles, shared_handles):
            assert a.result().rows == b.result().rows
            assert a.result().plan_description == b.result().plan_description

    def test_slice_costing_stretches_per_query_seconds(self):
        # On a slice each query's own partitioned work divides by fewer
        # partitions, so its charged seconds exceed the full-width run even
        # though the batch's makespan shrinks.
        serial, serial_handles = run_schedule(job_slots=1, count=4)
        shared, shared_handles = run_schedule(job_slots=2, count=4)
        for a, b in zip(serial_handles, shared_handles):
            assert (
                b.result().metrics.total_seconds
                > a.result().metrics.total_seconds
            )

    def test_determinism_run_twice(self):
        first = schedule_fingerprint(*run_schedule(job_slots=2, count=4))
        second = schedule_fingerprint(*run_schedule(job_slots=2, count=4))
        assert first == second

    def test_timeline_render_shows_lanes(self):
        scheduler, _ = run_schedule(job_slots=2, count=4)
        text = scheduler.timeline.render()
        assert "slot" in text and "width" in text

    def test_chrome_trace_gains_slot_track(self):
        import json

        scheduler, _ = run_schedule(job_slots=2, count=4)
        events = json.loads(scheduler.timeline.to_chrome_trace())["traceEvents"]
        assert any(e["pid"] == 2 for e in events)
        serial, _ = run_schedule(job_slots=1, count=4)
        events = json.loads(serial.timeline.to_chrome_trace())["traceEvents"]
        assert all(e["pid"] == 1 for e in events)


class TestQueueDelayAccounting:
    def test_enough_slots_means_zero_delay(self):
        # Two queries, two slots: every ready request launches immediately,
        # so nobody is ever charged queueing delay.
        scheduler, handles = run_schedule(job_slots=2, count=2)
        for handle in handles:
            assert handle.queue_delay_seconds == 0.0
            assert handle.result().schedule.queue_delay_seconds == 0.0

    def test_contention_charges_delay(self):
        # Three queries on two slots: someone must wait for a slice.
        scheduler, handles = run_schedule(job_slots=2, count=3)
        delays = [h.queue_delay_seconds for h in handles]
        assert all(d >= 0.0 for d in delays)
        assert any(d > 0.0 for d in delays)
        # The timeline's per-query attribution matches the handles.
        for handle in handles:
            assert scheduler.timeline.queue_delay_of(
                handle.query_id
            ) == pytest.approx(handle.queue_delay_seconds)

    def test_delay_lands_on_schedule_not_metrics(self):
        solo = build_star_session().execute(star_query())
        scheduler, handles = run_schedule(job_slots=2, count=3)
        delayed = [h for h in handles if h.queue_delay_seconds > 0.0]
        assert delayed
        for handle in delayed:
            info = handle.result().schedule
            assert info.queue_delay_seconds == handle.queue_delay_seconds
            # Latency = own (slice-stretched) work + waiting; never less
            # than the work alone.
            assert info.latency_seconds >= info.busy_seconds


class TestBatchingUnderSpaceSharing:
    def test_merged_scans_coexist_with_overlap(self):
        # The star query's pushdown scans still merge across concurrently
        # admitted queries while unrelated jobs overlap in other slots.
        scheduler, handles = run_schedule(job_slots=2, count=4)
        assert all(h.done for h in handles)
        assert scheduler.timeline.batched_job_count > 0
        assert scheduler.scans_saved > 0
        assert scheduler.timeline.overlapping_pairs() > 0
        batched = [e for e in scheduler.timeline.events if e.batched]
        assert any(len(e.queries) > 1 for e in batched)

    def test_merged_scan_occupies_one_slot(self):
        scheduler, _ = run_schedule(job_slots=2, count=4)
        for event in scheduler.timeline.events:
            if event.batched:
                overlapping = [
                    other
                    for other in scheduler.timeline.events
                    if other is not event
                    and other.start_seconds < event.end_seconds
                    and event.start_seconds < other.end_seconds
                ]
                # Anything concurrent with a merged scan sits in a
                # different slice lane.
                assert all(o.slot != event.slot for o in overlapping)
