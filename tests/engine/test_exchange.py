"""Exchange connector tests."""

from repro.common.rng import stable_hash
from repro.engine.exchange import broadcast_exchange, hash_exchange


class TestHashExchange:
    def test_preserves_all_rows(self):
        partitions = [[{"k": i} for i in range(10)], [{"k": i} for i in range(10, 20)]]
        out = hash_exchange(partitions, lambda r: r["k"], 4)
        assert sum(len(p) for p in out) == 20

    def test_routes_by_stable_hash(self):
        partitions = [[{"k": i} for i in range(50)]]
        out = hash_exchange(partitions, lambda r: r["k"], 8)
        for pid, partition in enumerate(out):
            for row in partition:
                assert stable_hash(row["k"]) % 8 == pid

    def test_equal_keys_colocate(self):
        partitions = [[{"k": 5, "n": i}] for i in range(10)]
        out = hash_exchange(partitions, lambda r: r["k"], 4)
        assert sum(1 for p in out if p) == 1

    def test_empty_input(self):
        assert hash_exchange([[], []], lambda r: r, 4) == [[], [], [], []]


class TestBroadcastExchange:
    def test_gathers_everything_in_order(self):
        partitions = [[1, 2], [], [3]]
        assert broadcast_exchange(partitions) == [1, 2, 3]

    def test_empty(self):
        assert broadcast_exchange([[], []]) == []
