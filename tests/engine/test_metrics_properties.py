"""Property-based invariants of the simulated-time accounting."""

from __future__ import annotations

from dataclasses import fields

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.metrics import JobMetrics

TIME_FIELDS = JobMetrics._TIME_FIELDS
COUNTER_FIELDS = tuple(
    f.name
    for f in fields(JobMetrics)
    if not f.name.startswith("_") and f.name not in TIME_FIELDS
)

seconds = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
counts = st.integers(min_value=0, max_value=10**9)

metrics_strategy = st.builds(
    JobMetrics,
    **{name: seconds for name in TIME_FIELDS},
    **{name: counts for name in COUNTER_FIELDS},
)


class TestJobMetricsProperties:
    @given(metrics_strategy, metrics_strategy)
    def test_merge_keeps_components_non_negative(self, a, b):
        a.merge(b)
        for name in TIME_FIELDS:
            assert getattr(a, name) >= 0.0
        for name in COUNTER_FIELDS:
            assert getattr(a, name) >= 0

    @given(metrics_strategy)
    def test_total_is_sum_of_breakdown(self, m):
        assert m.total_seconds == pytest.approx(sum(m.breakdown().values()))
        assert set(m.breakdown()) == set(TIME_FIELDS)

    @given(metrics_strategy)
    def test_copy_round_trips(self, m):
        clone = m.copy()
        assert clone == m
        assert clone is not m
        # mutating the copy must not alias the original
        clone.scan += 1.0
        clone.jobs += 1
        assert clone != m

    @given(metrics_strategy, metrics_strategy)
    def test_merge_of_copy_is_fieldwise_sum(self, a, b):
        merged = a.copy().merge(b)
        for f in fields(JobMetrics):
            if f.name.startswith("_"):
                continue
            expected = getattr(a, f.name) + getattr(b, f.name)
            assert getattr(merged, f.name) == pytest.approx(expected)
        # the source operands are untouched
        assert a == a.copy()

    @given(metrics_strategy)
    def test_merge_with_zero_is_identity(self, m):
        before = m.copy()
        m.merge(JobMetrics())
        assert m == before

    @given(metrics_strategy, metrics_strategy)
    def test_merge_returns_self(self, a, b):
        assert a.merge(b) is a
