"""The tentpole proof: vectorized == row-wise, byte for byte, everywhere.

Sweeps every registered strategy over the paper's four evaluation queries
and asserts both engines produce identical rows, metrics, plans, phases,
traces, schedules and timelines (tests/engine/equivalence.py). A separate
leg pins the INL join path, which bypasses the operator-tree probe side
entirely and exercises the index-lookup kernel.
"""

from __future__ import annotations

import pytest

from tests.engine.equivalence import (
    ALL_QUERIES,
    ALL_STRATEGIES,
    assert_engines_equivalent,
)


@pytest.mark.parametrize("label", ALL_QUERIES)
@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_engines_equivalent(label: str, strategy: str) -> None:
    assert_engines_equivalent(label, strategy)


@pytest.mark.parametrize("label", ALL_QUERIES)
def test_engines_equivalent_with_inl(label: str) -> None:
    """Dynamic with secondary indexes on: covers IndexNestedLoopJoinOp."""
    assert_engines_equivalent(label, "dynamic", inl_enabled=True)


@pytest.mark.parametrize("label", ALL_QUERIES)
def test_engines_equivalent_with_transfer_prelude(label: str) -> None:
    """Dynamic behind the predicate-transfer prelude: covers the
    SemiJoinFilterOp reduce jobs feeding the re-optimization loop (the
    standalone ``predicate_transfer`` strategy is already in the
    ALL_STRATEGIES sweep above)."""
    assert_engines_equivalent(label, "dynamic", pre_filter="transfer")


def test_fingerprint_covers_real_work() -> None:
    """Guard against a vacuous sweep: the fingerprints must show joins and
    scans actually happened (non-zero counters, at least one query with
    output rows)."""
    fp = assert_engines_equivalent("Q9", "dynamic")
    assert '"rows"' not in fp["metrics"]  # sanity: metrics is field=value text
    assert "tuples_joined=0 " not in fp["metrics"] + " "
    assert fp["rows"] != "[]"
