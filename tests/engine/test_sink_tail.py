"""Sink, DistributeResult and tail operator tests."""

import pytest

from repro.engine.job import Job
from repro.engine.operators.scan import ScanOp
from repro.engine.operators.sink import DistributeResultOp, SinkOp
from repro.engine.operators.tail import GroupByOp, LimitOp, OrderByOp


class TestSink:
    def test_materializes_projection(self, star_session):
        sink = SinkOp(ScanOp("fact", "fact"), "inter", ("fact.f_a", "fact.f_val"))
        data, metrics = star_session.executor.execute(Job(sink))
        assert set(data.columns) == {"fact.f_a", "fact.f_val"}
        stored = star_session.datasets.get("inter")
        assert stored.is_intermediate
        assert stored.row_count == 2000
        assert stored.scale == 10_000.0
        assert metrics.materialize > 0
        assert metrics.rows_materialized == 2000

    def test_registers_rowcount_only_stats_without_columns(self, star_session):
        sink = SinkOp(ScanOp("da", "da"), "inter2", ("da.a_id",))
        star_session.executor.execute(Job(sink))
        stats = star_session.statistics.get("inter2")
        assert stats.row_count == 50
        assert stats.fields == {}

    def test_online_sketches_when_requested(self, star_session):
        sink = SinkOp(
            ScanOp("da", "da"), "inter3", ("da.a_id", "da.a_attr"), ("da.a_attr",)
        )
        _, metrics = star_session.executor.execute(Job(sink))
        stats = star_session.statistics.get("inter3")
        assert abs(stats.distinct_count("da.a_attr") - 7) <= 1
        assert metrics.stats > 0

    def test_statistics_catalog_override(self, star_session):
        from repro.stats.catalog import StatisticsCatalog

        private = star_session.statistics.copy()
        sink = SinkOp(ScanOp("da", "da"), "inter4", ("da.a_id",))
        star_session.executor.execute(Job(sink), statistics=private)
        assert private.has("inter4")
        assert not star_session.statistics.has("inter4")


class TestDistributeResult:
    def test_charges_output(self, star_session):
        op = DistributeResultOp(ScanOp("da", "da"))
        data, metrics = star_session.executor.execute(Job(op))
        assert metrics.output > 0
        assert metrics.rows_out == 50
        assert data.row_count == 50


class TestGroupBy:
    def test_counts_per_group(self, star_session):
        op = GroupByOp(ScanOp("da", "da"), ("da.a_attr",))
        data, _ = star_session.executor.execute(Job(op))
        counts = {row["da.a_attr"]: row["count"] for row in data.all_rows()}
        expected = {}
        for i in range(50):
            expected[i % 7] = expected.get(i % 7, 0) + 1
        assert counts == expected

    def test_groups_globally_despite_partitioning(self, star_session):
        # values of a_attr are spread across partitions; each group must
        # appear exactly once in the output
        op = GroupByOp(ScanOp("da", "da"), ("da.a_attr",))
        data, _ = star_session.executor.execute(Job(op))
        values = [row["da.a_attr"] for row in data.all_rows()]
        assert len(values) == len(set(values))


class TestOrderBy:
    def test_global_order(self, star_session):
        op = OrderByOp(ScanOp("da", "da"), ("da.a_attr", "da.a_id"))
        data, _ = star_session.executor.execute(Job(op))
        rows = data.all_rows()
        keys = [(r["da.a_attr"], r["da.a_id"]) for r in rows]
        assert keys == sorted(keys)

    def test_mixed_types_do_not_crash(self, star_session):
        op = OrderByOp(ScanOp("da", "da"), ("da.ghost",))
        data, _ = star_session.executor.execute(Job(op))
        assert data.row_count == 50


class TestLimit:
    def test_truncates(self, star_session):
        op = LimitOp(ScanOp("da", "da"), 7)
        data, _ = star_session.executor.execute(Job(op))
        assert data.row_count == 7

    def test_limit_zero(self, star_session):
        op = LimitOp(ScanOp("da", "da"), 0)
        data, _ = star_session.executor.execute(Job(op))
        assert data.row_count == 0

    def test_limit_beyond_rows(self, star_session):
        op = LimitOp(ScanOp("da", "da"), 1000)
        data, _ = star_session.executor.execute(Job(op))
        assert data.row_count == 50
