"""CORDS-style correlation discovery between column pairs.

The paper attributes static misestimation partly to "undetected correlations
between multiple predicates local to a single dataset" and cites CORDS
[Ilyas et al., SIGMOD 2004] as the line of work that *detects* such
correlations offline. This module implements the sampling-based core of that
idea: for a pair of columns, compare the number of distinct *value pairs*
against the product of per-column distinct counts. Independent columns have
|distinct(a,b)| ≈ |distinct(a)| * |distinct(b)| (capped by the row count);
a strong functional dependency collapses it toward max(|a|, |b|).

It powers the correlation-aware estimation ablation: a static optimizer
equipped with discovered column correlations can correct the independence
assumption for fixed-value predicate pairs — but, as the paper argues, this
still cannot help with parameterized values or UDFs, which only runtime
execution can measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import StatisticsError
from repro.sketches.hyperloglog import HyperLogLog


@dataclass(frozen=True)
class ColumnCorrelation:
    """Discovered relationship between two columns of one dataset."""

    column_a: str
    column_b: str
    distinct_a: float
    distinct_b: float
    distinct_pairs: float
    rows: int

    @property
    def independence_expectation(self) -> float:
        """Distinct pairs expected if the columns were independent."""
        return min(float(self.rows), self.distinct_a * self.distinct_b)

    @property
    def correlation_strength(self) -> float:
        """0 = independent, 1 = perfect functional dependency.

        Measures how far the observed pair count falls below the
        independence expectation, normalized to the gap between
        independence and perfect dependency.
        """
        expected = self.independence_expectation
        floor = max(self.distinct_a, self.distinct_b)
        if expected <= floor:
            return 0.0
        observed = max(floor, min(self.distinct_pairs, expected))
        return (expected - observed) / (expected - floor)

    @property
    def is_correlated(self) -> bool:
        """CORDS-style verdict with the conventional 0.3 threshold."""
        return self.correlation_strength > 0.3


class CorrelationDetector:
    """Streams rows once and sketches all requested column pairs."""

    def __init__(self, column_pairs: list[tuple[str, str]], precision: int = 12) -> None:
        if not column_pairs:
            raise StatisticsError("need at least one column pair")
        self.pairs = [tuple(sorted(pair)) for pair in column_pairs]
        self._singles: dict[str, HyperLogLog] = {}
        for a, b in self.pairs:
            self._singles.setdefault(a, HyperLogLog(precision))
            self._singles.setdefault(b, HyperLogLog(precision))
        self._pair_sketches = {pair: HyperLogLog(precision) for pair in self.pairs}
        self._rows = 0

    def observe_row(self, row: dict) -> None:
        self._rows += 1
        for column, sketch in self._singles.items():
            value = row.get(column)
            if value is not None:
                sketch.add(value)
        for (a, b), sketch in self._pair_sketches.items():
            va, vb = row.get(a), row.get(b)
            if va is not None and vb is not None:
                sketch.add((repr(va), repr(vb)))

    def observe_rows(self, rows) -> None:
        for row in rows:
            self.observe_row(row)

    def result(self, column_a: str, column_b: str) -> ColumnCorrelation:
        pair = tuple(sorted((column_a, column_b)))
        if pair not in self._pair_sketches:
            raise StatisticsError(f"pair {pair} was not tracked")
        a, b = pair
        return ColumnCorrelation(
            column_a=a,
            column_b=b,
            distinct_a=max(1.0, self._singles[a].cardinality()),
            distinct_b=max(1.0, self._singles[b].cardinality()),
            distinct_pairs=max(1.0, self._pair_sketches[pair].cardinality()),
            rows=self._rows,
        )

    def results(self) -> list[ColumnCorrelation]:
        return [self.result(a, b) for a, b in self.pairs]


def discover_correlations(
    dataset, column_pairs: list[tuple[str, str]], sample_limit: int | None = 2000
) -> list[ColumnCorrelation]:
    """Run the detector over a stored dataset (optionally a prefix sample)."""
    detector = CorrelationDetector(column_pairs)
    seen = 0
    for row in dataset.rows():
        detector.observe_row(row)
        seen += 1
        if sample_limit is not None and seen >= sample_limit:
            break
    return detector.results()
