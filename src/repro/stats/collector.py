"""Streaming statistics collection over rows.

The Sink operator (Section 6.3) materializes intermediate data "while also
gathering statistics on them"; ingestion (Section 7, experimental setup)
gathers the same statistics upfront during loading. Both paths use this
collector: for each tracked field it maintains a GK quantile sketch and a
HyperLogLog sketch in parallel (Section 4: "the gathering of these two
statistical types happens in parallel").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sketches.gk import GKQuantileSketch
from repro.sketches.histogram import EquiHeightHistogram
from repro.sketches.hyperloglog import HyperLogLog


@dataclass
class FieldStatistics:
    """Sketches collected for one field of one dataset."""

    field_name: str
    quantiles: GKQuantileSketch = field(default_factory=GKQuantileSketch)
    distinct: HyperLogLog = field(default_factory=HyperLogLog)
    null_count: int = 0

    def observe(self, value: object) -> None:
        if value is None:
            self.null_count += 1
            return
        self.distinct.add(value)
        numeric = _as_numeric(value)
        if numeric is not None:
            self.quantiles.add(numeric)

    @property
    def distinct_count(self) -> float:
        """HLL estimate of the number of distinct non-null values."""
        return max(1.0, self.distinct.cardinality())

    def histogram(self, bucket_count: int = 32) -> EquiHeightHistogram | None:
        """Equi-height histogram, or None for non-numeric fields."""
        if len(self.quantiles) == 0:
            return None
        return EquiHeightHistogram.from_sketch(self.quantiles, bucket_count)

    def merge(self, other: FieldStatistics) -> FieldStatistics:
        merged = FieldStatistics(self.field_name)
        merged.quantiles = self.quantiles.merge(other.quantiles)
        merged.distinct = self.distinct.merge(other.distinct)
        merged.null_count = self.null_count + other.null_count
        return merged

    # -- persistence ----------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable snapshot of both sketches plus the null count."""
        return {
            "field_name": self.field_name,
            "null_count": self.null_count,
            "quantiles": self.quantiles.to_state(),
            "distinct": self.distinct.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> FieldStatistics:
        restored = cls(state["field_name"])
        restored.null_count = int(state["null_count"])
        restored.quantiles = GKQuantileSketch.from_state(state["quantiles"])
        restored.distinct = HyperLogLog.from_state(state["distinct"])
        return restored


def _as_numeric(value: object) -> float | None:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return None


class StatisticsCollector:
    """Collects per-field sketches plus the row count for one dataset.

    Parameters
    ----------
    tracked_fields:
        The fields to sketch. At ingestion time this is "every field of a
        dataset that may participate in any query" (Section 4); for online
        statistics it is "only attributes that participate in subsequent join
        stages" (Section 5.3) — the caller decides.
    """

    def __init__(self, tracked_fields: list[str] | tuple[str, ...]) -> None:
        self.fields = {name: FieldStatistics(name) for name in tracked_fields}
        self.row_count = 0

    def observe_row(self, row: dict) -> None:
        self.row_count += 1
        for name, stats in self.fields.items():
            stats.observe(row.get(name))

    def observe_rows(self, rows) -> None:
        for row in rows:
            self.observe_row(row)

    def observe_columns(self, columns: dict, length: int) -> None:
        """Columnar twin of ``observe_row`` over a batch of parallel columns.

        Sketch state depends only on the per-field sequence of observed
        values, so feeding each tracked field its column in row order leaves
        GK/HLL state identical to ``length`` calls of ``observe_row``.
        """
        self.row_count += length
        for name, stats in self.fields.items():
            column = columns.get(name)
            if column is None:
                stats.null_count += length
                continue
            for value in column:
                stats.observe(value)

    @property
    def tracked_field_names(self) -> list[str]:
        return list(self.fields)

    def field(self, name: str) -> FieldStatistics:
        return self.fields[name]

    def sketch_cost_units(self) -> int:
        """Work units charged by the cost model for this collection pass.

        One unit per (row, tracked field): the extra time for statistics
        "depends on the number of attributes for which we need to keep
        statistics for" (Section 7.1).
        """
        return self.row_count * max(1, len(self.fields))
