"""Cardinality and selectivity estimation.

Implements the estimation machinery of Sections 4 and 5:

- **Formula (1)** (Selinger):
  ``|A ⋈k B| = S(A) * S(B) / max(U(A.k), U(B.k))`` with S the qualified row
  count immediately before the join and U the HyperLogLog distinct count. For
  multi-conjunct joins the ``1/max(U, U)`` factor is applied per conjunct.
- **Histogram selectivity** for single fixed-value predicates.
- **Default selectivity factors** for complex predicates (UDF /
  parameterized): 1/10 for equalities, 1/3 for inequalities [Selinger 79] —
  the fallback the *static* baseline is forced into.
- **Independence-assumption multiplication** for multiple predicates — the
  traditional (and, under correlation, misleading) approach the dynamic
  optimizer replaces with predicate push-down execution.
"""

from __future__ import annotations

from repro.lang.ast import (
    BetweenPredicate,
    ComparisonPredicate,
    ParameterPredicate,
    Predicate,
    UdfPredicate,
    split_column,
)
from repro.stats.catalog import DatasetStatistics
from repro.stats.collector import FieldStatistics

#: Default selectivity for equality predicates the optimizer cannot estimate.
DEFAULT_EQUALITY_SELECTIVITY = 1.0 / 10.0
#: Default selectivity for range/inequality predicates it cannot estimate.
DEFAULT_INEQUALITY_SELECTIVITY = 1.0 / 3.0

_EQUALITY_OPS = {"=", "!="}


def default_selectivity(op: str) -> float:
    """Selinger default factor for an operator of unknown selectivity."""
    if op in _EQUALITY_OPS:
        return DEFAULT_EQUALITY_SELECTIVITY
    return DEFAULT_INEQUALITY_SELECTIVITY


def resolve_field(stats: DatasetStatistics, column: str) -> FieldStatistics | None:
    """Find field statistics for a qualified column.

    Base datasets sketch plain field names; intermediates sketch qualified
    names. Try the qualified name first, then the bare field name.
    """
    found = stats.field_statistics(column)
    if found is not None:
        return found
    _, bare = split_column(column)
    return stats.field_statistics(bare)


def predicate_selectivity(
    stats: DatasetStatistics, predicate: Predicate, histogram_buckets: int = 32
) -> float:
    """Estimated selectivity of one local predicate against one dataset.

    Complex predicates return the default factor; estimable predicates use
    the equi-height histogram when one exists, else the HLL distinct count
    (for equality), else the default factor.
    """
    if isinstance(predicate, (UdfPredicate, ParameterPredicate)):
        return default_selectivity(getattr(predicate, "op", "="))
    if isinstance(predicate, BetweenPredicate):
        field = resolve_field(stats, predicate.column)
        histogram = field.histogram(histogram_buckets) if field is not None else None
        if histogram is None:
            return DEFAULT_INEQUALITY_SELECTIVITY
        low = _numeric(predicate.low)
        high = _numeric(predicate.high)
        if low is None or high is None:
            return DEFAULT_INEQUALITY_SELECTIVITY
        return _clamp(histogram.selectivity_range(low, high))
    if isinstance(predicate, ComparisonPredicate):
        field = resolve_field(stats, predicate.column)
        if field is None:
            return default_selectivity(predicate.op)
        value = _numeric(predicate.value)
        if value is None:
            # Non-numeric equality: 1/U from the distinct sketch.
            if predicate.op == "=" and len(field.distinct) > 0:
                return _clamp(1.0 / field.distinct_count)
            return default_selectivity(predicate.op)
        histogram = field.histogram(histogram_buckets)
        if histogram is None:
            if predicate.op == "=" and len(field.distinct) > 0:
                return _clamp(1.0 / field.distinct_count)
            return default_selectivity(predicate.op)
        return _clamp(histogram.selectivity_comparison(predicate.op, value))
    return DEFAULT_INEQUALITY_SELECTIVITY


def conjunctive_selectivity(
    stats: DatasetStatistics, predicates, histogram_buckets: int = 32
) -> float:
    """Independence-assumption product of individual selectivities.

    "Traditional optimizers assume predicate independence and thus the total
    selectivity is computed by multiplying the individual ones. This approach
    can easily lead to inaccurate estimations" (Section 5.1). The dynamic
    optimizer avoids calling this for multi-predicate datasets by executing
    the predicates instead.
    """
    selectivity = 1.0
    for predicate in predicates:
        selectivity *= predicate_selectivity(stats, predicate, histogram_buckets)
    return _clamp(selectivity)


def filtered_cardinality(stats: DatasetStatistics, predicates) -> float:
    """Estimated qualified-row count after applying ``predicates``.

    Entries flagged ``predicates_applied`` (pilot-run per-alias samples)
    already incorporate the local predicates, so they pass through.
    """
    if stats.predicates_applied:
        return max(0.0, stats.row_count)
    return max(0.0, stats.row_count * conjunctive_selectivity(stats, predicates))


def join_cardinality(
    left: DatasetStatistics,
    right: DatasetStatistics,
    conditions,
    left_rows: float | None = None,
    right_rows: float | None = None,
) -> float:
    """Formula (1), generalized to multi-conjunct equi-joins.

    ``conditions`` is an iterable of :class:`~repro.lang.ast.JoinCondition`
    whose ``left``/``right`` columns belong to ``left``/``right`` datasets in
    some order (the caller guarantees orientation). ``left_rows``/
    ``right_rows`` override S(A)/S(B) when local predicates have already been
    accounted for.

    For multi-conjunct joins only the *most selective single conjunct* (the
    largest distinct count) divides the product. Composite join keys are
    almost always correlated (TPC-DS ties ticket_number, item and customer
    together), so multiplying the per-conjunct factors under independence
    would collapse the estimate toward zero and make fact-to-fact joins look
    free — the estimation trap the dynamic planner must not fall into.
    """
    size_left = left.row_count if left_rows is None else left_rows
    size_right = right.row_count if right_rows is None else right_rows
    estimate = size_left * size_right
    best_divisor = 1.0
    for condition in conditions:
        u_left = _distinct_for(left, condition.left, condition.right)
        u_right = _distinct_for(right, condition.left, condition.right)
        best_divisor = max(best_divisor, u_left, u_right)
    return max(0.0, estimate / best_divisor)


def _distinct_for(stats: DatasetStatistics, *candidate_columns: str) -> float:
    """U(x.k) for whichever of the candidate columns this dataset holds."""
    for column in candidate_columns:
        field = resolve_field(stats, column)
        if field is not None and len(field.distinct) > 0:
            return min(field.distinct_count, max(1.0, stats.row_count))
    return max(1.0, stats.row_count)


def _numeric(value: object) -> float | None:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return None


def _clamp(fraction: float) -> float:
    return max(0.0, min(1.0, fraction))
