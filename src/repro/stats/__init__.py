"""Statistics collection framework (Section 4) and cardinality estimation."""

from repro.stats.catalog import DatasetStatistics, StatisticsCatalog
from repro.stats.collector import FieldStatistics, StatisticsCollector
from repro.stats.estimation import (
    DEFAULT_EQUALITY_SELECTIVITY,
    DEFAULT_INEQUALITY_SELECTIVITY,
    conjunctive_selectivity,
    default_selectivity,
    filtered_cardinality,
    join_cardinality,
    predicate_selectivity,
)

__all__ = [
    "DEFAULT_EQUALITY_SELECTIVITY",
    "DEFAULT_INEQUALITY_SELECTIVITY",
    "DatasetStatistics",
    "FieldStatistics",
    "StatisticsCatalog",
    "StatisticsCollector",
    "conjunctive_selectivity",
    "default_selectivity",
    "filtered_cardinality",
    "join_cardinality",
    "predicate_selectivity",
]

from repro.stats.correlation import (  # noqa: E402
    ColumnCorrelation,
    CorrelationDetector,
    discover_correlations,
)

__all__ += ["ColumnCorrelation", "CorrelationDetector", "discover_correlations"]
