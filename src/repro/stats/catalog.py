"""Statistics catalog: per-dataset row counts and per-field sketches.

The catalog is the optimizer's window onto the data. It is populated at
ingestion time for base datasets and *updated* at every re-optimization point:
pushed-down predicates replace a base dataset's entry with post-filter
statistics (Section 5.1) and each materialized join result registers a fresh
entry (Section 5.3, "Online Statistics").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CatalogError
from repro.stats.collector import FieldStatistics, StatisticsCollector


@dataclass
class DatasetStatistics:
    """Everything the cost model knows about one (base or intermediate) dataset."""

    name: str
    row_count: float
    row_width: int
    fields: dict[str, FieldStatistics] = field(default_factory=dict)
    #: True when ``row_count`` already reflects the alias's local predicates
    #: (pilot-run sample estimates) — estimation must not re-apply them.
    predicates_applied: bool = False
    #: Modeled full-scale rows per stored row (see Dataset.scale).
    scale: float = 1.0

    @property
    def byte_size(self) -> float:
        return self.row_count * self.row_width

    def distinct_count(self, field_name: str) -> float:
        """U(x.k) from formula (1); falls back to row count when unsketched.

        The row-count fallback corresponds to assuming the attribute is a key,
        which is the conservative choice for join-size estimation.
        """
        stats = self.fields.get(field_name)
        if stats is None or len(stats.distinct) == 0:
            return max(1.0, self.row_count)
        return min(stats.distinct_count, max(1.0, self.row_count))

    def field_statistics(self, field_name: str) -> FieldStatistics | None:
        return self.fields.get(field_name)

    # -- persistence ----------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable snapshot (used by the service's sketch store)."""
        return {
            "name": self.name,
            "row_count": self.row_count,
            "row_width": self.row_width,
            "predicates_applied": self.predicates_applied,
            "scale": self.scale,
            "fields": {
                name: stats.to_state() for name, stats in sorted(self.fields.items())
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> DatasetStatistics:
        return cls(
            name=state["name"],
            row_count=state["row_count"],
            row_width=int(state["row_width"]),
            fields={
                name: FieldStatistics.from_state(field_state)
                for name, field_state in state["fields"].items()
            },
            predicates_applied=bool(state["predicates_applied"]),
            scale=state["scale"],
        )


class StatisticsCatalog:
    """Mutable registry of :class:`DatasetStatistics` keyed by dataset name."""

    def __init__(self) -> None:
        self._datasets: dict[str, DatasetStatistics] = {}

    def register(self, stats: DatasetStatistics) -> None:
        self._datasets[stats.name] = stats

    def register_from_collector(
        self,
        name: str,
        collector: StatisticsCollector,
        row_width: int,
        scale: float = 1.0,
    ) -> DatasetStatistics:
        """Create and register an entry from a finished collection pass."""
        stats = DatasetStatistics(
            name=name,
            row_count=collector.row_count,
            row_width=row_width,
            fields=dict(collector.fields),
            scale=scale,
        )
        self.register(stats)
        return stats

    def get(self, name: str) -> DatasetStatistics:
        try:
            return self._datasets[name]
        except KeyError:
            raise CatalogError(f"no statistics for dataset {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._datasets

    def remove(self, name: str) -> None:
        self._datasets.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._datasets)

    def copy(self) -> StatisticsCatalog:
        """Shallow copy: entries are shared, membership is independent.

        Optimizers that speculatively override entries (e.g. the static
        baseline applying default selectivities) copy the catalog first so the
        ground-truth entries stay intact.
        """
        clone = StatisticsCatalog()
        clone._datasets = dict(self._datasets)
        return clone
