"""Partitioned storage: datasets, secondary indexes, ingestion, catalog."""

from repro.storage.catalog import DatasetCatalog
from repro.storage.dataset import Dataset, partition_rows
from repro.storage.index import SecondaryIndex
from repro.storage.ingest import load_dataset, register_intermediate

__all__ = [
    "Dataset",
    "DatasetCatalog",
    "SecondaryIndex",
    "load_dataset",
    "partition_rows",
    "register_intermediate",
]
