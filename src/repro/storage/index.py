"""Per-partition secondary indexes.

AsterixDB's indexed nested loop join broadcasts the (small, filtered) build
side to every partition and probes the *local* secondary index of the inner
base dataset. We model the index as a hash map from key value to local row
positions; each lookup is charged :attr:`CostParameters.index_lookup` by the
cost model, making INL a win only when the number of probing tuples is small
relative to scanning the inner dataset.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SecondaryIndex:
    """Hash index over one field of one partition's rows."""

    field_name: str
    entries: dict

    @classmethod
    def build(cls, rows: list[dict], field_name: str) -> SecondaryIndex:
        entries: dict = {}
        for position, row in enumerate(rows):
            key = row.get(field_name)
            if key is None:
                continue
            entries.setdefault(key, []).append(position)
        return cls(field_name, entries)

    def lookup(self, key: object) -> list[int]:
        """Positions of rows whose indexed field equals ``key``."""
        return self.entries.get(key, [])

    def __len__(self) -> int:
        return sum(len(positions) for positions in self.entries.values())
