"""Dataset ingestion with upfront statistics collection.

The paper exploits "AsterixDB's LSM ingestion process to get initial
statistics for base datasets" (Section 2): quantile and HyperLogLog sketches
are built once, while loading, for every field that may participate in a
query — outside query execution time. ``load_dataset`` reproduces that
contract: it partitions the rows, registers the dataset, and registers the
ingestion-time statistics.
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig
from repro.common.types import Schema
from repro.stats.catalog import DatasetStatistics, StatisticsCatalog
from repro.stats.collector import StatisticsCollector
from repro.storage.catalog import DatasetCatalog
from repro.storage.dataset import Dataset, partition_rows


def load_dataset(
    name: str,
    schema: Schema,
    rows: list[dict],
    cluster: ClusterConfig,
    datasets: DatasetCatalog,
    statistics: StatisticsCatalog,
    tracked_fields: list[str] | None = None,
    scale: float = 1.0,
    replace: bool = False,
    precollected: DatasetStatistics | None = None,
) -> Dataset:
    """Load ``rows`` as a new base dataset and collect its statistics.

    ``tracked_fields`` defaults to every field in the schema (Section 4:
    "we collect these types of statistics for every field of a dataset that
    may participate in any query"). ``scale`` is the modeled full-scale rows
    per stored row (DESIGN.md §2). ``replace`` permits re-ingesting an
    existing name (bumping its catalog version, which invalidates cached
    results that depended on it). ``precollected`` skips the collection pass
    and registers the given statistics entry instead — the service's sketch
    store uses this to restore persisted ingestion sketches, which is only
    sound because the store keys them by dataset *content*.
    """
    partition_key = schema.primary_key[0] if schema.primary_key else None
    dataset = Dataset(
        name=name,
        schema=schema,
        partitions=partition_rows(rows, cluster.partitions, partition_key),
        partition_key=partition_key,
        scale=scale,
    )
    if replace:
        datasets.replace(dataset)
    else:
        datasets.register(dataset)

    if precollected is not None:
        precollected.name = name
        statistics.register(precollected)
    else:
        collector = StatisticsCollector(tracked_fields or list(schema.field_names))
        collector.observe_rows(rows)
        statistics.register_from_collector(name, collector, schema.row_width, scale)
    return dataset


def register_intermediate(
    name: str,
    schema: Schema,
    partitions: list[list[dict]],
    partition_key: str | None,
    datasets: DatasetCatalog,
    scale: float = 1.0,
) -> Dataset:
    """Register a materialized re-optimization-point result.

    Statistics are *not* collected here: the Sink operator collects them
    online during the producing job (and only when another re-optimization
    will happen), so registration stays cheap.
    """
    dataset = Dataset(
        name=name,
        schema=schema,
        partitions=partitions,
        partition_key=partition_key,
        is_intermediate=True,
        scale=scale,
    )
    datasets.replace(dataset)
    return dataset
