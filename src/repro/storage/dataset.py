"""Partitioned dataset storage.

A :class:`Dataset` is a hash-partitioned collection of rows (plain dicts)
living across the simulated cluster's partitions, mirroring AsterixDB's
storage of a dataset as per-node LSM components. Base datasets have plain
field names and may carry secondary indexes; intermediate datasets (produced
by Sink operators at re-optimization points) carry *qualified* field names
and never have indexes — which is exactly why the pilot-run and cost-based
baselines lose INL opportunities in the paper's Figure 8.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.errors import SchemaError
from repro.common.rng import stable_hash
from repro.common.types import Schema
from repro.storage.index import SecondaryIndex

#: Default bound on distinct columns memoized per partition. Wide schemas
#: (TPC-DS fact tables) would otherwise pin every pivoted column for the
#: dataset's lifetime; 64 covers every query shape in the bench suite
#: without eviction while capping worst-case residency.
DEFAULT_COLUMN_CACHE_COLUMNS = 64


class ColumnCacheLRU:
    """Bounded field -> column-list memo for one partition.

    Exposes the mapping surface the vectorized scan path uses
    (:meth:`get` / item assignment / ``in``) while evicting the
    least-recently-used column beyond ``capacity``. Eviction only discards
    a memo — the column is re-pivoted from the stored rows on the next
    scan — so results are byte-identical at any capacity.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = DEFAULT_COLUMN_CACHE_COLUMNS) -> None:
        if capacity < 1:
            raise ValueError(f"column cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, list] = OrderedDict()

    def get(self, key: str, default=None):
        entries = self._entries
        if key not in entries:
            return default
        entries.move_to_end(key)
        return entries[key]

    def __setitem__(self, key: str, column: list) -> None:
        entries = self._entries
        entries[key] = column
        entries.move_to_end(key)
        while len(entries) > self.capacity:
            entries.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class Dataset:
    """Rows partitioned across the cluster.

    Parameters
    ----------
    name:
        Catalog name (base table name, or generated intermediate name).
    schema:
        Field layout; ``schema.primary_key`` names the partitioning key.
    partitions:
        One list of row dicts per cluster partition.
    partition_key:
        The field whose hash routes a row to its partition; ``None`` means
        the dataset is round-robin / arbitrarily partitioned (intermediates
        partitioned on a join key record that key here instead).
    is_intermediate:
        True for materialized re-optimization-point results.
    """

    name: str
    schema: Schema
    partitions: list[list[dict]]
    partition_key: str | None = None
    is_intermediate: bool = False
    indexes: dict[str, list[SecondaryIndex]] = field(default_factory=dict)
    #: Rows of the modeled full-scale dataset represented by each stored row
    #: (DESIGN.md §2). The cost clock and broadcast/INL size checks operate
    #: on modeled volumes (row_count * scale); join processing and
    #: statistics operate on the stored rows.
    scale: float = 1.0
    #: Lazily built per-partition columnar projections (field -> value list),
    #: shared by every vectorized scan of this dataset. Stored rows are
    #: treated as immutable after registration, so a column extracted once
    #: stays valid until the LRU bound evicts it.
    _column_caches: list[ColumnCacheLRU] | None = field(
        default=None, repr=False, compare=False
    )
    #: Per-partition bound on memoized columns; ``None`` uses
    #: :data:`DEFAULT_COLUMN_CACHE_COLUMNS`.
    column_cache_capacity: int | None = field(default=None, compare=False)

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    @property
    def row_count(self) -> int:
        return sum(len(p) for p in self.partitions)

    @property
    def byte_size(self) -> float:
        return self.row_count * self.schema.row_width

    @property
    def modeled_rows(self) -> float:
        """Row count of the modeled full-scale dataset."""
        return self.row_count * self.scale

    def rows(self):
        """Iterate all rows across partitions (test/inspection helper)."""
        for partition in self.partitions:
            yield from partition

    def column_cache(self, partition_index: int) -> ColumnCacheLRU:
        """The columnar projection memo for one partition (vectorized scans)."""
        if self._column_caches is None:
            capacity = self.column_cache_capacity or DEFAULT_COLUMN_CACHE_COLUMNS
            self._column_caches = [ColumnCacheLRU(capacity) for _ in self.partitions]
        return self._column_caches[partition_index]

    # -- secondary indexes --------------------------------------------------

    def create_index(self, field_name: str) -> None:
        """Build a per-partition secondary index on ``field_name``.

        Only base datasets may be indexed (the INL precondition: the probe
        side "must be a base dataset with an index on the join key(s)").
        """
        if self.is_intermediate:
            raise SchemaError(
                f"cannot index intermediate dataset {self.name!r}: "
                "materialized results have no secondary indexes"
            )
        if not self.schema.has_field(field_name):
            raise SchemaError(f"{self.name!r} has no field {field_name!r}")
        self.indexes[field_name] = [
            SecondaryIndex.build(partition, field_name) for partition in self.partitions
        ]

    def has_index(self, field_name: str) -> bool:
        return field_name in self.indexes

    def index_for(self, field_name: str, partition: int) -> SecondaryIndex:
        return self.indexes[field_name][partition]


def partition_rows(
    rows: list[dict], partition_count: int, partition_key: str | None
) -> list[list[dict]]:
    """Distribute rows across partitions.

    With a key: hash partitioning (co-location matters for join costs).
    Without: round-robin, which is what raw ingest without a primary key or a
    re-used materialized file gives you.
    """
    partitions: list[list[dict]] = [[] for _ in range(partition_count)]
    if partition_key is None:
        for i, row in enumerate(rows):
            partitions[i % partition_count].append(row)
    else:
        for row in rows:
            slot = stable_hash(row.get(partition_key)) % partition_count
            partitions[slot].append(row)
    return partitions
