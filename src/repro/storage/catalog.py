"""Dataset catalog: the storage-level registry of base and intermediate data.

The catalog owns datasets; the statistics catalog (``repro.stats``) owns what
the optimizer believes about them. They are registered together at ingestion
and at every re-optimization point's materialization.
"""

from __future__ import annotations

from repro.common.errors import CatalogError
from repro.common.types import Schema
from repro.storage.dataset import Dataset


class DatasetCatalog:
    """Name -> :class:`Dataset` registry with schema lookup for binding.

    Every *base* dataset carries a monotonically increasing version, bumped
    on (re-)ingestion. Versions give caches a cheap staleness check — a
    cached result tagged with the ``(name, version)`` pairs it depended on
    is valid iff every pair still matches — and :meth:`subscribe` lets them
    react to ingests eagerly. Intermediates (per-query materializations in
    ``__q<id>__`` namespaces) are not versioned: they churn constantly and
    are never a cache dependency themselves.
    """

    def __init__(self) -> None:
        self._datasets: dict[str, Dataset] = {}
        self._versions: dict[str, int] = {}
        self._listeners: list = []

    def register(self, dataset: Dataset) -> None:
        if dataset.name in self._datasets:
            raise CatalogError(f"dataset {dataset.name!r} already registered")
        self._datasets[dataset.name] = dataset
        self._bump(dataset)

    def replace(self, dataset: Dataset) -> None:
        """Register or overwrite (re-ingests and intermediates)."""
        self._datasets[dataset.name] = dataset
        self._bump(dataset)

    def _bump(self, dataset: Dataset) -> None:
        if dataset.is_intermediate:
            return
        self._versions[dataset.name] = self._versions.get(dataset.name, 0) + 1
        for listener in self._listeners:
            listener(dataset.name)

    def version(self, name: str) -> int:
        """Ingestion version of a base dataset (0 = never ingested)."""
        return self._versions.get(name, 0)

    def subscribe(self, listener) -> None:
        """Call ``listener(name)`` after every base-dataset (re-)ingest."""
        self._listeners.append(listener)

    def get(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise CatalogError(f"unknown dataset {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._datasets

    def drop(self, name: str) -> None:
        self._datasets.pop(name, None)

    def drop_intermediates(self) -> list[str]:
        """Remove all materialized intermediates (between experiment runs)."""
        doomed = [n for n, d in self._datasets.items() if d.is_intermediate]
        for name in doomed:
            del self._datasets[name]
        return doomed

    def names(self) -> list[str]:
        return sorted(self._datasets)

    def schema_lookup(self, name: str) -> Schema:
        """Schema accessor in the shape :mod:`repro.lang.binding` expects."""
        return self.get(name).schema
