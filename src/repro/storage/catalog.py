"""Dataset catalog: the storage-level registry of base and intermediate data.

The catalog owns datasets; the statistics catalog (``repro.stats``) owns what
the optimizer believes about them. They are registered together at ingestion
and at every re-optimization point's materialization.
"""

from __future__ import annotations

from repro.common.errors import CatalogError
from repro.common.types import Schema
from repro.storage.dataset import Dataset


class DatasetCatalog:
    """Name -> :class:`Dataset` registry with schema lookup for binding."""

    def __init__(self) -> None:
        self._datasets: dict[str, Dataset] = {}

    def register(self, dataset: Dataset) -> None:
        if dataset.name in self._datasets:
            raise CatalogError(f"dataset {dataset.name!r} already registered")
        self._datasets[dataset.name] = dataset

    def replace(self, dataset: Dataset) -> None:
        """Register or overwrite (used when re-running experiments)."""
        self._datasets[dataset.name] = dataset

    def get(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise CatalogError(f"unknown dataset {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._datasets

    def drop(self, name: str) -> None:
        self._datasets.pop(name, None)

    def drop_intermediates(self) -> list[str]:
        """Remove all materialized intermediates (between experiment runs)."""
        doomed = [n for n, d in self._datasets.items() if d.is_intermediate]
        for name in doomed:
            del self._datasets[name]
        return doomed

    def names(self) -> list[str]:
        return sorted(self._datasets)

    def schema_lookup(self, name: str) -> Schema:
        """Schema accessor in the shape :mod:`repro.lang.binding` expects."""
        return self.get(name).schema
