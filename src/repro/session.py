"""Session: the top-level public entry point of the library.

A session owns the simulated cluster, the dataset and statistics catalogs,
the UDF registry, and the executor. Typical use::

    from repro import Session
    session = Session()
    session.load("orders", orders_schema, rows)
    result = session.execute(query, optimizer="dynamic")
    print(result.seconds, result.plan_description)

Concurrent execution goes through the job scheduler: :meth:`Session.submit`
queues queries (with priorities) and :meth:`Session.run_all` drains them on
the shared simulated cluster clock. The blocking :meth:`Session.execute` is
the same path with a single-query schedule, so serial and concurrent
execution cannot drift apart.

Intermediates created by re-optimization points are registered into the
session catalogs; call :meth:`Session.reset_intermediates` between
experiment runs (the benchmark harness does this automatically).
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig, default_cluster
from repro.cluster.cost import CostParameters
from repro.common.errors import OptimizationError
from repro.common.types import Schema
from repro.engine.executor import Executor
from repro.engine.metrics import ExecutionResult
from repro.engine.scheduler import JobScheduler, QueryHandle, SchedulerConfig
from repro.lang.ast import Query
from repro.lang.udf import UdfRegistry, default_registry
from repro.stats.catalog import StatisticsCatalog
from repro.storage.catalog import DatasetCatalog
from repro.storage.dataset import Dataset
from repro.storage.ingest import load_dataset


class Session:
    """One simulated BDMS instance: cluster + catalogs + executor."""

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        udfs: UdfRegistry | None = None,
        cost_parameters: CostParameters | None = None,
        scheduler_config: SchedulerConfig | None = None,
    ) -> None:
        self.cluster = cluster or default_cluster()
        self.datasets = DatasetCatalog()
        self.statistics = StatisticsCatalog()
        self.udfs = udfs or default_registry()
        self.executor = Executor(
            self.cluster,
            self.datasets,
            self.statistics,
            self.udfs,
            cost_parameters,
        )
        self.scheduler_config = scheduler_config
        self.scheduler = JobScheduler(self.executor, scheduler_config)

    # -- data management ----------------------------------------------------

    def load(
        self, name: str, schema: Schema, rows: list[dict], scale: float = 1.0
    ) -> Dataset:
        """Ingest a base dataset, collecting ingestion-time statistics.

        ``scale`` declares how many modeled full-scale rows each stored row
        represents (DESIGN.md §2); the cost clock and broadcast decisions use
        the modeled volumes.
        """
        return load_dataset(
            name,
            schema,
            rows,
            self.cluster,
            self.datasets,
            self.statistics,
            scale=scale,
        )

    def create_index(self, dataset: str, field_name: str) -> None:
        """Build a secondary index (enables INL as a join choice)."""
        self.datasets.get(dataset).create_index(field_name)

    def reset_intermediates(self) -> None:
        """Drop all materialized intermediates and their statistics."""
        for name in self.datasets.drop_intermediates():
            self.statistics.remove(name)

    # -- query execution ------------------------------------------------------

    def execute(
        self, query: Query, optimizer: str = "dynamic", **options
    ) -> ExecutionResult:
        """Optimize + execute ``query`` with one of the registered strategies.

        ``optimizer`` is one of ``dynamic``, ``cost_based``, ``from_order``
        (stock AsterixDB: joins follow the FROM clause), ``best_order``,
        ``worst_order``, ``pilot_run``, ``ingres``. Extra keyword options are
        forwarded to the optimizer (e.g. ``inl_enabled=True``).

        Runs as a single-query schedule on a private scheduler, so this is
        the same code path as concurrent submission — just with nobody to
        contend with (and therefore zero queue delay). Scan batching is
        disabled here even when the query's own pushdown scans share a
        dataset: a solo run's accounting must match a pre-scheduler run
        exactly; the merge discount belongs to :meth:`submit`/:meth:`run_all`.
        """
        from dataclasses import replace

        from repro.optimizers import make_optimizer  # late import: avoids a cycle

        strategy = make_optimizer(optimizer, **options)
        config = replace(
            self.scheduler_config or SchedulerConfig(), batch_pushdown_scans=False
        )
        scheduler = JobScheduler(self.executor, config)
        handle = scheduler.submit(query, strategy, self)
        scheduler.run_all()
        return handle.result()

    def submit(
        self,
        query: Query,
        optimizer: str = "dynamic",
        priority: int = 0,
        label: str = "",
        **options,
    ) -> QueryHandle:
        """Queue ``query`` on the session's shared scheduler.

        Nothing executes until :meth:`run_all`; the returned handle exposes
        status, the queueing delay charged under saturation, and (once run)
        the :class:`~repro.engine.metrics.ExecutionResult`. Unknown optimizer
        names raise immediately, not at run time.
        """
        from repro.optimizers import make_optimizer

        strategy = make_optimizer(optimizer, **options)
        return self.scheduler.submit(
            query, strategy, self, priority=priority, label=label
        )

    def run_all(self) -> list[QueryHandle]:
        """Run every submitted query to completion on the shared clock."""
        return self.scheduler.run_all()

    def reset_scheduler(self) -> JobScheduler:
        """Fresh scheduler (clock at zero); the old timeline is discarded."""
        self.scheduler = JobScheduler(self.executor, self.scheduler_config)
        return self.scheduler

    def optimizer_names(self) -> list[str]:
        from repro.optimizers import OPTIMIZERS

        return sorted(OPTIMIZERS)

    def explain(self, query: Query, optimizer: str = "dynamic", **options) -> str:
        """The plan ``optimizer`` would (or did) use, without keeping state.

        Runtime dynamic optimization only *has* a final plan after running —
        that is the paper's point — so for the feedback-driven strategies
        this executes the query on the side and reports the captured tree;
        static strategies plan without executing side effects either way.
        Intermediates created along the way are cleaned up.
        """
        from repro.optimizers import make_optimizer

        strategy = make_optimizer(optimizer, **options)
        try:
            result = strategy.execute(query, self)
            return result.plan_description
        finally:
            self.reset_intermediates()

    def explain_analyze(
        self, query: Query, optimizer: str = "dynamic", **options
    ) -> str:
        """Execute ``query`` and render its trace as a plan-with-actuals report.

        Every execution records a :class:`repro.obs.QueryTrace` (hierarchical
        phase/operator spans plus estimated-vs-actual cardinalities per
        re-optimization point); this convenience runs the query, renders the
        report, and cleans up intermediates — the EXPLAIN ANALYZE of the
        simulated engine.
        """
        from repro.optimizers import make_optimizer

        strategy = make_optimizer(optimizer, **options)
        try:
            return strategy.execute(query, self).explain_analyze()
        finally:
            self.reset_intermediates()

    # -- introspection --------------------------------------------------------

    def dataset_rows(self, name: str) -> int:
        return self.datasets.get(name).row_count

    def require_loaded(self, *names: str) -> None:
        missing = [n for n in names if not self.datasets.has(n)]
        if missing:
            raise OptimizationError(f"datasets not loaded: {missing}")
