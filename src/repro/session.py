"""Session: the top-level public entry point of the library.

A session owns the simulated cluster, the dataset and statistics catalogs,
the UDF registry, and the executor. Typical use::

    from repro import PlannerSpec, Session
    session = Session()
    session.load("orders", orders_schema, rows)
    result = session.execute(query, PlannerSpec.of("dynamic"))
    print(result.seconds, result.plan_description)

Concurrent execution goes through the job scheduler: :meth:`Session.submit`
queues queries (with priorities) and :meth:`Session.run_all` drains them on
the shared simulated cluster clock. The blocking :meth:`Session.execute` is
the same path with a single-query schedule, so serial and concurrent
execution cannot drift apart.

Intermediates created by re-optimization points are registered into the
session catalogs; call :meth:`Session.reset_intermediates` between
experiment runs (the benchmark harness does this automatically).

A session may also be opened as a *tenant handle* against a long-lived
:class:`~repro.service.QueryService` (``Session(service=svc,
tenant="alice")``, or equivalently ``svc.session("alice")``): it then shares
the service's cluster, catalogs, executor, scheduler and persistent feedback
store, and every submission carries the tenant name for fair admission and
per-tenant observability. The API is identical either way.
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig, default_cluster
from repro.cluster.cost import CostParameters
from repro.common.errors import OptimizationError
from repro.common.types import Schema
from repro.core.policy import FeedbackLog
from repro.engine.executor import Executor
from repro.engine.metrics import ExecutionResult
from repro.engine.scheduler import JobScheduler, QueryHandle, SchedulerConfig
from repro.lang.ast import Query
from repro.lang.udf import UdfRegistry, default_registry
from repro.obs.report import ExplainReport
from repro.spec import PlannerSpec, resolve_planner
from repro.stats.catalog import StatisticsCatalog
from repro.storage.catalog import DatasetCatalog
from repro.storage.dataset import Dataset
from repro.storage.ingest import load_dataset


class Session:
    """One simulated BDMS instance: cluster + catalogs + executor."""

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        udfs: UdfRegistry | None = None,
        cost_parameters: CostParameters | None = None,
        scheduler_config: SchedulerConfig | None = None,
        job_slots: int | None = None,
        verify_plans: bool = True,
        engine: str | None = None,
        chunk_size: int | None = None,
        service=None,
        tenant: str = "",
    ) -> None:
        if service is not None:
            # Tenant handle: borrow the service's whole execution stack. The
            # other constructor arguments describe a private stack and are
            # meaningless here — reject them so a misconfigured tenant fails
            # loudly instead of silently ignoring its cluster/config.
            if any(
                argument is not None
                for argument in (
                    cluster,
                    udfs,
                    cost_parameters,
                    scheduler_config,
                    job_slots,
                    engine,
                    chunk_size,
                )
            ):
                raise OptimizationError(
                    "Session(service=...) shares the service's stack; "
                    "configure cluster/scheduler/engine on the QueryService"
                )
            self.service = service
            self.tenant = tenant
            self.cluster = service.cluster
            self.datasets = service.datasets
            self.statistics = service.statistics
            self.udfs = service.udfs
            self.executor = service.executor
            self.scheduler_config = service.scheduler_config
            self.scheduler = service.scheduler
            self.feedback = service.feedback
            return
        self.service = None
        self.tenant = tenant
        self.cluster = cluster or default_cluster()
        if job_slots is not None:
            from dataclasses import replace

            scheduler_config = replace(
                scheduler_config or SchedulerConfig(), job_slots=job_slots
            )
        self.datasets = DatasetCatalog()
        self.statistics = StatisticsCatalog()
        self.udfs = udfs or default_registry()
        self.executor = Executor(
            self.cluster,
            self.datasets,
            self.statistics,
            self.udfs,
            cost_parameters,
            verify_plans=verify_plans,
            engine=engine,
            chunk_size=chunk_size,
        )
        self.scheduler_config = scheduler_config
        self.scheduler = JobScheduler(self.executor, scheduler_config)
        #: cross-query misestimate/spill history; every execution that runs
        #: through a scheduler (execute/submit both do) is folded in, and
        #: adaptive ReplanPolicy instances derive their thresholds from it.
        self.feedback = FeedbackLog()

    # -- data management ----------------------------------------------------

    def load(
        self,
        name: str,
        schema: Schema,
        rows: list[dict],
        scale: float = 1.0,
        replace: bool = False,
    ) -> Dataset:
        """Ingest a base dataset, collecting ingestion-time statistics.

        ``scale`` declares how many modeled full-scale rows each stored row
        represents (DESIGN.md §2); the cost clock and broadcast decisions use
        the modeled volumes. ``replace=True`` re-ingests an existing name,
        bumping its catalog version (service caches invalidate on it). A
        tenant session routes through the service so persisted ingestion
        sketches are reused when the content matches.
        """
        if self.service is not None:
            return self.service.load(name, schema, rows, scale=scale, replace=replace)
        return load_dataset(
            name,
            schema,
            rows,
            self.cluster,
            self.datasets,
            self.statistics,
            scale=scale,
            replace=replace,
        )

    def create_index(self, dataset: str, field_name: str) -> None:
        """Build a secondary index (enables INL as a join choice)."""
        self.datasets.get(dataset).create_index(field_name)

    def reset_intermediates(self) -> None:
        """Drop all materialized intermediates and their statistics."""
        for name in self.datasets.drop_intermediates():
            self.statistics.remove(name)

    # -- query execution ------------------------------------------------------

    def execute(
        self,
        query: Query,
        planner: PlannerSpec | str | None = None,
        *,
        optimizer: str | None = None,
        **options,
    ) -> ExecutionResult:
        """Optimize + execute ``query`` with one of the registered strategies.

        ``planner`` is a :class:`~repro.spec.PlannerSpec` naming the strategy
        (``dynamic``, ``cost_based``, ``from_order`` — stock AsterixDB: joins
        follow the FROM clause — ``best_order``, ``worst_order``,
        ``pilot_run``, ``ingres``) plus validated options, e.g.
        ``PlannerSpec.of("dynamic", policy=ReplanPolicy.default())``; a bare
        strategy name is also accepted. The legacy ``optimizer="name"`` +
        loose keyword form was removed and raises
        :class:`~repro.common.errors.OptimizationError` with the equivalent
        spec spelled out.

        Runs as a single-query schedule on a private scheduler, so this is
        the same code path as concurrent submission — just with nobody to
        contend with (and therefore zero queue delay). Scan batching is
        disabled here even when the query's own pushdown scans share a
        dataset, and space sharing is forced off (``job_slots=1``): a solo
        run owns the full cluster and its accounting must match a
        pre-scheduler run exactly; merge discounts and partition slices
        belong to :meth:`submit`/:meth:`run_all`.
        """
        from dataclasses import replace

        spec = resolve_planner(planner, optimizer, options, entry="execute")
        config = replace(
            self.scheduler_config or SchedulerConfig(),
            batch_pushdown_scans=False,
            job_slots=1,
        )
        scheduler = JobScheduler(self.executor, config)
        handle = scheduler.submit(query, spec.make(), self)
        scheduler.run_all()
        return handle.result()

    def submit(
        self,
        query: Query,
        planner: PlannerSpec | str | None = None,
        priority: int = 0,
        label: str = "",
        *,
        optimizer: str | None = None,
        **options,
    ) -> QueryHandle:
        """Queue ``query`` on the session's shared scheduler.

        Nothing executes until :meth:`run_all`; the returned handle exposes
        status, the queueing delay charged under saturation, and (once run)
        the :class:`~repro.engine.metrics.ExecutionResult`. An invalid
        :class:`~repro.spec.PlannerSpec` (or removed legacy keyword) raises
        immediately, not at run time. On a tenant session the submission
        carries the tenant name and, when the service caches results, its
        cache key.
        """
        spec = resolve_planner(planner, optimizer, options, entry="submit")
        handle = self.scheduler.submit(
            query, spec.make(), self, priority=priority, label=label,
            tenant=self.tenant,
        )
        if self.service is not None:
            handle.cache_key = self.service.cache_key_for(query, spec)
        return handle

    def run_all(self) -> list[QueryHandle]:
        """Run every submitted query to completion on the shared clock."""
        return self.scheduler.run_all()

    def reset_scheduler(self) -> JobScheduler:
        """Fresh scheduler (clock at zero); the old timeline is discarded.

        On a tenant session this resets the *service's* shared scheduler —
        every tenant handle is repointed at the fresh one.
        """
        if self.service is not None:
            return self.service.reset_scheduler()
        self.scheduler = JobScheduler(self.executor, self.scheduler_config)
        return self.scheduler

    def optimizer_names(self) -> list[str]:
        from repro.optimizers import OPTIMIZERS

        return sorted(OPTIMIZERS)

    def explain(
        self,
        query: Query,
        planner: PlannerSpec | str | None = None,
        *,
        optimizer: str | None = None,
        **options,
    ) -> ExplainReport:
        """The plan the chosen strategy would (or did) use, without keeping state.

        Runtime dynamic optimization only *has* a final plan after running —
        that is the paper's point — so for the feedback-driven strategies
        this executes the query on the side and reports the captured tree;
        static strategies plan without executing side effects either way.
        Intermediates created along the way are cleaned up.

        Returns an :class:`~repro.obs.report.ExplainReport`;
        ``str(report)`` is the plan description, so callers that treated the
        return value as text keep working.
        """
        spec = resolve_planner(planner, optimizer, options, entry="explain")
        try:
            result = spec.make().execute(query, self)
            verifications = result.trace.verifications if result.trace else []
            return ExplainReport(
                strategy=spec.strategy,
                plan_description=result.plan_description,
                simulated_seconds=result.seconds,
                phases=tuple(result.phases),
                decisions=tuple(result.decisions),
                verified_jobs=len(verifications),
                diagnostics=tuple(
                    code
                    for record in verifications
                    for code in record.codes
                ),
            )
        finally:
            self.reset_intermediates()

    def explain_analyze(
        self,
        query: Query,
        planner: PlannerSpec | str | None = None,
        *,
        optimizer: str | None = None,
        **options,
    ) -> str:
        """Execute ``query`` and render its trace as a plan-with-actuals report.

        Every execution records a :class:`repro.obs.QueryTrace` (hierarchical
        phase/operator spans plus estimated-vs-actual cardinalities per
        re-optimization point); this convenience runs the query, renders the
        report, and cleans up intermediates — the EXPLAIN ANALYZE of the
        simulated engine.
        """
        spec = resolve_planner(planner, optimizer, options, entry="explain_analyze")
        try:
            return spec.make().execute(query, self).explain_analyze()
        finally:
            self.reset_intermediates()

    # -- introspection --------------------------------------------------------

    def dataset_rows(self, name: str) -> int:
        return self.datasets.get(name).row_count

    def require_loaded(self, *names: str) -> None:
        missing = [n for n in names if not self.datasets.has(n)]
        if missing:
            raise OptimizationError(f"datasets not loaded: {missing}")
