"""Figure 6: overhead of re-optimization points, online statistics, and
predicate push-down.

Left side (paper): three executions per query —

1. the full dynamic run;
2. "statistics upfront": the captured optimal plan executed as one
   pipelined job (all statistics known from the start, no re-optimization);
3. re-optimization points enabled but online statistics uncharged.

``re-optimization overhead = (3) - (2)`` and ``online statistics overhead =
(1) - (3)``, both reported relative to the full run — matching the paper's
~10% (SF 100) to ~15-20% (SF 1000) re-optimization and 1-5% statistics
figures.

Right side: the baseline is again the upfront plan with inline filters; the
"predicate push-down" variant runs the push-down materialization jobs first
and then executes the *same* plan with the filtered leaves replaced by their
materialized intermediates. The delta isolates the push-down materialization
cost (≤3% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.algebra.plan import JoinNode, LeafNode, PlanNode
from repro.bench.runner import Workbench, workbench_for_query
from repro.core.driver import DynamicOptimizer
from repro.core.predicate_pushdown import execute_pushdowns
from repro.engine.metrics import JobMetrics
from repro.optimizers.base import execute_tree


@dataclass(frozen=True)
class OverheadReport:
    """Figure 6 numbers for one (query, scale factor)."""

    query: str
    scale_factor: int
    full_seconds: float
    upfront_seconds: float
    no_online_stats_seconds: float
    pushdown_variant_seconds: float

    @property
    def reoptimization_fraction(self) -> float:
        """Re-optimization overhead relative to the full dynamic run."""
        return max(0.0, self.no_online_stats_seconds - self.upfront_seconds) / self.full_seconds

    @property
    def online_stats_fraction(self) -> float:
        """Online statistics overhead relative to the full dynamic run."""
        return max(0.0, self.full_seconds - self.no_online_stats_seconds) / self.full_seconds

    @property
    def pushdown_fraction(self) -> float:
        """Predicate push-down materialization overhead vs the baseline."""
        return (
            self.pushdown_variant_seconds - self.upfront_seconds
        ) / self.upfront_seconds


def _tree_with_materialized_filters(
    tree: PlanNode, intermediates: dict[str, str]
) -> PlanNode:
    """Replace filtered leaves by their push-down materializations."""
    if isinstance(tree, LeafNode):
        if tree.alias in intermediates:
            return LeafNode(
                alias=tree.alias,
                dataset=intermediates[tree.alias],
                predicates=(),
                is_intermediate=True,
            )
        return tree
    assert isinstance(tree, JoinNode)
    return dc_replace(
        tree,
        build=_tree_with_materialized_filters(tree.build, intermediates),
        probe=_tree_with_materialized_filters(tree.probe, intermediates),
    )


def _pushdown_variant_seconds(bench: Workbench, query, tree: PlanNode) -> float:
    """Push-down materialization + same plan over the materialized leaves."""
    session = bench.session
    metrics = JobMetrics()
    phases: list[str] = []
    working = session.statistics.copy()
    outcome = execute_pushdowns(query, session, working, metrics, phases)
    swapped = _tree_with_materialized_filters(tree, outcome.intermediates)
    result = execute_tree(swapped, outcome.query, session)
    return metrics.total_seconds + result.seconds


def overhead_report(query_label: str, scale_factor: int, seed: int = 42) -> OverheadReport:
    """All Figure 6 measurements for one query at one scale factor."""
    bench = workbench_for_query(query_label, scale_factor, seed)
    query = bench.query(query_label)
    session = bench.session
    try:
        dynamic = DynamicOptimizer()
        full = dynamic.execute(query, session)
        tree = dynamic.last_tree
        session.reset_intermediates()

        upfront = execute_tree(tree, query, session)
        session.reset_intermediates()

        no_stats = DynamicOptimizer(charge_online_stats=False).execute(query, session)
        session.reset_intermediates()

        pushdown_seconds = _pushdown_variant_seconds(bench, query, tree)
        return OverheadReport(
            query=query_label,
            scale_factor=scale_factor,
            full_seconds=full.seconds,
            upfront_seconds=upfront.seconds,
            no_online_stats_seconds=no_stats.seconds,
            pushdown_variant_seconds=pushdown_seconds,
        )
    finally:
        session.reset_intermediates()


def figure6(scale_factors=(100, 1000), seed: int = 42) -> list[OverheadReport]:
    """Every group of Figure 6 (both sides share these runs)."""
    from repro.bench.runner import QUERIES

    return [
        overhead_report(label, scale_factor, seed)
        for scale_factor in scale_factors
        for label in QUERIES
    ]


def format_reports(reports: list[OverheadReport]) -> str:
    lines = []
    for r in reports:
        lines.append(
            f"{r.query} @ SF {r.scale_factor}: total={r.full_seconds:9.1f}s"
            f"  re-opt={r.reoptimization_fraction * 100:5.1f}%"
            f"  online-stats={r.online_stats_fraction * 100:4.1f}%"
            f"  pushdown={r.pushdown_fraction * 100:+5.1f}%"
        )
    return "\n".join(lines)
