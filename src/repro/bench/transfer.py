"""Predicate-transfer experiment: when does pre-filtering pay?

``python -m repro.bench transfer`` measures the three-way contest the
predicate-transfer literature sets up against runtime re-optimization:

- ``dynamic`` — the paper's approach: plan-as-you-go with measured
  statistics, no pre-filtering beyond predicate push-down;
- ``predicate_transfer`` — pure pre-filtering: Bloom-filter forward and
  backward passes reduce every FROM entry, then one static bushy plan;
- ``dynamic+transfer`` — the composition: the transfer passes run as the
  dynamic driver's prelude (``PlannerSpec.of("dynamic",
  pre_filter="transfer")``), and the re-optimization loop runs over the
  reduced intermediates.

The sweep spans both regimes on purpose. Transfer pays its way in filter
builds, filter shipping and per-entry reduce-job launches — all charged to
the simulated clock — so it *loses* where the data is small (job startups
dominate: every SF-10 cell) or where the joins keep most rows anyway
(TPC-H Q9 at SF 100, where the lineitem keys nearly all survive). It *wins*
where transitive reduction bites before the first join: the SF-100 Q8 /
Q17 / J2 cells, where the dynamic baseline materializes intermediates that
transfer's reduced inputs never produce. The adversarial skew cell shows
the paper's own regime is not subsumed: under hot-key joins the blowup
happens *inside* the join, which no pre-filter can remove.

:func:`transfer_ok` pins that both regimes exist: at least one workload
where a transfer variant beats plain ``dynamic`` on simulated seconds, and
at least one where ``dynamic`` beats both transfer variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import run_query

#: variant name -> (strategy, planner options)
VARIANTS: dict[str, tuple[str, dict]] = {
    "dynamic": ("dynamic", {}),
    "predicate_transfer": ("predicate_transfer", {}),
    "dynamic+transfer": ("dynamic", {"pre_filter": "transfer"}),
}

#: the transfer variants measured against the plain dynamic baseline
TRANSFER_VARIANTS = ("predicate_transfer", "dynamic+transfer")

#: (query, scale factor, skew, correlation) — both regimes represented;
#: see the module docstring for why each cell lands where it does.
WORKLOADS: tuple[tuple[str, int, float, float], ...] = (
    ("Q8", 10, 0.0, 0.0),   # startup-dominated: transfer loses
    ("Q8", 100, 0.0, 0.0),  # transitive reduction bites: transfer wins
    ("Q17", 100, 0.0, 0.0),
    ("Q9", 100, 0.0, 0.0),  # keys mostly survive: filters are dead weight
    ("Q50", 100, 0.0, 0.0),
    ("J2", 100, 0.0, 0.0),
    ("J2", 10, 1.3, 0.9),   # adversarial: the blowup is inside the join
)

#: CI configuration: one winning and one losing cell of the same query
SMOKE_WORKLOADS: tuple[tuple[str, int, float, float], ...] = (
    ("Q8", 10, 0.0, 0.0),
    ("Q8", 100, 0.0, 0.0),
)


@dataclass(frozen=True)
class TransferCell:
    """One (workload, variant) measurement."""

    query: str
    scale_factor: int
    skew: float
    correlation: float
    variant: str
    seconds: float
    rows: int
    jobs: int


def sweep_cell(
    query: str,
    scale_factor: int,
    skew: float,
    correlation: float,
    variant: str,
    seed: int = 42,
    engine: str | None = None,
) -> TransferCell:
    """Run one variant against one workload cell."""
    strategy, options = VARIANTS[variant]
    result = run_query(
        query, scale_factor, strategy, seed=seed,
        skew=skew, correlation=correlation, engine=engine, **options,
    )
    return TransferCell(
        query=query,
        scale_factor=scale_factor,
        skew=skew,
        correlation=correlation,
        variant=variant,
        seconds=result.metrics.total_seconds,
        rows=len(result.rows),
        jobs=result.metrics.jobs,
    )


def run_transfer(
    workloads: tuple[tuple[str, int, float, float], ...] | None = None,
    variants: tuple[str, ...] | None = None,
    seed: int = 42,
    smoke: bool = False,
    engine: str | None = None,
) -> list[TransferCell]:
    """The sweep: every variant at every workload cell."""
    if workloads is None:
        workloads = SMOKE_WORKLOADS if smoke else WORKLOADS
    variants = variants or tuple(VARIANTS)
    return [
        sweep_cell(query, scale_factor, skew, correlation, variant, seed, engine)
        for query, scale_factor, skew, correlation in workloads
        for variant in variants
    ]


def _grouped(
    cells: list[TransferCell],
) -> dict[tuple[str, int, float, float], list[TransferCell]]:
    groups: dict[tuple[str, int, float, float], list[TransferCell]] = {}
    for cell in cells:
        key = (cell.query, cell.scale_factor, cell.skew, cell.correlation)
        groups.setdefault(key, []).append(cell)
    return groups


def transfer_ok(cells: list[TransferCell]) -> bool:
    """True when the sweep shows both regimes: some workload where a
    transfer variant beats plain ``dynamic`` on simulated seconds, and some
    workload where ``dynamic`` beats both transfer variants."""
    wins = losses = 0
    for group in _grouped(cells).values():
        seconds = {cell.variant: cell.seconds for cell in group}
        if "dynamic" not in seconds:
            continue
        transfer = [
            seconds[name] for name in TRANSFER_VARIANTS if name in seconds
        ]
        if not transfer:
            continue
        if min(transfer) < seconds["dynamic"]:
            wins += 1
        if all(value > seconds["dynamic"] for value in transfer):
            losses += 1
    return wins >= 1 and losses >= 1


def format_transfer(cells: list[TransferCell]) -> str:
    """Tabulate the sweep, one block per workload cell."""
    lines = []
    for (query, scale_factor, skew, correlation), group in sorted(
        _grouped(cells).items()
    ):
        knobs = (
            f" skew={skew:g} correlation={correlation:g}"
            if skew or correlation
            else ""
        )
        lines.append(f"{query} @ SF {scale_factor}{knobs} — pre-filtering contest")
        lines.append(
            f"  {'variant':20s} {'sim s':>10s} {'rows':>7s} {'jobs':>5s}"
        )
        baseline = next(
            (cell.seconds for cell in group if cell.variant == "dynamic"), None
        )
        for cell in sorted(group, key=lambda c: c.seconds):
            delta = ""
            if baseline is not None and cell.variant != "dynamic":
                sign = "-" if cell.seconds < baseline else "+"
                delta = f"  ({sign}{abs(cell.seconds - baseline):.1f}s vs dynamic)"
            lines.append(
                f"  {cell.variant:20s} {cell.seconds:10.1f} {cell.rows:7d}"
                f" {cell.jobs:5d}{delta}"
            )
    verdict = (
        "both regimes shown: transfer beats dynamic somewhere and loses to "
        "it somewhere"
        if transfer_ok(cells)
        else "REGIMES NOT SHOWN: the sweep lacks a transfer win or a "
        "transfer loss against plain dynamic"
    )
    lines.append(verdict)
    return "\n".join(lines)
