"""Table 1: average improvement of the dynamic approach per method.

The paper reports, for 100GB and 1000GB, the average (over the four queries)
of each method's execution time divided by the dynamic approach's:

    | Data Size | Cost-Based | Pilot-run | Ingres-like | Best-order | Worst-order |
    | 100       | 1.34x      | 1.28x     | 1.4x        | 0.88x      | 5.2x        |
    | 1000      | 1.27x      | 1.20x     | 1.27x       | 0.85x      | >10x        |
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.comparison import ComparisonCell, figure7

#: the paper's Table 1, for side-by-side reporting
PAPER_TABLE1 = {
    100: {
        "cost_based": 1.34,
        "pilot_run": 1.28,
        "ingres": 1.40,
        "best_order": 0.88,
        "worst_order": 5.2,
    },
    1000: {
        "cost_based": 1.27,
        "pilot_run": 1.20,
        "ingres": 1.27,
        "best_order": 0.85,
        "worst_order": 10.0,
    },
}


@dataclass(frozen=True)
class ImprovementRow:
    scale_factor: int
    ratios: dict  # optimizer -> average (method seconds / dynamic seconds)


def improvement_rows(
    cells: list[ComparisonCell] | None = None,
    scale_factors=(100, 1000),
    seed: int = 42,
) -> list[ImprovementRow]:
    """Compute Table 1 from Figure 7 cells (running them if not supplied)."""
    if cells is None:
        cells = figure7(scale_factors=scale_factors, seed=seed)
    by_group: dict[tuple[int, str], dict[str, float]] = {}
    for cell in cells:
        by_group.setdefault((cell.scale_factor, cell.query), {})[cell.optimizer] = (
            cell.seconds
        )
    rows = []
    for scale_factor in scale_factors:
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for (sf, _), timings in by_group.items():
            if sf != scale_factor or "dynamic" not in timings:
                continue
            base = timings["dynamic"]
            for optimizer, seconds in timings.items():
                if optimizer == "dynamic":
                    continue
                sums[optimizer] = sums.get(optimizer, 0.0) + seconds / base
                counts[optimizer] = counts.get(optimizer, 0) + 1
        ratios = {opt: sums[opt] / counts[opt] for opt in sums}
        rows.append(ImprovementRow(scale_factor, ratios))
    return rows


def format_rows(rows: list[ImprovementRow]) -> str:
    lines = [
        "Average improvement of the dynamic approach (method time / dynamic time)",
        f"{'SF':>5} | " + " | ".join(f"{o:>11}" for o in rows[0].ratios),
    ]
    for row in rows:
        lines.append(
            f"{row.scale_factor:>5} | "
            + " | ".join(f"{row.ratios[o]:>10.2f}x" for o in row.ratios)
        )
        paper = PAPER_TABLE1.get(row.scale_factor)
        if paper:
            lines.append(
                "paper | "
                + " | ".join(f"{paper.get(o, float('nan')):>10.2f}x" for o in row.ratios)
            )
    return "\n".join(lines)
