"""Multi-tenant service benchmark: tail latency under a skewed workload.

The throughput experiment measures one batch from one user; a long-lived
:class:`~repro.service.QueryService` serves *tenants* — many sessions
multiplexed onto one shared scheduler, with result/intermediate caching and
fair admission. This experiment drives that stack the way a production
endpoint sees traffic: a pool of parameterized star-join templates whose
popularity follows a Zipf law (a few hot queries, a long cold tail),
submitted by a crowd of tenants, all drained on the shared simulated clock.

Reported per run:

- **p50/p95/p99 tail latency** over every query's submission-to-completion
  time (``ScheduleInfo.latency_seconds``) — queueing delay included, which
  is the number a tenant actually experiences;
- **cache hit rate**: the fraction of queries answered from the result
  cache at admission (zero cluster work), plus the intermediate cache's
  replay counts — the payoff of skew;
- per-tenant fairness lines (count, mean and max latency per tenant).

Everything runs on the simulated clock, so the numbers are exactly
reproducible for a given seed; ``check_baseline`` exploits that to fail CI
when the recorded p99 drifts beyond tolerance (an accidental scheduling or
caching regression), not on noise.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass

# Host-side wall time for the run header only; every latency in the report
# is simulated.
from time import perf_counter

from repro.cluster.config import ClusterConfig
from repro.common import rng
from repro.common.types import DataType, Schema
from repro.lang.ast import Query
from repro.lang.builder import QueryBuilder
from repro.service import QueryService

#: default location of the recorded baseline (repo-relative, used by CI).
BASELINE_PATH = os.path.join("benchmarks", "service_baseline.json")

#: relative drift allowed on latency percentiles before CI fails.
LATENCY_TOLERANCE = 0.25
#: absolute drop allowed on the result-cache hit rate before CI fails.
HIT_RATE_TOLERANCE = 0.10


def _load_universe(service: QueryService, fact_rows: int, seed: int) -> None:
    """A star universe (fact + three dimensions) ingested service-wide."""
    gen = rng.derive(seed, "service", "fact")
    fact_schema = Schema.of(
        ("f_id", DataType.INT),
        ("f_a", DataType.INT),
        ("f_b", DataType.INT),
        ("f_c", DataType.INT),
        ("f_val", DataType.INT),
        primary_key=("f_id",),
    )
    service.load(
        "fact",
        fact_schema,
        [
            {
                "f_id": i,
                "f_a": gen.randrange(50),
                "f_b": gen.randrange(40),
                "f_c": gen.randrange(30),
                "f_val": gen.randrange(1000),
            }
            for i in range(fact_rows)
        ],
        scale=10_000.0,
    )
    for prefix, size, modulo in (("a", 50, 7), ("b", 40, 5), ("c", 30, 3)):
        service.load(
            f"d{prefix}", _dim_schema(prefix), _dim_rows(prefix, size, modulo)
        )


def _dim_schema(prefix: str) -> Schema:
    return Schema.of(
        (f"{prefix}_id", DataType.INT),
        (f"{prefix}_attr", DataType.INT),
        primary_key=(f"{prefix}_id",),
    )


def _dim_rows(prefix: str, size: int, modulo: int) -> list[dict]:
    return [
        {f"{prefix}_id": i, f"{prefix}_attr": i % modulo} for i in range(size)
    ]


def service_templates(count: int = 12) -> list[tuple[str, Query]]:
    """``count`` distinct star-join variants differing in their predicates.

    Template ``i`` filters a different ``da`` slice and rotates which extra
    dimension carries predicates, so the variants produce different
    cardinalities and plans — a repeated template is a genuine repeat (cache
    hit material), a different one is genuinely different work. Every
    filtered dimension carries either two simple predicates or a UDF, which
    is the paper's push-down candidate rule: the variants materialize
    filtered intermediates, and templates sharing a ``da`` slice
    (``i`` ≡ ``i+7`` mod 7) share the same cacheable push-down.
    """
    templates = []
    for i in range(count):
        builder = (
            QueryBuilder()
            .select("fact.f_val", "da.a_attr")
            .from_table("fact")
            .from_table("da")
            .from_table("db")
            .from_table("dc")
            .join("fact.f_a", "da.a_id")
            .join("fact.f_b", "db.b_id")
            .join("fact.f_c", "dc.c_id")
            .where_eq("da.a_attr", i % 7)
            .where_compare("da.a_attr", "<=", 6)
        )
        if i % 3 == 0:
            builder = builder.where_compare(
                "dc.c_attr", ">=", 0
            ).where_compare("dc.c_attr", "<=", 1 + i % 2)
        elif i % 3 == 1:
            builder = builder.where_udf("mymod10", "db.b_attr", "=", i % 5)
        else:
            builder = builder.where_compare(
                "db.b_attr", ">=", 1
            ).where_compare("db.b_attr", "<=", 1 + i % 3)
        templates.append((f"Q{i + 1}", builder.build()))
    return templates


def zipf_weights(count: int, exponent: float = 1.1) -> list[float]:
    """Unnormalized Zipf popularity: weight of rank ``r`` is ``1/r^s``."""
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    index = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


@dataclass(frozen=True)
class TenantLine:
    """One tenant's share of the workload and its observed latencies."""

    tenant: str
    queries: int
    cache_hits: int
    mean_latency: float
    max_latency: float


@dataclass(frozen=True)
class ServiceReport:
    """Tail latency + cache effectiveness of one skewed multi-tenant run."""

    tenants: int
    query_count: int
    template_count: int
    fact_rows: int
    makespan_seconds: float
    p50: float
    p95: float
    p99: float
    #: result-cache answers as a fraction of all completed queries.
    cache_hit_rate: float
    result_hits: int
    intermediate_hits: int
    intermediate_misses: int
    invalidations: int
    tenant_lines: list[TenantLine]
    #: tenant lanes present in the shared cluster timeline.
    timeline_tenants: list[str]
    #: invalidation probe: after the drain, ``da`` is re-ingested (version
    #: bump) and the hottest template resubmitted — it must *miss* the
    #: result cache (False here) or the invalidation path is broken.
    probe_result_cached: bool = False
    host_seconds: float = 0.0

    def baseline(self) -> dict:
        """The regression-checked subset, JSON-ready."""
        return {
            "query_count": self.query_count,
            "tenants": self.tenants,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "cache_hit_rate": self.cache_hit_rate,
            "makespan_seconds": self.makespan_seconds,
        }


def run_service(
    tenants: int = 8,
    query_count: int = 120,
    template_count: int = 12,
    fact_rows: int = 600,
    seed: int = 42,
    smoke: bool = False,
) -> ServiceReport:
    """Drive a query service with a Zipf-skewed multi-tenant workload.

    Every submission picks a template by Zipf popularity and a tenant (each
    tenant gets at least one query; the remainder is skewed too, so fair
    admission has something to push back on). All queries are submitted
    up-front and drained in one :meth:`~repro.service.QueryService.run_all`
    — admission-time result-cache hits happen exactly when a repeat arrives
    after its first instance finished, like a live endpoint. A final probe
    re-ingests ``da`` and resubmits the hottest template to exercise (and
    count) cache invalidation on ingest.
    """
    if smoke:
        query_count = max(100, min(query_count, 100))
        fact_rows = min(fact_rows, 300)
    started = perf_counter()  # det: allow(D001)
    cluster = ClusterConfig(
        nodes=2, cores_per_node=2, broadcast_budget_bytes=40e6
    )
    service = QueryService(cluster)
    _load_universe(service, fact_rows, seed)

    templates = service_templates(template_count)
    template_picker = rng.derive(seed, "service", "templates")
    tenant_picker = rng.derive(seed, "service", "tenants")
    template_weights = zipf_weights(len(templates))
    tenant_weights = zipf_weights(tenants, exponent=0.6)
    names = [f"tenant-{i}" for i in range(tenants)]

    handles = []
    for i in range(query_count):
        # every tenant opens the workload with one query; the rest is skewed
        tenant = (
            names[i]
            if i < tenants
            else tenant_picker.choices(names, weights=tenant_weights)[0]
        )
        label, query = template_picker.choices(
            templates, weights=template_weights
        )[0]
        handles.append(
            service.session(tenant).submit(query, "dynamic", label=label)
        )
    service.run_all()

    latencies = sorted(
        handle.schedule.latency_seconds for handle in handles
    )
    per_tenant: dict[str, list] = {name: [] for name in names}
    for handle in handles:
        per_tenant[handle.schedule.tenant].append(handle.schedule)
    tenant_lines = [
        TenantLine(
            tenant=name,
            queries=len(schedules),
            cache_hits=sum(1 for s in schedules if s.cache_hit),
            mean_latency=(
                sum(s.latency_seconds for s in schedules) / len(schedules)
                if schedules
                else 0.0
            ),
            max_latency=max((s.latency_seconds for s in schedules), default=0.0),
        )
        for name, schedules in per_tenant.items()
    ]
    makespan = service.scheduler.timeline.makespan_seconds
    timeline_tenants = service.scheduler.timeline.tenant_names()

    # Invalidation probe: re-ingesting a dimension bumps its catalog version,
    # which must evict every cached result/intermediate computed from it —
    # the resubmitted hot template has to run for real (cache miss).
    service.reset_scheduler()
    service.load("da", _dim_schema("a"), _dim_rows("a", 50, 7), replace=True)
    hot_label, hot_query = templates[0]
    probe = service.session(names[0]).submit(hot_query, "dynamic", label=hot_label)
    service.run_all()

    stats = service.cache.stats
    return ServiceReport(
        tenants=tenants,
        query_count=query_count,
        template_count=len(templates),
        fact_rows=fact_rows,
        makespan_seconds=makespan,
        p50=percentile(latencies, 0.50),
        p95=percentile(latencies, 0.95),
        p99=percentile(latencies, 0.99),
        cache_hit_rate=stats.result_hits / max(1, len(handles)),
        result_hits=stats.result_hits,
        intermediate_hits=stats.intermediate_hits,
        intermediate_misses=stats.intermediate_misses,
        invalidations=stats.invalidations,
        tenant_lines=tenant_lines,
        timeline_tenants=timeline_tenants,
        probe_result_cached=probe.schedule.cache_hit,
        host_seconds=perf_counter() - started,  # det: allow(D001)
    )


def format_service(report: ServiceReport) -> str:
    lines = [
        f"query service under skew: {report.query_count} queries, "
        f"{report.tenants} tenants, {report.template_count} Zipf templates "
        f"({report.fact_rows} fact rows, {report.host_seconds:.2f}s host time)",
        f"  makespan {report.makespan_seconds:.2f}s simulated; latency "
        f"p50 {report.p50:.2f}s  p95 {report.p95:.2f}s  p99 {report.p99:.2f}s",
        f"  result cache: {report.result_hits} hits "
        f"({report.cache_hit_rate:.0%} of queries); intermediate cache: "
        f"{report.intermediate_hits} replays / "
        f"{report.intermediate_misses} misses; "
        f"{report.invalidations} invalidations",
        f"  timeline lanes: {len(report.timeline_tenants)} tenants",
        "  re-ingest probe: da replaced -> hot template "
        + (
            "WRONGLY served from cache (invalidation broken!)"
            if report.probe_result_cached
            else "correctly re-ran (result cache invalidated)"
        ),
        "",
        f"  {'tenant':10s} {'queries':>8s} {'cached':>7s}"
        f" {'mean lat s':>11s} {'max lat s':>10s}",
    ]
    for line in report.tenant_lines:
        lines.append(
            f"  {line.tenant:10s} {line.queries:8d} {line.cache_hits:7d}"
            f" {line.mean_latency:11.2f} {line.max_latency:10.2f}"
        )
    return "\n".join(lines)


def write_baseline(report: ServiceReport, path: str = BASELINE_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(report.baseline(), fh, indent=1, sort_keys=True)
        fh.write("\n")


def check_baseline(
    report: ServiceReport, path: str = BASELINE_PATH
) -> list[str]:
    """Violations of the recorded baseline (empty list = within tolerance).

    Latency percentiles may drift ±``LATENCY_TOLERANCE`` relative; the
    cache hit rate may not drop more than ``HIT_RATE_TOLERANCE`` absolute.
    A missing baseline file is itself a violation — record one with
    ``--write-baseline``.
    """
    if not os.path.exists(path):
        return [f"no baseline recorded at {path} (run with --write-baseline)"]
    with open(path) as fh:
        baseline = json.load(fh)
    current = report.baseline()
    violations = []
    for key in ("p50", "p95", "p99", "makespan_seconds"):
        recorded = baseline.get(key, 0.0)
        observed = current[key]
        allowed = abs(recorded) * LATENCY_TOLERANCE
        if abs(observed - recorded) > allowed:
            violations.append(
                f"{key}: {observed:.2f}s vs recorded {recorded:.2f}s "
                f"(tolerance ±{LATENCY_TOLERANCE:.0%})"
            )
    recorded_rate = baseline.get("cache_hit_rate", 0.0)
    if current["cache_hit_rate"] < recorded_rate - HIT_RATE_TOLERANCE:
        violations.append(
            f"cache_hit_rate: {current['cache_hit_rate']:.0%} vs recorded "
            f"{recorded_rate:.0%} (tolerance -{HIT_RATE_TOLERANCE:.0%})"
        )
    for key in ("query_count", "tenants"):
        if baseline.get(key) != current[key]:
            violations.append(
                f"{key}: {current[key]} vs recorded {baseline.get(key)} "
                "(workload shape changed; re-record the baseline)"
            )
    return violations
