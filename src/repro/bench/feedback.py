"""The ``feedback`` experiment: fixed schedule vs feedback-driven re-planning.

This experiment is not from the paper — it evaluates the feedback extension
(DESIGN.md §8) on a purpose-built universe where the paper's *fixed* dynamic
schedule provably goes wrong, and shows the :class:`~repro.ReplanPolicy`
repairing it mid-run:

- **Skewed star** (``clicks``): the fact table's join key to the filtered
  ``users`` dimension is *correlated with the predicate* — the kept users are
  exactly the "hot" users owning 85% of the fact rows, so formula (1)'s
  uniformity assumption underestimates the first join by ~17x. The fixed
  schedule skips online sketches at that stage (``tables_after <= 3``), so
  the endgame ranks the remaining dimensions by the row-count fallback and
  picks the *expanding* badge join (5 duplicate badge rows per key) before
  the highly selective campaign join. The policy sees the 17x Q-error,
  pays one extra re-optimization job to re-sketch the intermediate, and the
  corrected distinct counts flip the endgame join order — finishing cheaper
  despite the refresh cost.
- **Uniform star** (``sales``): every estimate lands within a few percent,
  so a policy with ``early_fuse`` skips the redundant second
  re-optimization point and fuses the last three joins into the endgame job.
- **Adaptive thresholds**: the skewed query repeated on one session; the
  session's :class:`~repro.FeedbackLog` accumulates the observed Q-errors
  and an adaptive policy's trigger threshold converges from the static 4.0
  default to the measured tail of the workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import derive
from repro.common.types import DataType, Schema
from repro.core.policy import ReplanPolicy, RuntimeThresholds
from repro.lang.ast import Query
from repro.lang.builder import QueryBuilder
from repro.session import Session
from repro.spec import PlannerSpec

EVENTS = Schema.of(
    ("e_id", DataType.INT),
    ("e_user", DataType.INT),
    ("e_badge", DataType.INT),
    ("e_camp", DataType.INT),
    ("e_val", DataType.DOUBLE),
    primary_key=("e_id",),
)

USERS = Schema.of(
    ("u_id", DataType.INT),
    ("u_seg", DataType.INT),
    ("u_name", DataType.STRING),
    primary_key=("u_id",),
)

#: badge *awards*: b_key is deliberately non-unique (5 rows per key), so the
#: fact-to-badges join expands 5x — the trap the fixed endgame walks into.
BADGES = Schema.of(
    ("b_id", DataType.INT),
    ("b_key", DataType.INT),
    ("b_tier", DataType.INT),
    ("b_label", DataType.STRING),
    primary_key=("b_id",),
)

CAMPS = Schema.of(
    ("c_id", DataType.INT),
    ("c_kind", DataType.INT),
    ("c_name", DataType.STRING),
    primary_key=("c_id",),
)

SALES = Schema.of(
    ("s_id", DataType.INT),
    ("s_d1", DataType.INT),
    ("s_d2", DataType.INT),
    ("s_d3", DataType.INT),
    ("s_d4", DataType.INT),
    ("s_amt", DataType.DOUBLE),
    primary_key=("s_id",),
)


def _dim_schema(k: int) -> Schema:
    return Schema.of(
        (f"d{k}_id", DataType.INT),
        (f"d{k}_band", DataType.INT),
        (f"d{k}_name", DataType.STRING),
        primary_key=(f"d{k}_id",),
    )


DIMS = {k: _dim_schema(k) for k in (1, 2, 3, 4)}

#: kept users (u_seg = 0) — and the hot fact keys, by construction
HOT_USERS = 10
#: fraction of fact rows owned by the hot users
HOT_FRACTION = 0.85
#: badge rows per badge key: the join-expansion factor the fixed endgame
#: walks into. Must keep HOT_USERS * BADGE_DUP < CAMP_KEEP so the filtered
#: badge table still *looks* smaller than the filtered campaign table to the
#: blind (row-count fallback) endgame.
BADGE_DUP = 14
#: distinct badge keys overall
BADGE_KEYS = 60
#: campaign ids kept by the c_id range predicates
CAMP_KEEP = 150


def sizes(smoke: bool) -> dict[str, int]:
    """Stored row counts (and the fact scale) for one configuration."""
    if smoke:
        return {
            "events": 800,
            "users": 200,
            "badges": BADGE_KEYS * BADGE_DUP,
            "camps": 500,
            "sales": 600,
            "dim": 100,
            "scale": 2_500,
        }
    return {
        "events": 4_000,
        "users": 200,
        "badges": BADGE_KEYS * BADGE_DUP,
        "camps": 2_000,
        "sales": 2_400,
        "dim": 100,
        "scale": 25_000,
    }


def generate(smoke: bool = False, seed: int = 42) -> dict[str, list[dict]]:
    """Both universes: the skewed clickstream star and the uniform sales star."""
    n = sizes(smoke)
    rng = derive(seed, "feedback", "skew")
    hot_cut = int(n["events"] * HOT_FRACTION)
    events = []
    for i in range(n["events"]):
        if i < hot_cut:
            # hot rows: owned by the kept users, badge keys inside the kept
            # tier, campaigns uniform (so only the campaign join is selective)
            user = i % HOT_USERS
            badge = rng.randrange(HOT_USERS)
        else:
            user = rng.randrange(HOT_USERS, n["users"])
            badge = rng.randrange(HOT_USERS, BADGE_KEYS)
        events.append(
            {
                "e_id": i,
                "e_user": user,
                "e_badge": badge,
                "e_camp": rng.randrange(n["camps"]),
                "e_val": round(rng.uniform(0.0, 100.0), 2),
            }
        )
    users = [
        {"u_id": i, "u_seg": i // HOT_USERS, "u_name": f"user-{i:04d}"}
        for i in range(n["users"])
    ]
    badges = [
        {
            "b_id": i,
            "b_key": i // BADGE_DUP,
            "b_tier": (i // BADGE_DUP) // HOT_USERS,
            "b_label": f"badge-{i:04d}",
        }
        for i in range(n["badges"])
    ]
    camps = [
        {"c_id": i, "c_kind": i % 7, "c_name": f"camp-{i:04d}"}
        for i in range(n["camps"])
    ]

    rng = derive(seed, "feedback", "uniform")
    sales = [
        {
            "s_id": i,
            "s_d1": rng.randrange(n["dim"]),
            "s_d2": rng.randrange(n["dim"]),
            "s_d3": rng.randrange(n["dim"]),
            "s_d4": rng.randrange(n["dim"]),
            "s_amt": round(rng.uniform(1.0, 500.0), 2),
        }
        for i in range(n["sales"])
    ]
    tables = {
        "events": events,
        "users": users,
        "badges": badges,
        "camps": camps,
        "sales": sales,
    }
    for k in DIMS:
        tables[f"dim{k}"] = [
            {
                f"d{k}_id": i,
                f"d{k}_band": i // 10,
                f"d{k}_name": f"d{k}-{i:03d}",
            }
            for i in range(n["dim"])
        ]
    return tables


def load_universe(session: Session, smoke: bool = False, seed: int = 42) -> None:
    """Generate and ingest both universes; facts carry the modeled scale."""
    n = sizes(smoke)
    tables = generate(smoke, seed)
    schemas = {
        "events": EVENTS,
        "users": USERS,
        "badges": BADGES,
        "camps": CAMPS,
        "sales": SALES,
        **{f"dim{k}": DIMS[k] for k in DIMS},
    }
    for name, rows in tables.items():
        scale = n["scale"] if name in ("events", "sales") else 1
        session.load(name, schemas[name], rows, scale=scale)


def skew_query() -> Query:
    """The trap query: hot-key correlation breaks the stage-1 estimate."""
    return (
        QueryBuilder()
        .select("e.e_val")
        .from_table("events", "e")
        .from_table("users", "u")
        .from_table("badges", "b")
        .from_table("camps", "c")
        .join("e.e_user", "u.u_id")
        .join("e.e_badge", "b.b_key")
        .join("e.e_camp", "c.c_id")
        .where_compare("u.u_seg", ">=", 0)
        .where_compare("u.u_seg", "<=", 0)
        .where_compare("b.b_tier", ">=", 0)
        .where_compare("b.b_tier", "<=", 0)
        .where_compare("c.c_id", ">=", 0)
        .where_compare("c.c_id", "<=", CAMP_KEEP - 1)
        .build()
    )


def fuse_query() -> Query:
    """Uniform 5-table star: every estimate is tight, fusing is safe.

    Five tables give the loop two materialization points; the early-fuse
    action replaces the second with one fused endgame job."""
    builder = (
        QueryBuilder().select("s.s_amt").from_table("sales", "s")
    )
    for k in sorted(DIMS):
        builder = (
            builder.from_table(f"dim{k}", f"d{k}")
            .join(f"s.s_d{k}", f"d{k}.d{k}_id")
            .where_compare(f"d{k}.d{k}_band", ">=", 0)
            .where_compare(f"d{k}.d{k}_band", "<=", 4)
        )
    return builder.build()


# -- the experiment -----------------------------------------------------------


@dataclass(frozen=True)
class ModeRun:
    """One (query, policy-mode) execution."""

    mode: str
    seconds: float
    rows: int
    plan: str
    decisions: tuple


@dataclass(frozen=True)
class AdaptiveRun:
    """One repetition of the adaptive-threshold segment."""

    run: int
    thresholds: RuntimeThresholds
    seconds: float
    triggers: int


@dataclass(frozen=True)
class FeedbackReport:
    skew: tuple[ModeRun, ModeRun]  # (fixed, policy)
    fuse: tuple[ModeRun, ModeRun]  # (fixed, policy)
    adaptive: tuple[AdaptiveRun, ...]

    @property
    def skew_order_changed(self) -> bool:
        fixed, policy = self.skew
        return fixed.plan != policy.plan

    @property
    def skew_improvement(self) -> float:
        fixed, policy = self.skew
        return fixed.seconds - policy.seconds


def _run(session: Session, query: Query, spec: PlannerSpec, mode: str) -> ModeRun:
    try:
        result = session.execute(query, spec)
        return ModeRun(
            mode=mode,
            seconds=result.seconds,
            rows=len(result.rows),
            plan=result.plan_description,
            decisions=result.decisions,
        )
    finally:
        session.reset_intermediates()


def run_feedback(smoke: bool = False, seed: int = 42) -> FeedbackReport:
    """Run all three segments; fresh sessions so feedback never leaks."""
    fixed_spec = PlannerSpec.of("dynamic")
    policy_spec = PlannerSpec.of("dynamic", policy=ReplanPolicy.default())
    fuse_policy_spec = PlannerSpec.of(
        "dynamic", policy=ReplanPolicy(early_fuse=True, fuse_max_joins=3)
    )

    session = Session()
    load_universe(session, smoke, seed)
    skew = (
        _run(session, skew_query(), fixed_spec, "fixed"),
        _run(session, skew_query(), policy_spec, "policy"),
    )
    fuse = (
        _run(session, fuse_query(), fixed_spec, "fixed"),
        _run(session, fuse_query(), fuse_policy_spec, "policy"),
    )

    # Adaptive segment on its own session: the FeedbackLog starts empty and
    # is fed by the runs themselves.
    adaptive_session = Session()
    load_universe(adaptive_session, smoke, seed)
    policy = ReplanPolicy.adaptive_policy(min_history=4)
    adaptive_spec = PlannerSpec.of("dynamic", policy=policy)
    adaptive = []
    for run in range(1, 4):
        thresholds = policy.resolve(adaptive_session)
        outcome = _run(adaptive_session, skew_query(), adaptive_spec, "adaptive")
        adaptive.append(
            AdaptiveRun(
                run=run,
                thresholds=thresholds,
                seconds=outcome.seconds,
                triggers=sum(1 for d in outcome.decisions if d.action == "replan"),
            )
        )
    return FeedbackReport(skew=skew, fuse=fuse, adaptive=tuple(adaptive))


def format_feedback(report: FeedbackReport) -> str:
    lines = []

    def segment(title: str, runs: tuple[ModeRun, ModeRun]) -> None:
        lines.append(title)
        lines.append(f"  {'mode':8s} {'seconds':>9s} {'rows':>6s}  plan")
        for run in runs:
            lines.append(
                f"  {run.mode:8s} {run.seconds:9.2f} {run.rows:6d}  {run.plan}"
            )
        decisions = [d for run in runs for d in run.decisions]
        if decisions:
            lines.append("  policy decisions:")
            for decision in decisions:
                lines.append(f"    - {decision.describe()}")

    segment(
        "Skewed star (hot-key correlation; stage-1 estimate misses ~17x):",
        report.skew,
    )
    fixed, policy = report.skew
    lines.append(
        f"  join order changed mid-run: {report.skew_order_changed}; "
        f"policy saves {report.skew_improvement:.2f} simulated seconds"
    )
    lines.append("")
    segment("Uniform star (tight estimates; early fuse skips a stage):", report.fuse)
    lines.append("")
    lines.append("Adaptive thresholds (skewed query repeated on one session):")
    for run in report.adaptive:
        t = run.thresholds
        budget = "-" if t.broadcast_budget_bytes is None else f"{t.broadcast_budget_bytes:.0f}"
        lines.append(
            f"  run {run.run}: trigger={t.qerror_threshold:.2f}"
            f" stats_cutoff={t.stats_cutoff}"
            f" pushdown_min_preds={t.pushdown_min_predicates}"
            f" budget={budget}"
            f" -> {run.seconds:.2f}s, {run.triggers} trigger(s)"
        )
    return "\n".join(lines)
