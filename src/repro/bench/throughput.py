"""Multi-query throughput: the scheduler experiment.

The paper's experiments run one query at a time; a production cluster serves
many. This experiment submits a batch of parameterized TPC-H join queries —
every variant carries a multi-predicate filter on ``orders`` (and every
other variant one on ``lineitem`` too), so their push-down jobs scan the
same base datasets — and compares three regimes:

- **serial**: each query executed to completion before the next starts (the
  paper's regime; total time is the sum of solo runs);
- **batched**: all queries submitted to one :class:`JobScheduler` with
  ``job_slots=1``, which interleaves their re-optimization stages and merges
  same-dataset pushdown scans into shared jobs — still one cluster job at a
  time;
- **space-shared**: the same scheduler with ``job_slots > 1``: the cluster's
  partitions are split into slices and cluster jobs of different queries
  overlap on the shared clock, so the non-scalable part of every job
  (launch, broadcasts, result output) stops serializing the batch.

Per-query answers are identical in all modes; the win is cluster-level:
fewer jobs, merged scans, and a lower makespan, at the price of per-query
queueing delay, which the report also tabulates. Failed queries (none in
the stock batch, but injectable) keep their row in the table — flagged with
the error — instead of silently vanishing from the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

# Host-side wall time: the engine-mode comparison reports real time (the
# simulated seconds are byte-identical across engines by design, so host
# time is the only axis the vectorized engine can win on).
from time import perf_counter

from repro.bench.runner import workbench
from repro.engine import vector
from repro.engine.scheduler import JobScheduler, QueryHandle, SchedulerConfig
from repro.lang.ast import Query
from repro.lang.builder import QueryBuilder
from repro.optimizers import make_optimizer


def throughput_queries(count: int = 4) -> list[tuple[str, Query]]:
    """``count`` parameterized variants of an orders/customer/lineitem join.

    Variant ``i`` selects a shifted one-year order-date window (plus the
    finished-status predicate), making ``orders`` a push-down candidate in
    every variant; odd variants also filter ``lineitem`` on a quantity
    band, adding a second shareable scan.
    """
    variants = []
    for i in range(count):
        low = (i % 5) * 365
        builder = (
            QueryBuilder()
            .select("c.c_name", "o.o_totalprice", "l.l_extendedprice")
            .from_table("lineitem", "l")
            .from_table("orders", "o")
            .from_table("customer", "c")
            .join("l.l_orderkey", "o.o_orderkey")
            .join("o.o_custkey", "c.c_custkey")
            .where_between("o.o_orderdate", low, low + 364)
            .where_eq("o.o_orderstatus", "F")
        )
        if i % 2 == 1:
            builder = builder.where_between("l.l_quantity", 1, 25 + i)
        variants.append((f"T{i + 1}", builder.build()))
    return variants


@dataclass(frozen=True)
class QueryLine:
    """One query's outcome in one execution mode."""

    label: str
    rows: int
    seconds: float
    queue_delay_seconds: float
    #: set when the query failed ("ExceptionType: message"); its row stays
    #: in the table with the work it charged before dying.
    error: str | None = None


@dataclass(frozen=True)
class ThroughputReport:
    """Serial / batched / space-shared cluster accounting for one batch."""

    scale_factor: int
    serial_seconds: float
    serial_jobs: int
    #: batched mode: one scheduler, job_slots=1 (merged scans, serial jobs)
    concurrent_seconds: float
    concurrent_jobs: int
    scans_saved: int
    #: space-shared mode: job_slots partition-slice lanes
    job_slots: int
    spaceshared_seconds: float
    spaceshared_jobs: int
    spaceshared_scans_saved: int
    serial_lines: list[QueryLine]
    concurrent_lines: list[QueryLine]
    spaceshared_lines: list[QueryLine]
    timeline_render: str
    #: which execution engine ran the batch (rowwise / vectorized)
    engine: str = "rowwise"
    #: real (host) wall time for the whole three-mode run — the simulated
    #: seconds above are engine-independent; this number is not.
    host_seconds: float = 0.0

    @property
    def seconds_saved(self) -> float:
        return self.serial_seconds - self.concurrent_seconds

    @property
    def jobs_saved(self) -> int:
        return self.serial_jobs - self.concurrent_jobs

    @property
    def spaceshared_seconds_saved(self) -> float:
        return self.serial_seconds - self.spaceshared_seconds


def _lines_for(handles: list[QueryHandle]) -> list[QueryLine]:
    """One table row per handle; failed queries keep their row, flagged."""
    lines = []
    for handle in handles:
        schedule = handle.schedule
        if handle.failed:
            lines.append(
                QueryLine(
                    handle.label,
                    rows=0,
                    seconds=schedule.busy_seconds if schedule else 0.0,
                    queue_delay_seconds=(
                        schedule.queue_delay_seconds if schedule else 0.0
                    ),
                    error=schedule.error if schedule else repr(handle.error),
                )
            )
            continue
        result = handle.result()
        lines.append(
            QueryLine(
                handle.label,
                len(result.rows),
                result.seconds,
                result.schedule.queue_delay_seconds,
            )
        )
    return lines


def _check_rows(reference: list[QueryLine], lines: list[QueryLine], mode: str) -> None:
    for expected, actual in zip(reference, lines, strict=True):
        if actual.error is not None:
            continue
        if expected.rows != actual.rows:
            raise AssertionError(
                f"{expected.label}: {mode} run changed the answer "
                f"({expected.rows} rows serial, {actual.rows} {mode})"
            )


def run_throughput(
    scale_factor: int = 10,
    query_count: int = 4,
    max_concurrent: int = 4,
    seed: int = 42,
    job_slots: int = 2,
    engine: str | None = None,
) -> ThroughputReport:
    """Run the batch serially, batched, and space-shared on one session.

    ``engine`` picks the execution engine for the whole run (``None`` = the
    process default); answers and simulated seconds are identical either
    way, only the reported host time moves.
    """
    bench = workbench("tpch", scale_factor, seed)
    session = bench.session
    queries = throughput_queries(query_count)
    engine = vector.resolve_engine(engine)
    previous_engine = session.executor.engine
    session.executor.engine = engine
    started = perf_counter()  # det: allow(D001)
    try:
        report = _run_modes(
            session, queries, scale_factor, max_concurrent, job_slots
        )
    finally:
        session.executor.engine = previous_engine
    host_seconds = perf_counter() - started  # det: allow(D001)
    return replace(report, engine=engine, host_seconds=host_seconds)


def _run_modes(
    session, queries, scale_factor, max_concurrent, job_slots
) -> ThroughputReport:
    serial_lines = []
    serial_seconds = 0.0
    serial_jobs = 0
    try:
        for label, query in queries:
            result = session.execute(query)
            serial_lines.append(
                QueryLine(label, len(result.rows), result.seconds, 0.0)
            )
            serial_seconds += result.seconds
            serial_jobs += result.metrics.jobs
    finally:
        session.reset_intermediates()

    def scheduled_run(slots: int) -> tuple[JobScheduler, list[QueryLine]]:
        scheduler = JobScheduler(
            session.executor,
            SchedulerConfig(max_concurrent_queries=max_concurrent, job_slots=slots),
        )
        try:
            handles = [
                scheduler.submit(
                    query, make_optimizer("dynamic"), session, label=label
                )
                for label, query in queries
            ]
            scheduler.run_all()
            return scheduler, _lines_for(handles)
        finally:
            session.reset_intermediates()

    batched, concurrent_lines = scheduled_run(1)
    spaceshared, spaceshared_lines = scheduled_run(job_slots)

    _check_rows(serial_lines, concurrent_lines, "batched")
    _check_rows(serial_lines, spaceshared_lines, "space-shared")

    return ThroughputReport(
        scale_factor=scale_factor,
        serial_seconds=serial_seconds,
        serial_jobs=serial_jobs,
        concurrent_seconds=batched.timeline.makespan_seconds,
        concurrent_jobs=batched.cluster_jobs,
        scans_saved=batched.scans_saved,
        job_slots=job_slots,
        spaceshared_seconds=spaceshared.timeline.makespan_seconds,
        spaceshared_jobs=spaceshared.cluster_jobs,
        spaceshared_scans_saved=spaceshared.scans_saved,
        serial_lines=serial_lines,
        concurrent_lines=concurrent_lines,
        spaceshared_lines=spaceshared_lines,
        timeline_render=spaceshared.timeline.render(),
    )


@dataclass(frozen=True)
class EngineComparison:
    """The same batch on both engines: identical answers, different host time."""

    rowwise: ThroughputReport
    vectorized: ThroughputReport

    @property
    def speedup(self) -> float:
        if self.vectorized.host_seconds <= 0:
            return float("inf")
        return self.rowwise.host_seconds / self.vectorized.host_seconds


def compare_engines(
    scale_factor: int = 1000,
    query_count: int = 4,
    max_concurrent: int = 4,
    seed: int = 42,
    job_slots: int = 2,
) -> EngineComparison:
    """Run the throughput batch once per engine and cross-check accounting.

    The simulated accounting (makespans, job counts, per-query rows and
    seconds) must match exactly — anything else is an engine bug, reported
    here rather than averaged away.
    """
    rowwise = run_throughput(
        scale_factor, query_count, max_concurrent, seed, job_slots,
        engine=vector.ENGINE_ROWWISE,
    )
    vectorized = run_throughput(
        scale_factor, query_count, max_concurrent, seed, job_slots,
        engine=vector.ENGINE_VECTORIZED,
    )
    for field_name in (
        "serial_seconds",
        "serial_jobs",
        "concurrent_seconds",
        "concurrent_jobs",
        "scans_saved",
        "spaceshared_seconds",
        "spaceshared_jobs",
        "spaceshared_scans_saved",
        "serial_lines",
        "concurrent_lines",
        "spaceshared_lines",
        "timeline_render",
    ):
        if getattr(rowwise, field_name) != getattr(vectorized, field_name):
            raise AssertionError(
                f"engines disagree on simulated accounting: {field_name}"
            )
    return EngineComparison(rowwise, vectorized)


def format_engine_comparison(comparison: EngineComparison) -> str:
    lines = [
        "engine comparison (same batch, identical simulated accounting):",
        f"  {'engine':12s} {'host s':>8s}",
        f"  {'rowwise':12s} {comparison.rowwise.host_seconds:8.2f}",
        f"  {'vectorized':12s} {comparison.vectorized.host_seconds:8.2f}",
        f"  vectorized speedup: {comparison.speedup:.1f}x host time",
    ]
    return "\n".join(lines)


def _query_table(lines: list[QueryLine]) -> list[str]:
    rows = [f"  {'query':6s} {'rows':>6s} {'own s':>10s} {'queue-delay s':>14s}"]
    for line in lines:
        row = (
            f"  {line.label:6s} {line.rows:6d} {line.seconds:10.2f}"
            f" {line.queue_delay_seconds:14.2f}"
        )
        if line.error is not None:
            row += f"  FAILED: {line.error}"
        rows.append(row)
    return rows


def format_throughput(report: ThroughputReport) -> str:
    """Render the three-mode comparison plus the space-shared timeline."""
    spaceshared_label = f"sliced ×{report.job_slots}"
    lines = [
        f"multi-query throughput @ SF {report.scale_factor} "
        f"({len(report.serial_lines)} concurrent TPC-H variants, "
        f"{report.engine} engine, {report.host_seconds:.2f}s host time)",
        f"  {'mode':12s} {'makespan s':>10s} {'jobs':>6s} {'scans saved':>12s}",
        f"  {'serial':12s} {report.serial_seconds:10.2f} {report.serial_jobs:6d}"
        f" {0:12d}",
        f"  {'concurrent':12s} {report.concurrent_seconds:10.2f}"
        f" {report.concurrent_jobs:6d} {report.scans_saved:12d}",
        f"  {spaceshared_label:12s} {report.spaceshared_seconds:10.2f}"
        f" {report.spaceshared_jobs:6d} {report.spaceshared_scans_saved:12d}",
        f"  batching saved {report.seconds_saved:.2f} simulated seconds and"
        f" {report.jobs_saved} cluster jobs over serial;"
        f" space sharing ({report.job_slots} slots) saved"
        f" {report.spaceshared_seconds_saved:.2f} s",
        "",
        f"  per-query, space-shared ({report.job_slots} partition-slice lanes):",
    ]
    lines.extend(_query_table(report.spaceshared_lines))
    lines.append("")
    lines.append("  shared cluster timeline (space-shared mode):")
    for row in report.timeline_render.splitlines():
        lines.append(f"  {row}")
    return "\n".join(lines)
