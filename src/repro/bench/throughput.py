"""Multi-query throughput: the scheduler experiment.

The paper's experiments run one query at a time; a production cluster serves
many. This experiment submits a batch of parameterized TPC-H join queries —
every variant carries a multi-predicate filter on ``orders`` (and every
other variant one on ``lineitem`` too), so their push-down jobs scan the
same base datasets — and compares:

- **serial**: each query executed to completion before the next starts (the
  paper's regime; total time is the sum of solo runs);
- **concurrent**: all queries submitted to one :class:`JobScheduler`, which
  interleaves their re-optimization stages and merges same-dataset pushdown
  scans into shared jobs.

Per-query answers are identical in both modes; the win is cluster-level:
fewer jobs and lower total simulated seconds, at the price of per-query
queueing delay, which the report also tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.scheduler import JobScheduler, SchedulerConfig
from repro.lang.ast import Query
from repro.lang.builder import QueryBuilder
from repro.optimizers import make_optimizer

from repro.bench.runner import workbench


def throughput_queries(count: int = 4) -> list[tuple[str, Query]]:
    """``count`` parameterized variants of an orders/customer/lineitem join.

    Variant ``i`` selects a shifted one-year order-date window (plus the
    finished-status predicate), making ``orders`` a push-down candidate in
    every variant; odd variants also filter ``lineitem`` on a quantity
    band, adding a second shareable scan.
    """
    variants = []
    for i in range(count):
        low = (i % 5) * 365
        builder = (
            QueryBuilder()
            .select("c.c_name", "o.o_totalprice", "l.l_extendedprice")
            .from_table("lineitem", "l")
            .from_table("orders", "o")
            .from_table("customer", "c")
            .join("l.l_orderkey", "o.o_orderkey")
            .join("o.o_custkey", "c.c_custkey")
            .where_between("o.o_orderdate", low, low + 364)
            .where_eq("o.o_orderstatus", "F")
        )
        if i % 2 == 1:
            builder = builder.where_between("l.l_quantity", 1, 25 + i)
        variants.append((f"T{i + 1}", builder.build()))
    return variants


@dataclass(frozen=True)
class QueryLine:
    """One query's outcome in one execution mode."""

    label: str
    rows: int
    seconds: float
    queue_delay_seconds: float


@dataclass(frozen=True)
class ThroughputReport:
    """Serial-vs-concurrent cluster accounting for one query batch."""

    scale_factor: int
    serial_seconds: float
    serial_jobs: int
    concurrent_seconds: float
    concurrent_jobs: int
    scans_saved: int
    serial_lines: list[QueryLine]
    concurrent_lines: list[QueryLine]
    timeline_render: str

    @property
    def seconds_saved(self) -> float:
        return self.serial_seconds - self.concurrent_seconds

    @property
    def jobs_saved(self) -> int:
        return self.serial_jobs - self.concurrent_jobs


def run_throughput(
    scale_factor: int = 10,
    query_count: int = 4,
    max_concurrent: int = 4,
    seed: int = 42,
) -> ThroughputReport:
    """Run the batch serially and concurrently on the same loaded session."""
    bench = workbench("tpch", scale_factor, seed)
    session = bench.session
    queries = throughput_queries(query_count)

    serial_lines = []
    serial_seconds = 0.0
    serial_jobs = 0
    try:
        for label, query in queries:
            result = session.execute(query)
            serial_lines.append(
                QueryLine(label, len(result.rows), result.seconds, 0.0)
            )
            serial_seconds += result.seconds
            serial_jobs += result.metrics.jobs
    finally:
        session.reset_intermediates()

    scheduler = JobScheduler(
        session.executor, SchedulerConfig(max_concurrent_queries=max_concurrent)
    )
    try:
        handles = [
            scheduler.submit(query, make_optimizer("dynamic"), session, label=label)
            for label, query in queries
        ]
        scheduler.run_all()
        concurrent_lines = []
        for handle in handles:
            result = handle.result()
            concurrent_lines.append(
                QueryLine(
                    handle.label,
                    len(result.rows),
                    result.seconds,
                    result.schedule.queue_delay_seconds,
                )
            )
    finally:
        session.reset_intermediates()

    for serial, concurrent in zip(serial_lines, concurrent_lines):
        if serial.rows != concurrent.rows:
            raise AssertionError(
                f"{serial.label}: concurrent run changed the answer "
                f"({serial.rows} rows serial, {concurrent.rows} concurrent)"
            )

    return ThroughputReport(
        scale_factor=scale_factor,
        serial_seconds=serial_seconds,
        serial_jobs=serial_jobs,
        concurrent_seconds=scheduler.timeline.makespan_seconds,
        concurrent_jobs=scheduler.cluster_jobs,
        scans_saved=scheduler.scans_saved,
        serial_lines=serial_lines,
        concurrent_lines=concurrent_lines,
        timeline_render=scheduler.timeline.render(),
    )


def format_throughput(report: ThroughputReport) -> str:
    """Render the serial-vs-concurrent comparison plus the shared timeline."""
    lines = [
        f"multi-query throughput @ SF {report.scale_factor} "
        f"({len(report.serial_lines)} concurrent TPC-H variants)",
        f"  {'mode':12s} {'cluster s':>10s} {'jobs':>6s} {'scans saved':>12s}",
        f"  {'serial':12s} {report.serial_seconds:10.2f} {report.serial_jobs:6d}"
        f" {0:12d}",
        f"  {'concurrent':12s} {report.concurrent_seconds:10.2f}"
        f" {report.concurrent_jobs:6d} {report.scans_saved:12d}",
        f"  saved: {report.seconds_saved:.2f} simulated seconds,"
        f" {report.jobs_saved} cluster jobs",
        "",
        f"  {'query':6s} {'rows':>6s} {'own s':>10s} {'queue-delay s':>14s}",
    ]
    for line in report.concurrent_lines:
        lines.append(
            f"  {line.label:6s} {line.rows:6d} {line.seconds:10.2f}"
            f" {line.queue_delay_seconds:14.2f}"
        )
    lines.append("")
    lines.append("  shared cluster timeline (concurrent mode):")
    for row in report.timeline_render.splitlines():
        lines.append(f"  {row}")
    return "\n".join(lines)
