"""Adversarial skew sweep: every strategy against the knobbed JOB universe.

``python -m repro.bench skew`` sweeps all registered strategies over a grid
of the two :class:`~repro.workloads.WorkloadSpec` knobs — Zipf ``skew`` on
the fact-table foreign keys and filter/hot-key ``correlation`` — and
tabulates simulated execution time and estimate accuracy (Q-error) per
cell. The stock cell (0, 0) is the estimator-friendly regime where every
strategy lands close; as the knobs rise, the independence and uniformity
assumptions behind ingestion-time statistics break and the strategies
split into two populations:

- **static** planners (``cost_based``, ``from_order``, ``worst_order``,
  ``greedy_static``) commit to a join order from pre-computed estimates
  and cannot recover when the hot keys concentrate the joins;
- **adaptive** planners — ``dynamic`` (runtime re-optimization) and
  ``sketch_online`` (post-filter sketches measured during the
  pre-filtering scans) — observe the actual filtered universe before
  ordering the joins.

``best_order`` sits outside both sets: it replays the plan an *uncharged*
scout run of the dynamic strategy found, so it is an oracle bound, not an
estimator. ``pilot_run``/``ingres`` adapt partially (sampling, stepwise
decomposition) and are reported but not part of the acceptance check.

:func:`skew_ok` encodes the experiment's acceptance condition: at least
one adversarial cell must show both adaptive planners beating **every**
static strategy on simulated time while ``cost_based``'s worst Q-error
exceeds the feedback policy's replan trigger — i.e. the regime where the
paper's dynamic approach is load-bearing actually exists in the harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import run_query
from repro.core.policy import RuntimeThresholds
from repro.obs.report import qerror_stats
from repro.optimizers import available_strategies

#: the sweep's query: J2 (the 5-table chain over cast_info) keeps result
#: sizes bounded as skew rises while the Zipf head still dominates every
#: join input; J1/J3's star shape explodes multiplicatively instead.
SKEW_QUERY = "J2"
SKEW_SCALE_FACTOR = 10

#: the full grid: Zipf exponents x hot-key correlation probabilities
SKEWS = (0.0, 0.7, 1.1, 1.3)
CORRELATIONS = (0.0, 0.9)
#: CI configuration: the stock cell plus one deep-adversarial cell
SMOKE_CELLS = ((0.0, 0.0), (1.3, 0.9))

#: strategies that commit to a join order from estimator statistics
STATIC_OPTIMIZERS = ("cost_based", "from_order", "worst_order", "greedy_static")
#: strategies that measure the filtered data before (or while) ordering joins
ADAPTIVE_OPTIMIZERS = ("dynamic", "sketch_online")

#: the feedback policy's bad-miss threshold — a static plan whose worst
#: Q-error exceeds it would have triggered a replan under the dynamic driver
REPLAN_TRIGGER = RuntimeThresholds().qerror_threshold


@dataclass(frozen=True)
class SkewCell:
    """One (skew, correlation, strategy) measurement."""

    query: str
    scale_factor: int
    skew: float
    correlation: float
    optimizer: str
    seconds: float
    rows: int
    final_qerror: float | None
    worst_qerror: float | None


def sweep_cell(
    skew: float,
    correlation: float,
    optimizer: str,
    query: str = SKEW_QUERY,
    scale_factor: int = SKEW_SCALE_FACTOR,
    seed: int = 42,
    engine: str | None = None,
) -> SkewCell:
    """Run one strategy against one knob setting of the universe."""
    result = run_query(
        query, scale_factor, optimizer, seed=seed,
        skew=skew, correlation=correlation, engine=engine,
    )
    stats = qerror_stats(result.trace)
    return SkewCell(
        query=query,
        scale_factor=scale_factor,
        skew=skew,
        correlation=correlation,
        optimizer=optimizer,
        seconds=result.metrics.total_seconds,
        rows=len(result.rows),
        final_qerror=stats["final"],
        worst_qerror=stats["worst"],
    )


def run_skew(
    cells: tuple[tuple[float, float], ...] | None = None,
    optimizers: tuple[str, ...] | None = None,
    query: str = SKEW_QUERY,
    scale_factor: int = SKEW_SCALE_FACTOR,
    seed: int = 42,
    smoke: bool = False,
    engine: str | None = None,
) -> list[SkewCell]:
    """The sweep: every strategy at every grid cell, registry-enumerated."""
    if cells is None:
        cells = (
            SMOKE_CELLS
            if smoke
            else tuple((s, c) for s in SKEWS for c in CORRELATIONS)
        )
    optimizers = optimizers or available_strategies()
    return [
        sweep_cell(skew, correlation, optimizer, query, scale_factor, seed, engine)
        for skew, correlation in cells
        for optimizer in optimizers
    ]


def _grouped(cells: list[SkewCell]) -> dict[tuple[float, float], list[SkewCell]]:
    groups: dict[tuple[float, float], list[SkewCell]] = {}
    for cell in cells:
        groups.setdefault((cell.skew, cell.correlation), []).append(cell)
    return groups


def skew_ok(cells: list[SkewCell]) -> bool:
    """True when some adversarial cell shows the separation the paper needs:
    both adaptive planners beat every static strategy on simulated time and
    ``cost_based``'s worst Q-error exceeds the replan trigger."""
    for (skew, correlation), group in _grouped(cells).items():
        if skew <= 0 or correlation <= 0:
            continue
        seconds = {cell.optimizer: cell.seconds for cell in group}
        required = set(ADAPTIVE_OPTIMIZERS) | set(STATIC_OPTIMIZERS)
        if not required <= set(seconds):
            continue
        static_floor = min(seconds[name] for name in STATIC_OPTIMIZERS)
        if not all(seconds[name] < static_floor for name in ADAPTIVE_OPTIMIZERS):
            continue
        cost = next(c for c in group if c.optimizer == "cost_based")
        if cost.worst_qerror is not None and cost.worst_qerror > REPLAN_TRIGGER:
            return True
    return False


def format_skew(cells: list[SkewCell]) -> str:
    """Tabulate the grid, one block per (skew, correlation) cell."""

    def fmt(value: float | None) -> str:
        if value is None:
            return "-"
        if value == float("inf"):
            return "inf"
        return f"{value:.2f}"

    lines = []
    for (skew, correlation), group in sorted(_grouped(cells).items()):
        first = group[0]
        lines.append(
            f"{first.query} @ SF {first.scale_factor} — "
            f"skew={skew:g} correlation={correlation:g}"
        )
        lines.append(
            f"  {'optimizer':14s} {'sim s':>9s} {'rows':>7s}"
            f" {'final-q':>8s} {'worst-q':>8s}"
        )
        for cell in sorted(group, key=lambda c: c.seconds):
            tag = (
                " [adaptive]" if cell.optimizer in ADAPTIVE_OPTIMIZERS
                else " [static]" if cell.optimizer in STATIC_OPTIMIZERS
                else ""
            )
            lines.append(
                f"  {cell.optimizer:14s} {cell.seconds:9.1f} {cell.rows:7d}"
                f" {fmt(cell.final_qerror):>8s} {fmt(cell.worst_qerror):>8s}"
                f"{tag}"
            )
    verdict = (
        "adaptive planners beat every static strategy in an adversarial cell "
        f"with cost_based worst Q-error > {REPLAN_TRIGGER:g} (replan trigger)"
        if skew_ok(cells)
        else "SEPARATION NOT SHOWN: no adversarial cell met the acceptance "
        "condition"
    )
    lines.append(verdict)
    return "\n".join(lines)
