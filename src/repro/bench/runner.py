"""Shared experiment infrastructure for the benchmark harness.

Sessions are expensive to build (data generation + ingestion-time sketches),
so they are cached per (workload, scale factor) and shared across
experiments; every run resets materialized intermediates afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.metrics import ExecutionResult
from repro.lang.ast import Query
from repro.session import Session
from repro.spec import PlannerSpec
from repro.workloads import tpcds, tpch

#: the paper's evaluation queries: label -> (workload module, query factory)
QUERIES = {
    "Q17": ("tpcds", tpcds.query_17),
    "Q50": ("tpcds", tpcds.query_50),
    "Q8": ("tpch", tpch.query_8),
    "Q9": ("tpch", tpch.query_9),
}

SCALE_FACTORS = (10, 100, 1000)
#: comparison order used in Figure 7 / Figure 8 outputs
COMPARISON_OPTIMIZERS = (
    "dynamic",
    "cost_based",
    "best_order",
    "worst_order",
    "pilot_run",
    "ingres",
)
#: strategies tabulated in the estimate-accuracy (Q-error) report — the
#: Figure 7 set plus stock AsterixDB's FROM-order execution
QERROR_OPTIMIZERS = COMPARISON_OPTIMIZERS + ("from_order",)

_WORKLOADS = {"tpch": tpch, "tpcds": tpcds}


@dataclass
class Workbench:
    """One loaded workload instance."""

    workload: str
    scale_factor: int
    session: Session
    indexes_created: bool = False
    _query_cache: dict = field(default_factory=dict)

    def query(self, label: str) -> Query:
        if label not in self._query_cache:
            workload, factory = QUERIES[label]
            if workload != self.workload:
                raise KeyError(
                    f"{label} belongs to {workload!r}, not {self.workload!r}"
                )
            self._query_cache[label] = factory()
        return self._query_cache[label]

    def ensure_indexes(self) -> None:
        """Create the Figure-8 secondary indexes (idempotent)."""
        if not self.indexes_created:
            _WORKLOADS[self.workload].create_secondary_indexes(self.session)
            self.indexes_created = True


_CACHE: dict[tuple[str, int, int], Workbench] = {}


def workbench(workload: str, scale_factor: int, seed: int = 42) -> Workbench:
    """Cached session loaded with one workload at one scale factor."""
    key = (workload, scale_factor, seed)
    if key not in _CACHE:
        session = Session()
        _WORKLOADS[workload].load_into(session, scale_factor, seed)
        _CACHE[key] = Workbench(workload, scale_factor, session)
    return _CACHE[key]


def workbench_for_query(label: str, scale_factor: int, seed: int = 42) -> Workbench:
    return workbench(QUERIES[label][0], scale_factor, seed)


def clear_cache() -> None:
    _CACHE.clear()


def run_query(
    label: str,
    scale_factor: int,
    optimizer: str,
    inl_enabled: bool = False,
    seed: int = 42,
    **options,
) -> ExecutionResult:
    """Execute one evaluation query under one strategy; cleans up after."""
    bench = workbench_for_query(label, scale_factor, seed)
    if inl_enabled:
        bench.ensure_indexes()
        options["inl_enabled"] = True
    query = bench.query(label)
    try:
        return bench.session.execute(query, PlannerSpec.of(optimizer, **options))
    finally:
        bench.session.reset_intermediates()


# -- estimate accuracy ---------------------------------------------------------


@dataclass(frozen=True)
class QErrorRow:
    """Per-(query, scale factor, optimizer) estimate-accuracy summary."""

    query: str
    scale_factor: int
    optimizer: str
    records: int
    final: float | None
    worst: float | None
    mean: float | None


def qerror_rows(
    scale_factors=(10,),
    queries: tuple[str, ...] | None = None,
    optimizers: tuple[str, ...] = QERROR_OPTIMIZERS,
    seed: int = 42,
) -> list[QErrorRow]:
    """Collect the paper's headline observability signal: how far each
    strategy's cardinality estimates land from the measured actuals."""
    from repro.obs.report import qerror_stats

    rows = []
    for scale_factor in scale_factors:
        for label in queries or tuple(QUERIES):
            for optimizer in optimizers:
                result = run_query(label, scale_factor, optimizer, seed=seed)
                stats = qerror_stats(result.trace)
                rows.append(
                    QErrorRow(
                        query=label,
                        scale_factor=scale_factor,
                        optimizer=optimizer,
                        records=stats["records"],
                        final=stats["final"],
                        worst=stats["worst"],
                        mean=stats["mean"],
                    )
                )
    return rows


def format_qerror(rows: list[QErrorRow]) -> str:
    """Render Q-error summaries grouped like the Figure 7 bar groups."""

    def fmt(value: float | None) -> str:
        if value is None:
            return "-"
        if value == float("inf"):
            return "inf"
        return f"{value:.2f}"

    lines = []
    groups: dict[tuple[int, str], list[QErrorRow]] = {}
    for row in rows:
        groups.setdefault((row.scale_factor, row.query), []).append(row)
    for (scale_factor, query), group in sorted(groups.items()):
        lines.append(f"{query} @ SF {scale_factor} — estimate accuracy (Q-error)")
        lines.append(
            f"  {'optimizer':12s} {'points':>6s} {'final':>8s}"
            f" {'worst':>8s} {'mean':>8s}"
        )
        for row in group:
            lines.append(
                f"  {row.optimizer:12s} {row.records:6d} {fmt(row.final):>8s}"
                f" {fmt(row.worst):>8s} {fmt(row.mean):>8s}"
            )
    return "\n".join(lines)
