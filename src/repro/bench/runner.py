"""Shared experiment infrastructure for the benchmark harness.

Sessions are expensive to build (data generation + ingestion-time sketches),
so they are cached per :class:`~repro.workloads.WorkloadSpec` — workload,
scale factor, seed and the skew/correlation knobs — and shared across
experiments; every run resets materialized intermediates afterwards.

Both registries this module sweeps from are external: query labels come
from the workload registry (:func:`repro.workloads.get_workload`) and
strategy sets derive from :func:`repro.optimizers.available_strategies`,
so registering a new workload or planner enrolls it in the benches without
touching this file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.metrics import ExecutionResult
from repro.engine.vector import resolve_engine
from repro.lang.ast import Query
from repro.optimizers import available_strategies
from repro.session import Session
from repro.spec import PlannerSpec
from repro.workloads import WorkloadSpec, get_workload

#: workloads whose suites form the paper's evaluation set, in Figure 6-8
#: presentation order (TPC-DS queries first, as in the paper's figures)
_PAPER_WORKLOADS = ("tpcds", "tpch")

#: the paper's evaluation queries: label -> workload name
QUERIES = {
    label: name
    for name in _PAPER_WORKLOADS
    for label in get_workload(name, 10).queries
}
#: the JOB-style suite: swept by verify/equivalence/skew, not Figures 6-8
JOB_QUERIES = {label: "job" for label in get_workload("job", 10).queries}
#: every benchmarked query: the paper's four plus the JOB suite
SWEEP_QUERIES = {**QUERIES, **JOB_QUERIES}

SCALE_FACTORS = (10, 100, 1000)

#: strategies kept out of the Figure 7/8 comparison: ``from_order`` is the
#: stock-AsterixDB baseline (tabulated in the Q-error report instead),
#: ``greedy_static`` is a planner ablation, ``sketch_online`` is swept
#: by the skew experiment where its sketches have something to measure, and
#: ``predicate_transfer`` has its own experiment (``bench transfer``).
_NON_COMPARISON = frozenset(
    {"from_order", "greedy_static", "sketch_online", "predicate_transfer"}
)
#: comparison order used in Figure 7 / Figure 8 outputs — registry
#: (paper-presentation) order minus the exclusions above
COMPARISON_OPTIMIZERS = tuple(
    name for name in available_strategies() if name not in _NON_COMPARISON
)
#: strategies tabulated in the estimate-accuracy (Q-error) report — the
#: Figure 7 set plus stock AsterixDB's FROM-order execution and the
#: sketch-based planner (whose estimates are its whole value proposition)
QERROR_OPTIMIZERS = COMPARISON_OPTIMIZERS + ("from_order", "sketch_online")


@dataclass
class Workbench:
    """One loaded workload universe (stock or adversarial)."""

    spec: WorkloadSpec
    session: Session
    indexes_created: bool = False
    _query_cache: dict = field(default_factory=dict)

    @property
    def workload(self) -> str:
        return self.spec.name

    @property
    def scale_factor(self) -> int:
        return self.spec.scale_factor

    def query(self, label: str) -> Query:
        if label not in self._query_cache:
            # KeyError for labels outside this workload's suite
            self._query_cache[label] = self.spec.queries[label]()
        return self._query_cache[label]

    def ensure_indexes(self) -> None:
        """Create the Figure-8 secondary indexes (idempotent)."""
        if not self.indexes_created:
            self.spec.create_secondary_indexes(self.session)
            self.indexes_created = True


_CACHE: dict[WorkloadSpec, Workbench] = {}


def workbench_for_spec(spec: WorkloadSpec) -> Workbench:
    """Cached session loaded with one workload spec."""
    if spec not in _CACHE:
        session = Session()
        spec.load_into(session)
        _CACHE[spec] = Workbench(spec, session)
    return _CACHE[spec]


def workbench(
    workload: str,
    scale_factor: int,
    seed: int = 42,
    skew: float = 0.0,
    correlation: float = 0.0,
) -> Workbench:
    """Cached session for one workload at one scale factor (knobs optional)."""
    return workbench_for_spec(
        get_workload(workload, scale_factor, seed, skew=skew, correlation=correlation)
    )


def workbench_for_query(
    label: str,
    scale_factor: int,
    seed: int = 42,
    skew: float = 0.0,
    correlation: float = 0.0,
) -> Workbench:
    return workbench(SWEEP_QUERIES[label], scale_factor, seed, skew, correlation)


def clear_cache() -> None:
    _CACHE.clear()


def run_query(
    label: str,
    scale_factor: int,
    optimizer: str,
    inl_enabled: bool = False,
    seed: int = 42,
    skew: float = 0.0,
    correlation: float = 0.0,
    engine: str | None = None,
    **options,
) -> ExecutionResult:
    """Execute one evaluation query under one strategy; cleans up after.

    ``engine`` temporarily pins the cached session's execution engine
    (``rowwise``/``vectorized``) for this run; ``None`` keeps whatever the
    session already uses. Simulated results are engine-independent (the
    equivalence harness's contract), so benches expose the knob purely to
    *prove* that on their own cells.
    """
    bench = workbench_for_query(label, scale_factor, seed, skew, correlation)
    if inl_enabled:
        bench.ensure_indexes()
        options["inl_enabled"] = True
    query = bench.query(label)
    executor = bench.session.executor
    previous_engine = executor.engine
    try:
        if engine is not None:
            executor.engine = resolve_engine(engine)
        return bench.session.execute(query, PlannerSpec.of(optimizer, **options))
    finally:
        executor.engine = previous_engine
        bench.session.reset_intermediates()


# -- estimate accuracy ---------------------------------------------------------


@dataclass(frozen=True)
class QErrorRow:
    """Per-(query, scale factor, optimizer) estimate-accuracy summary."""

    query: str
    scale_factor: int
    optimizer: str
    records: int
    final: float | None
    worst: float | None
    mean: float | None


def qerror_rows(
    scale_factors=(10,),
    queries: tuple[str, ...] | None = None,
    optimizers: tuple[str, ...] = QERROR_OPTIMIZERS,
    seed: int = 42,
) -> list[QErrorRow]:
    """Collect the paper's headline observability signal: how far each
    strategy's cardinality estimates land from the measured actuals."""
    from repro.obs.report import qerror_stats

    rows = []
    for scale_factor in scale_factors:
        for label in queries or tuple(QUERIES):
            for optimizer in optimizers:
                result = run_query(label, scale_factor, optimizer, seed=seed)
                stats = qerror_stats(result.trace)
                rows.append(
                    QErrorRow(
                        query=label,
                        scale_factor=scale_factor,
                        optimizer=optimizer,
                        records=stats["records"],
                        final=stats["final"],
                        worst=stats["worst"],
                        mean=stats["mean"],
                    )
                )
    return rows


def format_qerror(rows: list[QErrorRow]) -> str:
    """Render Q-error summaries grouped like the Figure 7 bar groups."""

    def fmt(value: float | None) -> str:
        if value is None:
            return "-"
        if value == float("inf"):
            return "inf"
        return f"{value:.2f}"

    lines = []
    groups: dict[tuple[int, str], list[QErrorRow]] = {}
    for row in rows:
        groups.setdefault((row.scale_factor, row.query), []).append(row)
    for (scale_factor, query), group in sorted(groups.items()):
        lines.append(f"{query} @ SF {scale_factor} — estimate accuracy (Q-error)")
        lines.append(
            f"  {'optimizer':12s} {'points':>6s} {'final':>8s}"
            f" {'worst':>8s} {'mean':>8s}"
        )
        for row in group:
            lines.append(
                f"  {row.optimizer:12s} {row.records:6d} {fmt(row.final):>8s}"
                f" {fmt(row.worst):>8s} {fmt(row.mean):>8s}"
            )
    return "\n".join(lines)
