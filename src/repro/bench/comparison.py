"""Figure 7 / Figure 8: execution-time comparison across optimizers.

Figure 7 compares the dynamic approach against static cost-based
optimization, the user-order baselines (best/worst), pilot-run and the
INGRES-like approach at scale factors 10/100/1000. Figure 8 repeats the
comparison with secondary indexes present and the indexed nested loop join
enabled (worst-order is excluded there, as in the paper: without hints it
would never choose INL, so its time is unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import COMPARISON_OPTIMIZERS, QUERIES, run_query


@dataclass(frozen=True)
class ComparisonCell:
    """One bar of Figure 7/8."""

    query: str
    scale_factor: int
    optimizer: str
    seconds: float
    plan: str
    result_rows: int


def comparison_row(
    query: str,
    scale_factor: int,
    inl_enabled: bool = False,
    optimizers: tuple[str, ...] | None = None,
    seed: int = 42,
) -> list[ComparisonCell]:
    """All optimizer timings for one (query, scale factor) group of bars."""
    if optimizers is None:
        optimizers = COMPARISON_OPTIMIZERS
        if inl_enabled:
            optimizers = tuple(o for o in optimizers if o != "worst_order")
    cells = []
    for optimizer in optimizers:
        result = run_query(
            query, scale_factor, optimizer, inl_enabled=inl_enabled, seed=seed
        )
        cells.append(
            ComparisonCell(
                query=query,
                scale_factor=scale_factor,
                optimizer=optimizer,
                seconds=result.seconds,
                plan=result.plan_description,
                result_rows=len(result.rows),
            )
        )
    return cells


def figure7(scale_factors=(10, 100, 1000), seed: int = 42) -> list[ComparisonCell]:
    """Every bar of Figure 7."""
    cells = []
    for scale_factor in scale_factors:
        for query in QUERIES:
            cells.extend(comparison_row(query, scale_factor, seed=seed))
    return cells


def figure8(scale_factors=(10, 100, 1000), seed: int = 42) -> list[ComparisonCell]:
    """Every bar of Figure 8 (INL enabled, worst-order excluded)."""
    cells = []
    for scale_factor in scale_factors:
        for query in QUERIES:
            cells.extend(
                comparison_row(query, scale_factor, inl_enabled=True, seed=seed)
            )
    return cells


def format_cells(cells: list[ComparisonCell]) -> str:
    """Render cells as the figure's groups of bars, in text."""
    lines = []
    groups: dict[tuple[int, str], list[ComparisonCell]] = {}
    for cell in cells:
        groups.setdefault((cell.scale_factor, cell.query), []).append(cell)
    for (scale_factor, query), group in sorted(groups.items()):
        lines.append(f"{query} @ SF {scale_factor} ({scale_factor}GB nominal)")
        base = next(
            (c.seconds for c in group if c.optimizer == "dynamic"), group[0].seconds
        )
        for cell in group:
            ratio = cell.seconds / base if base else float("inf")
            lines.append(
                f"  {cell.optimizer:12s} {cell.seconds:10.1f}s"
                f"  ({ratio:5.2f}x dynamic)  rows={cell.result_rows}"
            )
    return "\n".join(lines)
