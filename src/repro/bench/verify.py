"""Verifier sweep: every strategy x evaluation query must verify clean.

``python -m repro.bench verify`` runs all registered optimization strategies
(plus the ``dynamic+transfer`` prelude variant) over the paper's four
evaluation queries plus the JOB-style suite (J1-J3) with the
verify-on-compile gate active (it is on by default) and reports, per
combination, how many jobs, plan-time checks and query-level (Q001–Q006)
passes the :mod:`repro.analysis` verifiers ran and what their host-side
wall-time overhead was. The sweep asserts **zero diagnostics**: any
:class:`~repro.analysis.diagnostics.PlanVerificationError` means a strategy
compiled a structurally broken job — a reproduction bug, not a data point —
so the row is tabulated as FAILED and the experiment exits non-zero.

Verification charges zero *simulated* seconds (schedules and metrics are
byte-identical with the gate on or off); the overhead column is real host
time, the only currency the verifier spends.
"""

from __future__ import annotations

from dataclasses import dataclass

# Host-side wall time: the verifier's overhead is real time, not simulated
# time, so the bench must measure it with a real clock.
from time import perf_counter

from repro.analysis.diagnostics import PlanVerificationError
from repro.bench.runner import SWEEP_QUERIES, run_query, workbench_for_query
from repro.optimizers import available_strategies

#: the verifier sweep covers every registered strategy, not just the
#: Figure 7 comparison set — greedy_static, from_order and sketch_online
#: included; enumerated from the registry so new planners enroll for free.
#: ``dynamic+transfer`` additionally sweeps the dynamic driver with the
#: Bloom-propagation prelude (``pre_filter="transfer"``), the path the Q006
#: transfer-soundness rule exists for.
VERIFY_OPTIMIZERS = tuple(sorted(available_strategies())) + ("dynamic+transfer",)


@dataclass(frozen=True)
class VerifyRow:
    """One (query, scale factor, strategy) sweep cell."""

    query: str
    scale_factor: int
    optimizer: str
    jobs_verified: int
    diagnostics: tuple[str, ...]
    verifier_seconds: float
    host_seconds: float
    plans_verified: int = 0
    queries_verified: int = 0

    @property
    def clean(self) -> bool:
        return not self.diagnostics


def verify_cell(
    label: str, scale_factor: int, optimizer: str, seed: int = 42
) -> VerifyRow:
    """Run one query under one strategy and account the gate's work.

    An optimizer spelled ``name+variant`` (currently ``dynamic+transfer``)
    runs strategy ``name`` with the matching planner option — the only
    variant today is the ``pre_filter="transfer"`` prelude.
    """
    bench = workbench_for_query(label, scale_factor, seed)
    stats = bench.session.executor.verifier_stats
    before = stats.snapshot()
    name, _, variant = optimizer.partition("+")
    options: dict[str, object] = {"pre_filter": variant} if variant else {}
    started = perf_counter()  # det: allow(D001)
    diagnostics: tuple[str, ...] = ()
    try:
        run_query(label, scale_factor, name, seed=seed, **options)
    except PlanVerificationError as error:
        diagnostics = error.codes()
    host_seconds = perf_counter() - started  # det: allow(D001)
    delta = stats.since(before)
    return VerifyRow(
        query=label,
        scale_factor=scale_factor,
        optimizer=optimizer,
        jobs_verified=delta.jobs_verified,
        diagnostics=diagnostics,
        verifier_seconds=delta.total_wall_seconds,
        host_seconds=host_seconds,
        plans_verified=delta.plans_verified,
        queries_verified=delta.queries_verified,
    )


def run_verify(
    scale_factors=(10, 100),
    queries: tuple[str, ...] | None = None,
    optimizers: tuple[str, ...] = VERIFY_OPTIMIZERS,
    seed: int = 42,
) -> list[VerifyRow]:
    """The full sweep: every strategy x query x scale factor.

    The default query set is :data:`~repro.bench.runner.SWEEP_QUERIES` —
    the paper's four evaluation queries plus the JOB suite.
    """
    rows = []
    for scale_factor in scale_factors:
        for label in queries or tuple(SWEEP_QUERIES):
            for optimizer in optimizers:
                rows.append(verify_cell(label, scale_factor, optimizer, seed))
    return rows


def verify_ok(rows: list[VerifyRow]) -> bool:
    return all(row.clean for row in rows)


def format_verify(rows: list[VerifyRow]) -> str:
    """Tabulate the sweep with per-cell and aggregate overhead numbers."""
    lines = []
    groups: dict[tuple[int, str], list[VerifyRow]] = {}
    for row in rows:
        groups.setdefault((row.scale_factor, row.query), []).append(row)
    for (scale_factor, query), group in sorted(groups.items()):
        lines.append(f"{query} @ SF {scale_factor} — verify-on-compile sweep")
        lines.append(
            f"  {'optimizer':16s} {'jobs':>5s} {'plans':>5s} {'qry':>3s}"
            f" {'verdict':>10s} {'verifier':>10s} {'of run':>7s}"
        )
        for row in group:
            verdict = "clean" if row.clean else "FAILED " + ",".join(
                row.diagnostics
            )
            share = (
                row.verifier_seconds / row.host_seconds
                if row.host_seconds > 0
                else 0.0
            )
            lines.append(
                f"  {row.optimizer:16s} {row.jobs_verified:5d}"
                f" {row.plans_verified:5d} {row.queries_verified:3d}"
                f" {verdict:>10s}"
                f" {row.verifier_seconds * 1e3:8.2f}ms {share:6.1%}"
            )
    total_jobs = sum(row.jobs_verified for row in rows)
    total_plans = sum(row.plans_verified for row in rows)
    total_queries = sum(row.queries_verified for row in rows)
    total_verifier = sum(row.verifier_seconds for row in rows)
    total_host = sum(row.host_seconds for row in rows)
    dirty = [row for row in rows if not row.clean]
    lines.append(
        f"total: {total_jobs} job(s), {total_plans} plan(s) and "
        f"{total_queries} query-level pass(es) verified across {len(rows)} "
        f"run(s) in {total_verifier * 1e3:.1f}ms host time"
        + (
            f" ({total_verifier / total_host:.1%} of {total_host:.2f}s)"
            if total_host > 0
            else ""
        )
    )
    if dirty:
        lines.append(
            "FAILED: "
            + "; ".join(
                f"{row.query}/sf{row.scale_factor}/{row.optimizer}: "
                + ",".join(row.diagnostics)
                for row in dirty
            )
        )
    else:
        lines.append("all runs verified clean (0 diagnostics)")
    return "\n".join(lines)
