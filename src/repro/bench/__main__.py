"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.bench                 # print the experiment registry
    python -m repro.bench all             # everything (slow: full sweep)
    python -m repro.bench fig6 table1     # selected experiments
    python -m repro.bench fig7 --sf 100   # one scale factor only
    python -m repro.bench skew --smoke    # CI-sized adversarial sweep

Each experiment lives in one :class:`Experiment` entry of the
:data:`REGISTRY` below — the argument parser, the printed experiment list,
the unknown-name error and the dispatch loop all derive from it, so adding
an experiment means adding exactly one entry.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable

from repro.bench import (
    comparison,
    feedback,
    overhead,
    plans,
    runner,
    service,
    skew,
    table1,
    throughput,
    transfer,
    verify,
)


@dataclass(frozen=True)
class Experiment:
    """One registered bench experiment.

    ``run(args, shared)`` prints its report and returns True on failure;
    ``shared`` is a per-invocation scratch dict experiments use to reuse
    expensive intermediates (fig7 and table1 share the comparison cells).
    """

    name: str
    description: str
    run: Callable[[argparse.Namespace, dict], bool]


def _comparison_sfs(args) -> tuple[int, ...]:
    return tuple(args.sf) if args.sf else (10, 100, 1000)


def _comparison_cells(args, shared):
    if "fig7_cells" not in shared:
        shared["fig7_cells"] = comparison.figure7(_comparison_sfs(args), seed=args.seed)
    return shared["fig7_cells"]


def _run_fig6(args, shared) -> bool:
    sfs = tuple(args.sf) if args.sf else (100, 1000)
    print("=== Figure 6: re-optimization / online statistics / push-down overheads ===")
    print(overhead.format_reports(overhead.figure6(sfs, seed=args.seed)))
    return False


def _run_fig7(args, shared) -> bool:
    print("=== Figure 7: execution time comparison ===")
    print(comparison.format_cells(_comparison_cells(args, shared)))
    return False


def _run_table1(args, shared) -> bool:
    print("=== Table 1: average improvement of the dynamic approach ===")
    table_sfs = tuple(sf for sf in _comparison_sfs(args) if sf in (100, 1000)) or (100,)
    cells = _comparison_cells(args, shared)
    print(table1.format_rows(table1.improvement_rows(cells, table_sfs)))
    return False


def _run_fig8(args, shared) -> bool:
    print("=== Figure 8: comparison with INL join enabled ===")
    print(comparison.format_cells(comparison.figure8(_comparison_sfs(args), seed=args.seed)))
    return False


def _run_qerror(args, shared) -> bool:
    print("=== Estimate accuracy: Q-error per optimizer at the final stage ===")
    qerror_sfs = tuple(args.sf) if args.sf else (10,)
    print(runner.format_qerror(runner.qerror_rows(qerror_sfs, seed=args.seed)))
    return False


def _run_throughput(args, shared) -> bool:
    print("=== Multi-query throughput: scheduler vs one-at-a-time ===")
    throughput_sf = (tuple(args.sf) if args.sf else (10,))[0]
    query_count = 2 if args.smoke else 4
    if args.engine == "compare":
        # The engine comparison measures per-row engine throughput, so
        # it defaults to the largest bench scale and the full batch —
        # at SF 10 fixed planning/scheduling overhead (identical across
        # engines) dominates and the ratio collapses toward 1.
        compare_sf = (tuple(args.sf) if args.sf else (1000,))[0]
        comparison_report = throughput.compare_engines(
            scale_factor=compare_sf,
            query_count=4,
            seed=args.seed,
            job_slots=args.job_slots,
        )
        print(throughput.format_throughput(comparison_report.vectorized))
        print()
        print(throughput.format_engine_comparison(comparison_report))
    else:
        report = throughput.run_throughput(
            scale_factor=throughput_sf,
            query_count=query_count,
            seed=args.seed,
            job_slots=args.job_slots,
            engine=args.engine,
        )
        print(throughput.format_throughput(report))
    return False


def _run_service(args, shared) -> bool:
    print("=== Query service: tail latency under a skewed multi-tenant load ===")
    service_report = service.run_service(seed=args.seed, smoke=args.smoke)
    print(service.format_service(service_report))
    failed = False
    if args.write_baseline:
        service.write_baseline(service_report)
        print(f"baseline recorded at {service.BASELINE_PATH}")
    if args.check_baseline:
        violations = service.check_baseline(service_report)
        for violation in violations:
            print(f"BASELINE VIOLATION: {violation}")
        failed = bool(violations)
    return failed


def _run_feedback(args, shared) -> bool:
    print("=== Feedback-driven re-planning: fixed schedule vs ReplanPolicy ===")
    print(feedback.format_feedback(feedback.run_feedback(smoke=args.smoke, seed=args.seed)))
    return False


def _run_skew(args, shared) -> bool:
    print("=== Adversarial skew sweep: all strategies x (skew, correlation) grid ===")
    engine = args.engine if args.engine in ("rowwise", "vectorized") else None
    cells = skew.run_skew(seed=args.seed, smoke=args.smoke, engine=engine)
    print(skew.format_skew(cells))
    return not skew.skew_ok(cells)


def _run_transfer(args, shared) -> bool:
    print("=== Predicate transfer: pre-filtering vs runtime re-optimization ===")
    engine = args.engine if args.engine in ("rowwise", "vectorized") else None
    cells = transfer.run_transfer(seed=args.seed, smoke=args.smoke, engine=engine)
    print(transfer.format_transfer(cells))
    return not transfer.transfer_ok(cells)


def _run_verify(args, shared) -> bool:
    print("=== Verifier sweep: every strategy must compile clean jobs ===")
    verify_sfs = tuple(args.sf) if args.sf else ((10,) if args.smoke else (10, 100))
    verify_rows = verify.run_verify(verify_sfs, seed=args.seed)
    print(verify.format_verify(verify_rows))
    return not verify.verify_ok(verify_rows)


def _run_plans(args, shared) -> bool:
    print("=== Appendix: plans generated per optimizer (Figures 11-23) ===")
    sfs = _comparison_sfs(args)
    print(plans.format_matrix(plans.plan_matrix(sfs, seed=args.seed)))
    print(plans.format_matrix(plans.plan_matrix(sfs, inl_enabled=True, seed=args.seed)))
    return False


#: the single source of truth: list printing, parsing and dispatch all
#: derive from this tuple.
REGISTRY = (
    Experiment("fig6", "re-optimization / online-stats / push-down overheads", _run_fig6),
    Experiment("fig7", "execution time comparison across strategies", _run_fig7),
    Experiment("table1", "average improvement of the dynamic approach", _run_table1),
    Experiment("fig8", "strategy comparison with INL join enabled", _run_fig8),
    Experiment("qerror", "estimate accuracy (Q-error) per strategy", _run_qerror),
    Experiment("throughput", "multi-query scheduler throughput", _run_throughput),
    Experiment("service", "multi-tenant query service tail latency", _run_service),
    Experiment("feedback", "fixed replan schedule vs ReplanPolicy", _run_feedback),
    Experiment("skew", "adversarial skew/correlation sweep, all strategies", _run_skew),
    Experiment("transfer", "predicate-transfer pre-filtering vs dynamic", _run_transfer),
    Experiment("verify", "verifier sweep: zero diagnostics everywhere", _run_verify),
    Experiment("plans", "appendix plan matrix per optimizer", _run_plans),
)

EXPERIMENTS = tuple(experiment.name for experiment in REGISTRY)


def experiment_list() -> str:
    """The registry, one line per experiment — what a bare run prints."""
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments (python -m repro.bench <name> [...]):"]
    lines += [
        f"  {experiment.name:{width}s}  {experiment.description}"
        for experiment in REGISTRY
    ]
    lines.append("  all" + " " * (width - 3) + "  every experiment above, in order")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
        epilog=experiment_list(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    # note: no argparse `choices` here — with nargs="*" Python 3.11 rejects
    # the empty (list-the-registry) invocation; validated manually below.
    parser.add_argument(
        "experiments",
        nargs="*",
        help="which experiments to run ('all' for the full sweep; "
        "no arguments prints the registry)",
    )
    parser.add_argument(
        "--sf",
        type=int,
        action="append",
        help="restrict to these scale factors (repeatable)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--job-slots",
        type=int,
        default=2,
        help="partition-slice slots for the throughput experiment's "
        "space-shared mode (default 2; 1 disables space sharing)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fast configuration (used by CI to exercise the code paths)",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="service experiment: fail (exit 1) when tail latency or cache "
        "hit rate drifts beyond tolerance of the recorded baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="service experiment: record the run as the new baseline "
        f"({service.BASELINE_PATH})",
    )
    parser.add_argument(
        "--engine",
        choices=("rowwise", "vectorized", "compare"),
        default=None,
        help="execution engine for the throughput, skew and transfer "
        "experiments; 'compare' (throughput only) runs the batch on both and "
        "reports the host-time speedup (results and simulated seconds are "
        "identical across engines)",
    )
    args = parser.parse_args(argv)
    if not args.experiments:
        print(experiment_list())
        return 0
    chosen = args.experiments
    if chosen == ["all"]:
        chosen = list(EXPERIMENTS)
    unknown = [e for e in chosen if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments {unknown}; choose from {list(EXPERIMENTS)}")

    failed = False
    shared: dict = {}
    for experiment in REGISTRY:
        if experiment.name not in chosen:
            continue
        failed = experiment.run(args, shared) or failed
        print()
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
