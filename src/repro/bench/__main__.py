"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.bench                 # everything (slow: full sweep)
    python -m repro.bench fig6 table1     # selected experiments
    python -m repro.bench fig7 --sf 100   # one scale factor only
"""

from __future__ import annotations

import argparse

from repro.bench import (
    comparison,
    feedback,
    overhead,
    plans,
    runner,
    service,
    table1,
    throughput,
    verify,
)

EXPERIMENTS = (
    "fig6",
    "fig7",
    "fig8",
    "table1",
    "plans",
    "qerror",
    "throughput",
    "service",
    "feedback",
    "verify",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    # note: no argparse `choices` here — with nargs="*" Python 3.11 rejects
    # the empty (run-everything) invocation; validated manually below.
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"which experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--sf",
        type=int,
        action="append",
        help="restrict to these scale factors (repeatable)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--job-slots",
        type=int,
        default=2,
        help="partition-slice slots for the throughput experiment's "
        "space-shared mode (default 2; 1 disables space sharing)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fast configuration (used by CI to exercise the code paths)",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="service experiment: fail (exit 1) when tail latency or cache "
        "hit rate drifts beyond tolerance of the recorded baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="service experiment: record the run as the new baseline "
        f"({service.BASELINE_PATH})",
    )
    parser.add_argument(
        "--engine",
        choices=("rowwise", "vectorized", "compare"),
        default=None,
        help="execution engine for the throughput experiment; 'compare' runs "
        "the batch on both and reports the host-time speedup (results and "
        "simulated seconds are identical across engines)",
    )
    args = parser.parse_args(argv)
    unknown = [e for e in args.experiments if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments {unknown}; choose from {list(EXPERIMENTS)}")
    chosen = args.experiments or list(EXPERIMENTS)
    comparison_sfs = tuple(args.sf) if args.sf else (10, 100, 1000)
    overhead_sfs = tuple(args.sf) if args.sf else (100, 1000)

    if "fig6" in chosen:
        print("=== Figure 6: re-optimization / online statistics / push-down overheads ===")
        print(overhead.format_reports(overhead.figure6(overhead_sfs, seed=args.seed)))
        print()
    cells = None
    if "fig7" in chosen or "table1" in chosen:
        cells = comparison.figure7(comparison_sfs, seed=args.seed)
    if "fig7" in chosen:
        print("=== Figure 7: execution time comparison ===")
        print(comparison.format_cells(cells))
        print()
    if "table1" in chosen:
        print("=== Table 1: average improvement of the dynamic approach ===")
        table_sfs = tuple(sf for sf in comparison_sfs if sf in (100, 1000)) or (100,)
        print(table1.format_rows(table1.improvement_rows(cells, table_sfs)))
        print()
    if "fig8" in chosen:
        print("=== Figure 8: comparison with INL join enabled ===")
        print(comparison.format_cells(comparison.figure8(comparison_sfs, seed=args.seed)))
        print()
    if "qerror" in chosen:
        print("=== Estimate accuracy: Q-error per optimizer at the final stage ===")
        qerror_sfs = tuple(args.sf) if args.sf else (10,)
        print(runner.format_qerror(runner.qerror_rows(qerror_sfs, seed=args.seed)))
        print()
    if "throughput" in chosen:
        print("=== Multi-query throughput: scheduler vs one-at-a-time ===")
        throughput_sf = (tuple(args.sf) if args.sf else (10,))[0]
        query_count = 2 if args.smoke else 4
        if args.engine == "compare":
            # The engine comparison measures per-row engine throughput, so
            # it defaults to the largest bench scale and the full batch —
            # at SF 10 fixed planning/scheduling overhead (identical across
            # engines) dominates and the ratio collapses toward 1.
            compare_sf = (tuple(args.sf) if args.sf else (1000,))[0]
            comparison_report = throughput.compare_engines(
                scale_factor=compare_sf,
                query_count=4,
                seed=args.seed,
                job_slots=args.job_slots,
            )
            print(throughput.format_throughput(comparison_report.vectorized))
            print()
            print(throughput.format_engine_comparison(comparison_report))
        else:
            report = throughput.run_throughput(
                scale_factor=throughput_sf,
                query_count=query_count,
                seed=args.seed,
                job_slots=args.job_slots,
                engine=args.engine,
            )
            print(throughput.format_throughput(report))
        print()
    failed = False
    if "service" in chosen:
        print("=== Query service: tail latency under a skewed multi-tenant load ===")
        service_report = service.run_service(seed=args.seed, smoke=args.smoke)
        print(service.format_service(service_report))
        if args.write_baseline:
            service.write_baseline(service_report)
            print(f"baseline recorded at {service.BASELINE_PATH}")
        if args.check_baseline:
            violations = service.check_baseline(service_report)
            for violation in violations:
                print(f"BASELINE VIOLATION: {violation}")
            failed = failed or bool(violations)
        print()
    if "feedback" in chosen:
        print("=== Feedback-driven re-planning: fixed schedule vs ReplanPolicy ===")
        print(
            feedback.format_feedback(
                feedback.run_feedback(smoke=args.smoke, seed=args.seed)
            )
        )
        print()
    if "verify" in chosen:
        print("=== Verifier sweep: every strategy must compile clean jobs ===")
        verify_sfs = (
            tuple(args.sf) if args.sf else ((10,) if args.smoke else (10, 100))
        )
        verify_rows = verify.run_verify(verify_sfs, seed=args.seed)
        print(verify.format_verify(verify_rows))
        print()
        failed = failed or not verify.verify_ok(verify_rows)
    if "plans" in chosen:
        print("=== Appendix: plans generated per optimizer (Figures 11-23) ===")
        print(plans.format_matrix(plans.plan_matrix(comparison_sfs, seed=args.seed)))
        print(
            plans.format_matrix(
                plans.plan_matrix(comparison_sfs, inl_enabled=True, seed=args.seed)
            )
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
