"""Benchmark harness regenerating every table and figure of the paper."""

from repro.bench.comparison import (
    ComparisonCell,
    comparison_row,
    figure7,
    figure8,
    format_cells,
)
from repro.bench.overhead import (
    OverheadReport,
    figure6,
    format_reports,
    overhead_report,
)
from repro.bench.plans import PlanEntry, format_matrix, plan_matrix
from repro.bench.runner import (
    COMPARISON_OPTIMIZERS,
    JOB_QUERIES,
    QERROR_OPTIMIZERS,
    QUERIES,
    SCALE_FACTORS,
    SWEEP_QUERIES,
    clear_cache,
    run_query,
    workbench,
    workbench_for_query,
    workbench_for_spec,
)
from repro.bench.skew import (
    SkewCell,
    format_skew,
    run_skew,
    skew_ok,
    sweep_cell,
)
from repro.bench.service import (
    ServiceReport,
    check_baseline,
    format_service,
    run_service,
    service_templates,
)
from repro.bench.table1 import (
    PAPER_TABLE1,
    ImprovementRow,
    format_rows,
    improvement_rows,
)
from repro.bench.throughput import (
    ThroughputReport,
    format_throughput,
    run_throughput,
    throughput_queries,
)
from repro.bench.verify import (
    VERIFY_OPTIMIZERS,
    VerifyRow,
    format_verify,
    run_verify,
    verify_cell,
    verify_ok,
)

__all__ = [
    "COMPARISON_OPTIMIZERS",
    "ComparisonCell",
    "ImprovementRow",
    "JOB_QUERIES",
    "OverheadReport",
    "PAPER_TABLE1",
    "PlanEntry",
    "QERROR_OPTIMIZERS",
    "QUERIES",
    "SCALE_FACTORS",
    "SWEEP_QUERIES",
    "ServiceReport",
    "SkewCell",
    "ThroughputReport",
    "VERIFY_OPTIMIZERS",
    "VerifyRow",
    "check_baseline",
    "clear_cache",
    "comparison_row",
    "figure6",
    "figure7",
    "figure8",
    "format_cells",
    "format_matrix",
    "format_reports",
    "format_rows",
    "format_service",
    "format_skew",
    "format_throughput",
    "format_verify",
    "improvement_rows",
    "overhead_report",
    "plan_matrix",
    "run_query",
    "run_service",
    "run_skew",
    "run_throughput",
    "run_verify",
    "service_templates",
    "skew_ok",
    "sweep_cell",
    "throughput_queries",
    "verify_cell",
    "verify_ok",
    "workbench",
    "workbench_for_query",
    "workbench_for_spec",
]
