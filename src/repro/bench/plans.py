"""Appendix figures 11-23: the join trees each optimizer produces.

The paper's appendix renders, per query / scale factor / optimizer, the join
tree with algorithm markers (plain hash, 'b' broadcast, 'i' indexed nested
loop). ``plan_matrix`` regenerates that information from the same runs the
comparison figures use, and ``format_matrix`` prints it in the appendix's
per-query blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import COMPARISON_OPTIMIZERS, QUERIES, run_query


@dataclass(frozen=True)
class PlanEntry:
    query: str
    scale_factor: int
    optimizer: str
    inl_enabled: bool
    plan: str


def plan_matrix(
    scale_factors=(10, 100, 1000),
    inl_enabled: bool = False,
    queries: tuple[str, ...] | None = None,
    seed: int = 42,
) -> list[PlanEntry]:
    """Plans for every (query, scale factor, optimizer) combination."""
    optimizers = COMPARISON_OPTIMIZERS
    if inl_enabled:
        optimizers = tuple(o for o in optimizers if o != "worst_order")
    entries = []
    for scale_factor in scale_factors:
        for query in queries or tuple(QUERIES):
            for optimizer in optimizers:
                result = run_query(
                    query, scale_factor, optimizer, inl_enabled=inl_enabled, seed=seed
                )
                entries.append(
                    PlanEntry(
                        query, scale_factor, optimizer, inl_enabled, result.plan_description
                    )
                )
    return entries


def format_matrix(entries: list[PlanEntry]) -> str:
    lines = []
    current = None
    for entry in entries:
        header = (entry.query, entry.scale_factor, entry.inl_enabled)
        if header != current:
            current = header
            suffix = " (INL enabled)" if entry.inl_enabled else ""
            lines.append(f"-- {entry.query} @ SF {entry.scale_factor}{suffix}")
        lines.append(f"   {entry.optimizer:12s} {entry.plan}")
    return "\n".join(lines)
