"""Job requests and outcomes: the seam between query drivers and the cluster.

Optimizer drivers are *resumable stage generators*: instead of calling the
executor directly they ``yield`` a :class:`JobRequest` (or a list of
independent requests) and receive a :class:`JobOutcome` (or a matching list)
back. The generator's ``return`` value is the finished
:class:`~repro.engine.metrics.ExecutionResult`.

Two consumers drive these generators:

- :func:`drive_stages` — the synchronous pump. It executes every request
  immediately, in order, on the given executor. Driving a generator this way
  is byte-identical to the old blocking call chain (same job order, same
  metrics, same trace spans), which is what keeps ``Optimizer.execute``
  deterministic and lets the checkpoint/resume tests compare against it.
- :class:`~repro.engine.scheduler.scheduler.JobScheduler` — the concurrent
  admission loop. It parks each admitted query at its pending request,
  interleaves requests of different queries on the shared simulated clock,
  and merges batchable pushdown scans.

:func:`run_request` is the single place a request turns into executed work:
it opens the phase span, runs the job (or applies a pre-computed virtual
cost), applies refunds and scan-sharing discounts, merges the job's metrics
into the query's running total, and records the request's estimate-accuracy
point. Keeping all of that here means the pump and the scheduler cannot
drift apart.
"""

from __future__ import annotations

from collections.abc import Generator, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.runtime import record_replay_dataflow, verify_before_launch
from repro.engine.job import Job
from repro.engine.metrics import JobMetrics

if TYPE_CHECKING:
    from repro.engine.data import PartitionedData
    from repro.engine.executor import Executor
    from repro.obs.trace import Tracer
    from repro.stats.catalog import StatisticsCatalog


@dataclass
class JobRequest:
    """One unit of cluster work a driver asks the scheduler to perform.

    Either ``job`` (an executable operator tree) or ``virtual_cost`` (a
    pre-computed metrics delta, e.g. a pilot-run sample scan whose rows were
    already gathered by the driver) must be set. ``cumulative`` is the
    query's running :class:`JobMetrics`; the runner merges this job's charge
    into it so span clocks and checkpoint metrics stay consistent no matter
    who drives the generator.
    """

    phase: str
    cumulative: JobMetrics
    job: Job | None = None
    virtual_cost: JobMetrics | None = None
    parameters: dict = field(default_factory=dict)
    statistics: StatisticsCatalog | None = None
    tracer: Tracer | None = None
    #: zero out the job's online-statistics charge before merging (the
    #: Figure-6 "no online statistics" refund).
    refund_stats: bool = False
    #: (operator label, estimated rows) to record against the job output's
    #: measured modeled rows once the phase closes.
    estimate: tuple[str, float] | None = None
    #: base dataset this request scans, when the scan is shareable with
    #: other pending pushdown requests over the same dataset.
    batch_key: str | None = None
    #: driver phase family: "pushdown" | "join" | "final" | "pilot" | ...
    kind: str = "job"
    #: namespace-free identity of the work this request performs, set by
    #: drivers for requests whose materialized output may be served from the
    #: service's intermediate cache (pushdown filters: base dataset +
    #: predicates + projection). ``None`` means "never cache me". The token
    #: is inert unless the executor carries a cache (query-service runs).
    cache_token: str | None = None


@dataclass
class JobOutcome:
    """What a driver receives back for one :class:`JobRequest`."""

    data: PartitionedData | None
    #: this job's own charge, *after* refunds and scan-sharing discounts —
    #: already merged into the request's ``cumulative`` metrics.
    metrics: JobMetrics
    #: queries whose scans were merged with this one (>1 means batched).
    shared_with: int = 1


#: What stage generators yield: one request or a list of independent ones.
StageItem = "JobRequest | list[JobRequest]"
Stages = Generator  # Generator[StageItem, JobOutcome | list[JobOutcome], T]


def _apply_scan_share(metrics: JobMetrics, position: int, count: int) -> None:
    """Discount a batched pushdown branch to its share of the merged scan.

    The merged job scans the base dataset once and launches once; every
    participating branch is charged an even ``1/count`` share of that scan
    and startup. Branch-specific work (predicate evaluation, materialize,
    sketches) stays fully charged to its own query. The integer
    tuples-scanned counter is split evenly with the remainder assigned to
    the first branch so cluster-wide totals are conserved.
    """
    metrics.scan = metrics.scan / count
    metrics.startup = metrics.startup / count
    base = metrics.tuples_scanned // count
    if position == 0:
        metrics.tuples_scanned = metrics.tuples_scanned - base * (count - 1)
    else:
        metrics.tuples_scanned = base


def _perform(
    executor: Executor,
    request: JobRequest,
    scan_share: tuple[int, int] | None,
    partitions: int | None,
) -> JobOutcome:
    # Intermediate cache (query-service runs only; ``executor.cache`` is
    # None everywhere else). A cacheable request launched on its own —
    # never as a branch of a merged scan, whose 1/n discounting assumes
    # every branch physically shares the scan — may replay a previously
    # materialized pushdown result: the intermediate dataset and its
    # statistics are re-registered under this request's names at zero
    # simulated cost, and on a miss the fresh materialization is stored.
    cache = getattr(executor, "cache", None)
    cacheable = (
        cache is not None
        and request.cache_token is not None
        and request.virtual_cost is None
        and scan_share is None
    )
    if cacheable:
        replayed = cache.fetch_intermediate(executor, request)
        if replayed is not None:
            data, job_metrics = replayed
            # The replay never reaches the launch gate, but the query-level
            # dataflow ledger still needs the job's writes registered or the
            # Q001/Q002 checks would flag the replayed intermediate.
            record_replay_dataflow(executor, request)
            request.cumulative.merge(job_metrics)
            return JobOutcome(data=data, metrics=job_metrics, shared_with=1)
    if request.virtual_cost is not None:
        # Virtual-cost requests carry a driver-computed metrics delta (pilot
        # sampling, sketch refresh); the charge is applied as given — those
        # jobs are coordinator-side work, not partitioned cluster jobs.
        data = None
        job_metrics = request.virtual_cost.copy()
    else:
        # Verify-on-compile gate: prove the job's invariants (P001-P007)
        # before anything launches. Zero simulated cost; raises
        # PlanVerificationError with the diagnostics when the job is broken.
        verify_before_launch(executor, request)
        data, job_metrics = executor.execute(
            request.job,
            request.parameters,
            request.statistics,
            tracer=request.tracer,
            partitions=partitions,
        )
        if cacheable:
            cache.store_intermediate(executor, request)
    shared_with = 1
    if scan_share is not None and scan_share[1] > 1:
        _apply_scan_share(job_metrics, *scan_share)
        shared_with = scan_share[1]
    if request.refund_stats:
        job_metrics.stats = 0.0
    request.cumulative.merge(job_metrics)
    return JobOutcome(data=data, metrics=job_metrics, shared_with=shared_with)


def run_request(
    executor: Executor,
    request: JobRequest,
    scan_share: tuple[int, int] | None = None,
    partitions: int | None = None,
) -> JobOutcome:
    """Execute one request: phase span, job, refunds, merge, estimate record.

    ``scan_share`` is ``(position, count)`` when this request runs as one
    branch of a merged pushdown scan; the shared scan + startup cost is
    split evenly across the ``count`` branches. Note that the operator spans
    inside the phase show the *undiscounted* in-job clock (the scan did
    physically happen once at full width); the phase span end and the
    query's cumulative metrics reflect the discounted share.
    ``partitions`` runs the job on a partition slice of the cluster (the
    space-shared scheduler's allotment); ``None`` means the full cluster.
    """
    tracer = request.tracer
    if tracer is None:
        return _perform(executor, request, scan_share, partitions)
    with tracer.phase(request.phase):
        outcome = _perform(executor, request, scan_share, partitions)
        tracer.sync(request.cumulative.total_seconds)
    if request.estimate is not None and outcome.data is not None:
        operator, estimated_rows = request.estimate
        tracer.record_estimate(
            request.phase, operator, estimated_rows, outcome.data.modeled_rows
        )
    return outcome


def drive_stages(stages: Stages, executor: Executor):
    """Synchronously pump a stage generator to completion.

    Every yielded request executes immediately in order — exactly the old
    blocking call chain — and the generator's return value (normally an
    :class:`~repro.engine.metrics.ExecutionResult`) is returned. Exceptions
    raised inside the generator (e.g. ``SimulatedFailure``) propagate.
    """
    payload: object = None
    while True:
        try:
            item = stages.send(payload)
        except StopIteration as stop:
            return stop.value
        if isinstance(item, JobRequest):
            payload = run_request(executor, item)
        else:
            payload = [run_request(executor, r) for r in _as_requests(item)]


def _as_requests(item: Iterable[JobRequest]) -> list[JobRequest]:
    requests = list(item)
    for request in requests:
        if not isinstance(request, JobRequest):
            raise TypeError(
                f"stage generators must yield JobRequest items, got {request!r}"
            )
    return requests
