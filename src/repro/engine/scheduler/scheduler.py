"""The job scheduler: concurrent query admission on the simulated cluster.

The paper frames every re-optimization stage as an independently submitted
Hyracks job; this module exploits exactly that seam. Drivers are resumable
stage generators (``yield JobRequest → receive JobOutcome``); the scheduler
parks each admitted query at its pending request and interleaves requests of
different queries on one shared simulated clock:

- **Admission.** At most ``max_concurrent_queries`` queries run at once;
  the rest wait in a priority/FIFO admission queue and are charged the wait.
- **Space sharing.** The cluster is a pool of ``job_slots`` partition-slice
  slots. Each launched cluster job is assigned a slice — an even split of
  the cluster's partitions across the jobs active at launch time, the full
  cluster when alone — and jobs in different slots overlap on the shared
  clock. The event loop is event-driven: launches happen whenever a slot is
  free and some query has a ready request; otherwise the clock jumps to the
  earliest completion in a min-heap of in-flight jobs. ``job_slots=1``
  degenerates to the historical serial schedule (one full-width job at a
  time, byte-identical accounting).
- **Slice costing.** A job launched on an ``n``-partition slice is costed
  against :meth:`repro.cluster.cost.CostModel.with_partitions`: partitioned
  work divides by ``n`` instead of the full cluster and the join memory
  budget shrinks with the slice, so narrow slices raise spill pressure —
  feeding the session's cross-query spill feedback. Data placement (and
  therefore every query's answer) is unaffected.
- **Queueing delay.** A query is charged delay only for time the cluster had
  *no free slice* for its ready request (or while it waited for admission).
  Ready work launches the moment a slot is free, so a solo query — or any
  workload fitting inside the slot pool — accrues zero delay. Delay lands on
  the per-query schedule record, never on its
  :class:`~repro.engine.metrics.JobMetrics`.
- **Pushdown scan batching.** Pending pushdown requests (same or different
  queries) that scan the same base dataset merge into one cluster job: the
  base scan and job launch are charged once and split evenly across the
  branches, while each branch keeps its own select/sink work, intermediate,
  statistics catalog and trace. Merging happens at launch time, so a merged
  scan occupies a single slot while unrelated jobs overlap in the others.
- **Multi-tenancy.** Every submission may carry a tenant name. With
  ``fair_tenants`` admission becomes a per-priority deficit round-robin over
  tenants (FIFO within a tenant), ``max_queued`` bounds the admission queue
  (:class:`~repro.common.errors.AdmissionError` on overflow), and
  ``adaptive_slices`` sizes each launch wave's partition slices by estimated
  job size instead of PR 4's even split. All three default off, keeping the
  historical schedule byte-identical. A :class:`~repro.service.QueryService`
  additionally installs ``on_admit``/``on_finish`` hooks to answer repeated
  queries from its result cache at admission time.

Per-query results are the ordinary :class:`ExecutionResult`; the scheduler
annotates each with a :class:`ScheduleInfo` (failed queries get one too,
with the error recorded) and records every cluster job in a
:class:`~repro.obs.timeline.ClusterTimeline`. A finished or failed query's
namespaced intermediates are dropped from the session catalogs so sustained
traffic cannot grow them without bound — except after a failure that carries
a resumable checkpoint, whose intermediates are the recovery state.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import AdmissionError, ReproError
from repro.engine.metrics import ExecutionResult
from repro.engine.scheduler.request import JobOutcome, JobRequest, run_request
from repro.obs.timeline import ClusterTimeline, TimelineEvent

if TYPE_CHECKING:
    from repro.engine.executor import Executor
    from repro.lang.ast import Query


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission, space-sharing and batching policy of one scheduler."""

    #: queries allowed past admission at once; submissions beyond this wait.
    max_concurrent_queries: int = 4
    #: merge pending pushdown scans over the same base dataset into one job.
    batch_pushdown_scans: bool = True
    #: partition-slice slots: how many cluster jobs may run concurrently.
    #: 1 reproduces the historical serial schedule exactly; >1 space-shares
    #: the cluster, splitting partitions evenly across active jobs.
    job_slots: int = 1
    #: per-tenant fair admission: within a priority level, pick the waiting
    #: query of the tenant with the fewest admissions so far (FIFO within a
    #: tenant) instead of global FIFO — one tenant flooding the queue cannot
    #: starve the others. Off by default: plain FIFO is the historical
    #: (byte-identical) order.
    fair_tenants: bool = False
    #: bound on the admission queue: a submission past this many waiting
    #: queries raises :class:`~repro.common.errors.AdmissionError` instead of
    #: queueing without limit. ``None`` (default) keeps the queue unbounded.
    max_queued: int | None = None
    #: size-aware slice widths: when space sharing (``job_slots > 1``), a
    #: launch wave splits its partition budget across the wave's jobs in
    #: proportion to their estimated output size instead of evenly, so a
    #: small sketch-refresh job stops reserving as many partitions as a
    #: giant join. Off by default (PR 4's even split, byte-identical).
    adaptive_slices: bool = False

    def __post_init__(self) -> None:
        if self.max_concurrent_queries < 1:
            raise ReproError("scheduler needs at least one admission slot")
        if self.job_slots < 1:
            raise ReproError("scheduler needs at least one job slot")
        if self.max_queued is not None and self.max_queued < 1:
            raise ReproError("max_queued must be >= 1 (or None for unbounded)")


@dataclass(frozen=True)
class ScheduleInfo:
    """How one query fared on the shared cluster timeline."""

    query_id: int
    priority: int
    submitted_at: float
    admitted_at: float
    finished_at: float
    #: simulated seconds spent waiting (admission queue + no free partition
    #: slice); zero when the query never had to wait for cluster capacity.
    queue_delay_seconds: float
    #: the query's own charged work (== its metrics.total_seconds).
    busy_seconds: float
    #: set when the query failed: ``"ExceptionType: message"``. A failed
    #: query still gets a schedule record so throughput reports and the
    #: cluster timeline account for the capacity it consumed.
    error: str | None = None
    #: tenant name the query was submitted under ("" outside a service).
    tenant: str = ""
    #: True when the query was answered from the service's result cache at
    #: admission time: zero cluster work, ``busy_seconds == 0``.
    cache_hit: bool = False

    @property
    def latency_seconds(self) -> float:
        """Submission-to-completion time on the shared clock."""
        return self.finished_at - self.submitted_at

    @property
    def failed(self) -> bool:
        return self.error is not None


class QueryHandle:
    """One submitted query's lifecycle: queued → running → done/failed."""

    def __init__(
        self,
        query_id: int,
        query: Query,
        strategy,
        session,
        priority: int,
        label: str,
        submitted_at: float,
        submit_index: int,
        tenant: str = "",
    ) -> None:
        self.query_id = query_id
        self.query = query
        self.strategy = strategy
        self.session = session
        self.priority = priority
        self.label = label or f"q{query_id}"
        self.tenant = tenant
        #: result-cache key, set by the query service at submit time; the
        #: scheduler itself never reads it (its cache hooks do).
        self.cache_key = None
        self.status = "queued"
        self.submitted_at = submitted_at
        self.submit_index = submit_index
        self.admitted_at: float | None = None
        self.finished_at: float | None = None
        self.queue_delay_seconds = 0.0
        #: total charged work recorded so far (sum of outcome metrics);
        #: the basis of a failed query's schedule record.
        self.charged_seconds = 0.0
        #: schedule record, set at finish *and* at failure.
        self.schedule: ScheduleInfo | None = None
        #: shared-clock instant since which the query's next work is ready
        self.ready_since = submitted_at
        self._generator = None
        self._group = False
        self._requests: list[JobRequest] = []
        self._outcomes: list[JobOutcome | None] = []
        self._cursor = 0
        self._result: ExecutionResult | None = None
        self._error: BaseException | None = None

    # -- public API -----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.status == "done"

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def error(self) -> BaseException | None:
        return self._error

    def result(self) -> ExecutionResult:
        """The finished result; re-raises the query's error if it failed."""
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise ReproError(
                f"query {self.label!r} has not finished; call run_all() first"
            )
        return self._result

    # -- scheduler internals --------------------------------------------------

    def _has_pending(self) -> bool:
        return self._cursor < len(self._requests)

    def _record_outcome(self, index: int, outcome: JobOutcome) -> None:
        self._outcomes[index] = outcome
        self.charged_seconds += outcome.metrics.total_seconds
        # Compare against None, not truthiness: a JobOutcome subclass (or a
        # future slotted outcome) may legitimately be falsy, and a truthiness
        # check would park the cursor on it forever, wedging the query.
        while (
            self._cursor < len(self._outcomes)
            and self._outcomes[self._cursor] is not None
        ):
            self._cursor += 1

    def _payload(self):
        outcomes = self._outcomes
        return outcomes if self._group else outcomes[0]


def _query_datasets(query) -> tuple[str, ...]:
    """Sorted base dataset names a query's FROM clause references."""
    tables = getattr(query, "tables", ())
    return tuple(sorted({table.dataset for table in tables}))


def _tenants_of(handles) -> tuple[str, ...]:
    """Distinct non-empty tenant names, in participant order."""
    return tuple(dict.fromkeys(h.tenant for h in handles if h.tenant))


@dataclass
class _InFlightJob:
    """One launched cluster job awaiting its completion instant."""

    end_seconds: float
    order: int  # launch sequence; heap tie-break keeps pops deterministic
    start_seconds: float
    slot: int
    entries: list[tuple[QueryHandle, int]] = field(default_factory=list)
    outcomes: list[JobOutcome] = field(default_factory=list)
    participants: list[QueryHandle] = field(default_factory=list)

    def __lt__(self, other: _InFlightJob) -> bool:
        return (self.end_seconds, self.order) < (other.end_seconds, other.order)


class JobScheduler:
    """Admission + space sharing + batching over one simulated cluster."""

    def __init__(self, executor: Executor, config: SchedulerConfig | None = None) -> None:
        self.executor = executor
        self.config = config or SchedulerConfig()
        #: the shared simulated clock (latest completion processed so far)
        self.now = 0.0
        #: cluster jobs actually launched (merged scans count once)
        self.cluster_jobs = 0
        #: base-dataset scans avoided by merging pushdown jobs
        self.scans_saved = 0
        self.timeline = ClusterTimeline()
        self._waiting: list[QueryHandle] = []
        self._running: list[QueryHandle] = []
        #: min-heap of launched jobs keyed by (end time, launch order)
        self._in_flight: list[_InFlightJob] = []
        #: (query_id, request_index) pairs currently launched
        self._busy: set[tuple[int, int]] = set()
        #: free slice-lane ids (min-heap so lanes fill lowest-first)
        self._free_slots: list[int] = list(range(self.config.job_slots))
        heapq.heapify(self._free_slots)
        self._launch_order = 0
        self._next_id = 1
        self._submit_index = 0
        #: lifetime admissions per tenant (fair-admission bookkeeping).
        self._tenant_admissions: dict[str, int] = {}
        #: service hooks, ``None`` outside a QueryService (byte-identical):
        #: ``on_admit(handle) -> ExecutionResult | None`` may answer an
        #: admitted query from a cache before its driver is even created;
        #: ``on_finish(handle, result)`` observes every completed result.
        self.on_admit = None
        self.on_finish = None
        #: cache-token -> scan-signature ledger shared across this
        #: scheduler's queries (the Q004 cross-query collision check).
        self._dataflow_tokens: dict[str, tuple[str, ...]] = {}

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        query: Query,
        strategy,
        session,
        priority: int = 0,
        label: str = "",
        tenant: str = "",
    ) -> QueryHandle:
        """Queue one described query (strategy + priority) for execution.

        Nothing runs until :meth:`run_all`; higher ``priority`` is admitted
        and serviced first, FIFO within a priority level (or round-robin
        across tenants under ``fair_tenants``). A bounded queue
        (``max_queued``) rejects the submission with
        :class:`~repro.common.errors.AdmissionError` when full.
        """
        if (
            self.config.max_queued is not None
            and len(self._waiting) >= self.config.max_queued
        ):
            raise AdmissionError(
                f"admission queue full ({len(self._waiting)} waiting, "
                f"max_queued={self.config.max_queued}); "
                f"rejecting {label or 'query'!r}"
                + (f" from tenant {tenant!r}" if tenant else "")
            )
        handle = QueryHandle(
            query_id=self._next_id,
            query=query,
            strategy=strategy,
            session=session,
            priority=priority,
            label=label,
            submitted_at=self.now,
            submit_index=self._submit_index,
            tenant=tenant,
        )
        self._next_id += 1
        self._submit_index += 1
        self._waiting.append(handle)
        return handle

    # -- the event loop -------------------------------------------------------

    def run_all(self) -> list[QueryHandle]:
        """Drain the queue: admit, launch onto free slices, complete, repeat.

        A failing query (an injected ``SimulatedFailure``, or a real executor
        error) is marked failed on its handle — its error re-raises from
        ``result()`` — and every other query's schedule and results proceed
        untouched.
        """
        finished: list[QueryHandle] = []
        self._admit(finished)
        while self._running or self._in_flight:
            launched = self._launch_wave(finished)
            if launched:
                continue
            if not self._in_flight:
                raise ReproError(
                    "scheduler wedged: running queries but nothing launchable"
                )
            self._complete_next(finished)
        return finished

    def _pop_next_admission(self) -> QueryHandle:
        """The next waiting query to admit.

        Plain FIFO within a priority level by default (the historical order).
        Under ``fair_tenants`` the tie-break inside a priority level is the
        tenant with the fewest lifetime admissions — a deficit round-robin —
        so a tenant flooding thousands of submissions cannot push another
        tenant's single query to the back of the queue. FIFO still holds
        *within* each tenant.
        """
        if not self.config.fair_tenants:
            self._waiting.sort(key=lambda h: (-h.priority, h.submit_index))
            return self._waiting.pop(0)
        best_index = 0
        best_key = None
        for index, handle in enumerate(self._waiting):
            key = (
                -handle.priority,
                self._tenant_admissions.get(handle.tenant, 0),
                handle.submit_index,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return self._waiting.pop(best_index)

    def _admit(self, finished: list[QueryHandle]) -> None:
        while self._waiting and len(self._running) < self.config.max_concurrent_queries:
            handle = self._pop_next_admission()
            handle.admitted_at = self.now
            # Time spent waiting for an admission slot is queueing delay too.
            handle.queue_delay_seconds += self.now - handle.submitted_at
            handle.status = "running"
            self._tenant_admissions[handle.tenant] = (
                self._tenant_admissions.get(handle.tenant, 0) + 1
            )
            if self.on_admit is not None:
                cached = self.on_admit(handle)
                if cached is not None:
                    # Result-cache hit: the query is answered without ever
                    # creating its driver or launching a job. It still paid
                    # any admission wait (the delay is real); it charges
                    # zero busy seconds.
                    self._finish(handle, cached, cache_hit=True)
                    finished.append(handle)
                    continue
            handle._generator = handle.strategy.stages(
                handle.query, handle.session, namespace=f"__q{handle.query_id}"
            )
            self._advance(handle, first=True)
            if handle.status == "running":
                self._running.append(handle)
            else:
                finished.append(handle)

    def _advance(self, handle: QueryHandle, first: bool = False) -> None:
        """Send the collected outcome(s) in; park at the next request."""
        payload = None if first else handle._payload()
        while True:
            try:
                item = handle._generator.send(payload)
            except StopIteration as stop:
                self._finish(handle, stop.value)
                return
            except BaseException as exc:  # SimulatedFailure and real bugs alike
                self._fail(handle, exc)
                return
            if isinstance(item, JobRequest):
                handle._group = False
                handle._requests = [item]
            else:
                requests = list(item)
                if not requests:
                    payload = []  # empty group: answer immediately
                    continue
                handle._group = True
                handle._requests = requests
            handle._outcomes = [None] * len(handle._requests)
            handle._cursor = 0
            handle.ready_since = self.now
            return

    def _service_order(self) -> list[QueryHandle]:
        """Priority first, then longest-waiting, then admission order."""
        return sorted(
            self._running,
            key=lambda h: (-h.priority, h.ready_since, h.submit_index),
        )

    def _first_ready_index(self, handle: QueryHandle) -> int | None:
        """The lowest unanswered, not-in-flight request index, if any."""
        for index in range(handle._cursor, len(handle._requests)):
            if (
                handle._outcomes[index] is None
                and (handle.query_id, index) not in self._busy
            ):
                return index
        return None

    def _gather_batch(
        self, leader: QueryHandle, lead_index: int
    ) -> list[tuple[QueryHandle, int]]:
        """The merged-scan party for the leader's ready request.

        Eligible mates are consecutive same-dataset requests of the leader's
        own group, plus every other running query's *next* ready request
        (never out of order within a query) over the same base dataset.
        """
        request = leader._requests[lead_index]
        entries = [(leader, lead_index)]
        key = request.batch_key
        if key is None or not self.config.batch_pushdown_scans:
            return entries
        index = lead_index + 1
        while (
            index < len(leader._requests)
            and leader._outcomes[index] is None
            and (leader.query_id, index) not in self._busy
            and leader._requests[index].batch_key == key
        ):
            entries.append((leader, index))
            index += 1
        for other in self._service_order():
            if other is leader:
                continue
            mate = self._first_ready_index(other)
            if mate is None or other._requests[mate].batch_key != key:
                continue
            entries.append((other, mate))
            index = mate + 1
            while (
                index < len(other._requests)
                and other._outcomes[index] is None
                and (other.query_id, index) not in self._busy
                and other._requests[index].batch_key == key
            ):
                entries.append((other, index))
                index += 1
        return entries

    # -- launching ------------------------------------------------------------

    def _launch_wave(self, finished: list[QueryHandle]) -> int:
        """Fill free slots with ready work; returns the number of launches.

        All launches of one wave happen at the same clock instant, and the
        slice width is an even split of the cluster's partitions across the
        jobs active once the wave is up (in-flight jobs keep the slice they
        were launched with) — the full cluster when a job runs alone.
        """
        plans: list[list[tuple[QueryHandle, int]]] = []
        while len(self._in_flight) + len(plans) < self.config.job_slots:
            ready = self._next_ready()
            if ready is None:
                break
            entries = self._gather_batch(*ready)
            for handle, index in entries:
                self._busy.add((handle.query_id, index))
            plans.append(entries)
        if not plans:
            return 0
        if self.config.job_slots == 1:
            # Serial schedule: skip the slice view entirely so accounting is
            # the exact object (and floats) of the pre-space-sharing path.
            widths: list[int | None] = [None] * len(plans)
        else:
            active = len(self._in_flight) + len(plans)
            even = max(1, self.executor.cluster.partitions // active)
            if self.config.adaptive_slices:
                widths = self._adaptive_widths(plans, even)
            else:
                widths = [even] * len(plans)
        for entries, slice_partitions in zip(plans, widths, strict=True):
            self._launch_job(entries, slice_partitions, finished)
        return len(plans)

    def _adaptive_widths(
        self, plans: list[list[tuple[QueryHandle, int]]], even: int
    ) -> list[int]:
        """Per-job slice widths proportional to estimated job size.

        The wave's partition budget is what the even split would hand out
        (``even`` partitions per job — in-flight jobs keep the slices they
        launched with), redistributed across the wave's jobs by the lead
        request's size estimate: the optimizer's estimated output rows when
        it recorded one, else the compiled plan's estimate. Every job keeps
        at least one partition, and rounding is deterministic (largest
        fractional share first, ties by wave position).
        """
        weights = []
        for entries in plans:
            handle, index = entries[0]
            request = handle._requests[index]
            weight = 0.0
            if request.estimate is not None:
                weight = float(request.estimate[1])
            elif request.job is not None and request.job.plan is not None:
                weight = float(request.job.plan.estimated_rows)
            weights.append(weight if weight > 0.0 else 1.0)
        budget = even * len(plans)
        total = sum(weights)
        raw = [budget * weight / total for weight in weights]
        widths = [max(1, int(share)) for share in raw]
        leftover = budget - sum(widths)
        if leftover > 0:
            # Hand remaining partitions to the largest fractional shares.
            order = sorted(
                range(len(plans)),
                key=lambda i: (-(raw[i] - int(raw[i])), i),
            )
            for i in range(leftover):
                widths[order[i % len(order)]] += 1
        return widths

    def _next_ready(self) -> tuple[QueryHandle, int] | None:
        for handle in self._service_order():
            index = self._first_ready_index(handle)
            if index is not None:
                return handle, index
        return None

    def _launch_job(
        self,
        entries: list[tuple[QueryHandle, int]],
        slice_partitions: int | None,
        finished: list[QueryHandle],
    ) -> None:
        count = len(entries)
        start = self.now

        performed: list[tuple[QueryHandle, int, JobOutcome]] = []
        failed: list[QueryHandle] = []
        for position, (handle, index) in enumerate(entries):
            if handle.status != "running":
                continue  # an earlier entry of this very handle failed
            share = (position, count) if count > 1 else None
            try:
                outcome = run_request(
                    self.executor,
                    handle._requests[index],
                    share,
                    partitions=slice_partitions,
                )
            except BaseException as exc:  # executor/operator errors
                self._fail(handle, exc)
                failed.append(handle)
                continue
            performed.append((handle, index, outcome))
        for handle in failed:
            self._busy = {
                (qid, i) for (qid, i) in self._busy if qid != handle.query_id
            }
            if handle in self._running:
                self._running.remove(handle)
            finished.append(handle)
        if not performed:
            return  # every branch failed before doing chargeable work

        duration = sum(outcome.metrics.total_seconds for _, _, outcome in performed)

        participants: list[QueryHandle] = []
        delays: dict[int, float] = {}
        for handle, _, _ in performed:
            if handle not in participants:
                participants.append(handle)
                delay = start - handle.ready_since
                handle.queue_delay_seconds += delay
                handle.ready_since = start
                if delay > 0.0:
                    delays[handle.query_id] = delay
        self.cluster_jobs += 1
        if count > 1:
            self.scans_saved += count - 1

        lead_handle, lead_index, _ = performed[0]
        lead_request = lead_handle._requests[lead_index]
        label = (
            lead_request.phase
            if count == 1
            else f"scan[{lead_request.batch_key}] ×{count}"
        )
        slot = heapq.heappop(self._free_slots)
        end = start + duration
        self.timeline.record(
            TimelineEvent(
                label=label,
                kind=lead_request.kind if count == 1 else "batched-scan",
                start_seconds=start,
                end_seconds=end,
                queries=tuple(h.query_id for h in participants),
                batched=count > 1,
                queue_delays=delays,
                slot=slot if self.config.job_slots > 1 else 0,
                slice_partitions=slice_partitions,
                tenants=_tenants_of(participants),
            )
        )
        self._launch_order += 1
        heapq.heappush(
            self._in_flight,
            _InFlightJob(
                end_seconds=end,
                order=self._launch_order,
                start_seconds=start,
                slot=slot,
                entries=[(handle, index) for handle, index, _ in performed],
                outcomes=[outcome for _, _, outcome in performed],
                participants=participants,
            ),
        )

    # -- completion -----------------------------------------------------------

    def _complete_next(self, finished: list[QueryHandle]) -> None:
        """Advance the clock to the earliest in-flight completion."""
        job = heapq.heappop(self._in_flight)
        self.now = job.end_seconds
        heapq.heappush(self._free_slots, job.slot)
        for (handle, index), outcome in zip(job.entries, job.outcomes, strict=True):
            self._busy.discard((handle.query_id, index))
            handle._record_outcome(index, outcome)
        for handle in job.participants:
            if handle.status != "running":
                continue  # failed by a sibling launch while this job flew
            handle.ready_since = self.now
            if not handle._has_pending():
                self._advance(handle)
                if handle.status != "running":
                    self._running.remove(handle)
                    finished.append(handle)
        self._admit(finished)

    def _finish(self, handle: QueryHandle, result, cache_hit: bool = False) -> None:
        # Query-level verification (DESIGN.md §14): before the namespace is
        # released, replay the query's recorded dataflow ledger through the
        # Q001-Q006 checks. Zero simulated cost (host time metered on
        # VerifierStats); a finding routes through the ordinary failure path
        # so ``result()`` re-raises a PlanVerificationError. Cache hits ran
        # no jobs, and traceless results recorded no ledger to audit.
        if (
            not cache_hit
            and isinstance(result, ExecutionResult)
            and getattr(result, "trace", None) is not None
            and getattr(self.executor, "verify_plans", True)
        ):
            from repro.analysis.diagnostics import PlanVerificationError
            from repro.analysis.runtime import verify_query_completion

            diagnostics = verify_query_completion(
                self.executor,
                result.trace,
                namespace=f"__q{handle.query_id}",
                metrics_total=result.metrics.total_seconds,
                token_registry=self._dataflow_tokens,
                job_label=handle.label,
            )
            if diagnostics:
                self._fail(
                    handle,
                    PlanVerificationError(diagnostics, job_label=handle.label),
                )
                return
        handle.finished_at = self.now
        handle.status = "done"
        handle._result = result
        if isinstance(result, ExecutionResult):
            info = ScheduleInfo(
                query_id=handle.query_id,
                priority=handle.priority,
                submitted_at=handle.submitted_at,
                admitted_at=(
                    handle.admitted_at
                    if handle.admitted_at is not None
                    else handle.submitted_at
                ),
                finished_at=handle.finished_at,
                queue_delay_seconds=handle.queue_delay_seconds,
                busy_seconds=result.metrics.total_seconds,
                tenant=handle.tenant,
                cache_hit=cache_hit,
            )
            result.schedule = info
            handle.schedule = info
            if cache_hit:
                # A cached answer ran no cluster job: it must not feed the
                # feedback history (no trace, zero cost — it would dilute
                # the spill ratio) and there is nothing new to cache. A
                # zero-length timeline event keeps it visible per tenant.
                self.timeline.record(
                    TimelineEvent(
                        label=f"{handle.label} cache-hit",
                        kind="cache-hit",
                        start_seconds=self.now,
                        end_seconds=self.now,
                        queries=(handle.query_id,),
                        tenants=_tenants_of((handle,)),
                    )
                )
            else:
                # Feed the finished run into the owning session's cross-query
                # feedback history (misestimates + spills). Pure observation:
                # it never mutates the result and charges nothing.
                feedback = getattr(handle.session, "feedback", None)
                if feedback is not None:
                    feedback.observe_result(
                        result, datasets=_query_datasets(handle.query)
                    )
                if self.on_finish is not None:
                    self.on_finish(handle, result)
        self._release_namespace(handle)

    def _fail(self, handle: QueryHandle, error: BaseException) -> None:
        handle.finished_at = self.now
        handle.status = "failed"
        handle._error = error
        # Run the driver's finally-blocks: an executor error leaves the
        # generator suspended at its yield, and without close() its cleanup
        # never runs. close() is a no-op for an already-exhausted generator.
        generator = handle._generator
        if generator is not None:
            try:
                generator.close()
            except BaseException:
                pass  # cleanup must never mask the original failure
        handle.schedule = ScheduleInfo(
            query_id=handle.query_id,
            priority=handle.priority,
            submitted_at=handle.submitted_at,
            admitted_at=(
                handle.admitted_at
                if handle.admitted_at is not None
                else handle.submitted_at
            ),
            finished_at=handle.finished_at,
            queue_delay_seconds=handle.queue_delay_seconds,
            busy_seconds=handle.charged_seconds,
            error=f"{type(error).__name__}: {error}",
            tenant=handle.tenant,
        )
        self.timeline.record(
            TimelineEvent(
                label=f"{handle.label} failed ({type(error).__name__})",
                kind="failed",
                start_seconds=self.now,
                end_seconds=self.now,
                queries=(handle.query_id,),
                tenants=_tenants_of((handle,)),
            )
        )
        # A checkpoint-carrying failure (SimulatedFailure) keeps its
        # intermediates: they *are* the Section-8 recovery state that
        # ``DynamicOptimizer.resume`` continues from. Anything else is
        # garbage no one can reach — drop it so sustained traffic with
        # failures cannot grow the session catalogs without bound.
        if getattr(error, "checkpoint", None) is None:
            self._release_namespace(handle)

    def _release_namespace(self, handle: QueryHandle) -> None:
        """Drop the query's ``__q<id>`` intermediates + their statistics."""
        session = handle.session
        datasets = getattr(session, "datasets", None)
        if datasets is None:
            return
        statistics = getattr(session, "statistics", None)
        prefix = f"__q{handle.query_id}__"
        for name in list(datasets.names()):
            if name.startswith(prefix):
                datasets.drop(name)
                if statistics is not None and statistics.has(name):
                    statistics.remove(name)
