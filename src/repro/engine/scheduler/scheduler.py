"""The job scheduler: concurrent query admission on the simulated cluster.

The paper frames every re-optimization stage as an independently submitted
Hyracks job; this module exploits exactly that seam. Drivers are resumable
stage generators (``yield JobRequest → receive JobOutcome``); the scheduler
parks each admitted query at its pending request and interleaves requests of
different queries on one shared simulated clock:

- **Admission.** At most ``max_concurrent_queries`` queries run at once;
  the rest wait in a priority/FIFO admission queue and are charged the wait.
- **One job at a time.** Jobs use every partition of the simulated cluster,
  so the cluster timeline is a sequence of job intervals; fairness comes
  from interleaving *stages*, picking the admitted query that has waited
  longest (priority first).
- **Queueing delay.** Whenever a query's next job is ready but the cluster
  is busy with someone else's job (or the query is waiting for admission),
  the gap is charged to that query's schedule record — never to its
  :class:`~repro.engine.metrics.JobMetrics`, which stay byte-identical to a
  solo run. A solo query therefore accrues zero delay: delay only appears
  under saturation.
- **Pushdown scan batching.** Pending pushdown requests (same or different
  queries) that scan the same base dataset merge into one cluster job: the
  base scan and job launch are charged once and split evenly across the
  branches, while each branch keeps its own select/sink work, intermediate,
  statistics catalog and trace. This is what makes a concurrent
  multi-predicate workload cheaper than the sum of its solo runs.

Per-query results are the ordinary :class:`ExecutionResult`; the scheduler
annotates each with a :class:`ScheduleInfo` and records every cluster job in
a :class:`~repro.obs.timeline.ClusterTimeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import ReproError
from repro.engine.metrics import ExecutionResult
from repro.engine.scheduler.request import JobOutcome, JobRequest, run_request
from repro.obs.timeline import ClusterTimeline, TimelineEvent

if TYPE_CHECKING:
    from repro.engine.executor import Executor
    from repro.lang.ast import Query


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission and batching policy of one scheduler instance."""

    #: queries allowed past admission at once; submissions beyond this wait.
    max_concurrent_queries: int = 4
    #: merge pending pushdown scans over the same base dataset into one job.
    batch_pushdown_scans: bool = True

    def __post_init__(self) -> None:
        if self.max_concurrent_queries < 1:
            raise ReproError("scheduler needs at least one admission slot")


@dataclass(frozen=True)
class ScheduleInfo:
    """How one query fared on the shared cluster timeline."""

    query_id: int
    priority: int
    submitted_at: float
    admitted_at: float
    finished_at: float
    #: simulated seconds spent waiting (admission queue + cluster busy with
    #: other queries' jobs); zero when the query had the cluster to itself.
    queue_delay_seconds: float
    #: the query's own charged work (== its metrics.total_seconds).
    busy_seconds: float

    @property
    def latency_seconds(self) -> float:
        """Submission-to-completion time on the shared clock."""
        return self.finished_at - self.submitted_at


class QueryHandle:
    """One submitted query's lifecycle: queued → running → done/failed."""

    def __init__(
        self,
        query_id: int,
        query: "Query",
        strategy,
        session,
        priority: int,
        label: str,
        submitted_at: float,
        submit_index: int,
    ) -> None:
        self.query_id = query_id
        self.query = query
        self.strategy = strategy
        self.session = session
        self.priority = priority
        self.label = label or f"q{query_id}"
        self.status = "queued"
        self.submitted_at = submitted_at
        self.submit_index = submit_index
        self.admitted_at: float | None = None
        self.finished_at: float | None = None
        self.queue_delay_seconds = 0.0
        #: shared-clock instant since which the query's next work is ready
        self.ready_since = submitted_at
        self._generator = None
        self._group = False
        self._requests: list[JobRequest] = []
        self._outcomes: list[JobOutcome | None] = []
        self._cursor = 0
        self._result: ExecutionResult | None = None
        self._error: BaseException | None = None

    # -- public API -----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.status == "done"

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def error(self) -> BaseException | None:
        return self._error

    def result(self) -> ExecutionResult:
        """The finished result; re-raises the query's error if it failed."""
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise ReproError(
                f"query {self.label!r} has not finished; call run_all() first"
            )
        return self._result

    # -- scheduler internals --------------------------------------------------

    def _pending_request(self) -> JobRequest:
        return self._requests[self._cursor]

    def _has_pending(self) -> bool:
        return self._cursor < len(self._requests)

    def _record_outcome(self, index: int, outcome: JobOutcome) -> None:
        self._outcomes[index] = outcome
        while self._cursor < len(self._outcomes) and self._outcomes[self._cursor]:
            self._cursor += 1

    def _payload(self):
        outcomes = self._outcomes
        return outcomes if self._group else outcomes[0]


class JobScheduler:
    """Admission + interleaving + batching over one simulated cluster."""

    def __init__(self, executor: "Executor", config: SchedulerConfig | None = None) -> None:
        self.executor = executor
        self.config = config or SchedulerConfig()
        #: the shared simulated clock (end of the last completed job)
        self.now = 0.0
        #: cluster jobs actually launched (merged scans count once)
        self.cluster_jobs = 0
        #: base-dataset scans avoided by merging pushdown jobs
        self.scans_saved = 0
        self.timeline = ClusterTimeline()
        self._waiting: list[QueryHandle] = []
        self._running: list[QueryHandle] = []
        self._next_id = 1
        self._submit_index = 0

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        query: "Query",
        strategy,
        session,
        priority: int = 0,
        label: str = "",
    ) -> QueryHandle:
        """Queue one described query (strategy + priority) for execution.

        Nothing runs until :meth:`run_all`; higher ``priority`` is admitted
        and serviced first, FIFO within a priority level.
        """
        handle = QueryHandle(
            query_id=self._next_id,
            query=query,
            strategy=strategy,
            session=session,
            priority=priority,
            label=label,
            submitted_at=self.now,
            submit_index=self._submit_index,
        )
        self._next_id += 1
        self._submit_index += 1
        self._waiting.append(handle)
        return handle

    # -- the event loop -------------------------------------------------------

    def run_all(self) -> list[QueryHandle]:
        """Drain the queue: admit, interleave, batch, until nothing is left.

        A failing query (e.g. an injected ``SimulatedFailure``) is marked
        failed on its handle — its error re-raises from ``result()`` — and
        every other query's schedule and results proceed untouched.
        """
        finished: list[QueryHandle] = []
        self._admit(finished)
        while self._running:
            self._step(finished)
        return finished

    def _admit(self, finished: list[QueryHandle]) -> None:
        self._waiting.sort(key=lambda h: (-h.priority, h.submit_index))
        while self._waiting and len(self._running) < self.config.max_concurrent_queries:
            handle = self._waiting.pop(0)
            handle.admitted_at = self.now
            # Time spent waiting for an admission slot is queueing delay too.
            handle.queue_delay_seconds += self.now - handle.submitted_at
            handle.status = "running"
            handle._generator = handle.strategy.stages(
                handle.query, handle.session, namespace=f"__q{handle.query_id}"
            )
            self._advance(handle, first=True)
            if handle.status == "running":
                self._running.append(handle)
            else:
                finished.append(handle)

    def _advance(self, handle: QueryHandle, first: bool = False) -> None:
        """Send the collected outcome(s) in; park at the next request."""
        payload = None if first else handle._payload()
        while True:
            try:
                item = handle._generator.send(payload)
            except StopIteration as stop:
                self._finish(handle, stop.value)
                return
            except BaseException as exc:  # SimulatedFailure and real bugs alike
                self._fail(handle, exc)
                return
            if isinstance(item, JobRequest):
                handle._group = False
                handle._requests = [item]
            else:
                requests = list(item)
                if not requests:
                    payload = []  # empty group: answer immediately
                    continue
                handle._group = True
                handle._requests = requests
            handle._outcomes = [None] * len(handle._requests)
            handle._cursor = 0
            handle.ready_since = self.now
            return

    def _service_order(self) -> list[QueryHandle]:
        """Priority first, then longest-waiting, then admission order."""
        return sorted(
            self._running,
            key=lambda h: (-h.priority, h.ready_since, h.submit_index),
        )

    def _gather_batch(self, leader: QueryHandle) -> list[tuple[QueryHandle, int]]:
        """The merged-scan party for the leader's pending request.

        Eligible mates are consecutive same-dataset requests of the leader's
        own group, plus every other running query's *next* pending request
        (never out of order within a query) over the same base dataset.
        """
        request = leader._pending_request()
        entries = [(leader, leader._cursor)]
        key = request.batch_key
        if key is None or not self.config.batch_pushdown_scans:
            return entries
        index = leader._cursor + 1
        while (
            index < len(leader._requests)
            and leader._outcomes[index] is None
            and leader._requests[index].batch_key == key
        ):
            entries.append((leader, index))
            index += 1
        for other in self._service_order():
            if other is leader:
                continue
            mate = other._pending_request()
            if mate.batch_key != key:
                continue
            entries.append((other, other._cursor))
            index = other._cursor + 1
            while (
                index < len(other._requests)
                and other._outcomes[index] is None
                and other._requests[index].batch_key == key
            ):
                entries.append((other, index))
                index += 1
        return entries

    def _step(self, finished: list[QueryHandle]) -> None:
        leader = self._service_order()[0]
        entries = self._gather_batch(leader)
        count = len(entries)
        start = self.now

        outcomes: list[JobOutcome] = []
        for position, (handle, index) in enumerate(entries):
            share = (position, count) if count > 1 else None
            outcomes.append(
                run_request(self.executor, handle._requests[index], share)
            )
        duration = sum(outcome.metrics.total_seconds for outcome in outcomes)

        participants: list[QueryHandle] = []
        delays: dict[int, float] = {}
        for handle, _ in entries:
            if handle not in participants:
                participants.append(handle)
                delay = start - handle.ready_since
                handle.queue_delay_seconds += delay
                if delay > 0.0:
                    delays[handle.query_id] = delay
        self.now = start + duration
        self.cluster_jobs += 1
        if count > 1:
            self.scans_saved += count - 1

        lead_request = leader._pending_request()
        label = (
            lead_request.phase
            if count == 1
            else f"scan[{lead_request.batch_key}] ×{count}"
        )
        self.timeline.record(
            TimelineEvent(
                label=label,
                kind=lead_request.kind if count == 1 else "batched-scan",
                start_seconds=start,
                end_seconds=self.now,
                queries=tuple(h.query_id for h in participants),
                batched=count > 1,
                queue_delays=delays,
            )
        )

        for (handle, index), outcome in zip(entries, outcomes):
            handle._record_outcome(index, outcome)
        for handle in participants:
            handle.ready_since = self.now
            if not handle._has_pending():
                self._advance(handle)
                if handle.status != "running":
                    self._running.remove(handle)
                    finished.append(handle)
        self._admit(finished)

    # -- completion -----------------------------------------------------------

    def _finish(self, handle: QueryHandle, result) -> None:
        handle.finished_at = self.now
        handle.status = "done"
        handle._result = result
        if isinstance(result, ExecutionResult):
            result.schedule = ScheduleInfo(
                query_id=handle.query_id,
                priority=handle.priority,
                submitted_at=handle.submitted_at,
                admitted_at=(
                    handle.admitted_at
                    if handle.admitted_at is not None
                    else handle.submitted_at
                ),
                finished_at=handle.finished_at,
                queue_delay_seconds=handle.queue_delay_seconds,
                busy_seconds=result.metrics.total_seconds,
            )
            # Feed the finished run into the owning session's cross-query
            # feedback history (misestimates + spills). Pure observation:
            # it never mutates the result and charges nothing.
            feedback = getattr(handle.session, "feedback", None)
            if feedback is not None:
                feedback.observe_result(result)

    def _fail(self, handle: QueryHandle, error: BaseException) -> None:
        handle.finished_at = self.now
        handle.status = "failed"
        handle._error = error
