"""Job scheduling layer: stage generators, admission, shared-cluster clock."""

from repro.engine.scheduler.request import (
    JobOutcome,
    JobRequest,
    drive_stages,
    run_request,
)
from repro.engine.scheduler.scheduler import (
    JobScheduler,
    QueryHandle,
    ScheduleInfo,
    SchedulerConfig,
)

__all__ = [
    "JobOutcome",
    "JobRequest",
    "JobScheduler",
    "QueryHandle",
    "ScheduleInfo",
    "SchedulerConfig",
    "drive_stages",
    "run_request",
]
