"""Job execution against the simulated cluster.

The executor wires together the cluster config, cost model, catalogs and
evaluation context, runs jobs, and returns their output with per-job metrics.
It is deliberately stateless between jobs except through the catalogs — which
is exactly how re-optimization points communicate (materialized intermediates
and their statistics live in the catalogs, not in the executor).
"""

from __future__ import annotations

from repro.analysis.runtime import VerifierStats
from repro.cluster.config import ClusterConfig
from repro.cluster.cost import CostModel, CostParameters
from repro.engine import vector
from repro.engine.job import Job
from repro.engine.metrics import JobMetrics
from repro.engine.operators.base import ExecState, OperatorData
from repro.lang.ast import EvaluationContext
from repro.lang.udf import UdfRegistry, default_registry
from repro.stats.catalog import StatisticsCatalog
from repro.storage.catalog import DatasetCatalog


class Executor:
    """Runs :class:`~repro.engine.job.Job` trees and accounts their cost."""

    def __init__(
        self,
        cluster: ClusterConfig,
        datasets: DatasetCatalog,
        statistics: StatisticsCatalog,
        udfs: UdfRegistry | None = None,
        cost_parameters: CostParameters | None = None,
        verify_plans: bool = True,
        engine: str | None = None,
        chunk_size: int | None = None,
    ) -> None:
        self.cluster = cluster
        self.datasets = datasets
        self.statistics = statistics
        self.udfs = udfs or default_registry()
        self.cost = CostModel(cluster, cost_parameters)
        #: verify-on-compile gate (DESIGN.md §9): every scheduled job is
        #: checked against rules P001-P007 before it launches. Zero simulated
        #: cost; host wall time accrues on :attr:`verifier_stats`.
        self.verify_plans = verify_plans
        self.verifier_stats = VerifierStats()
        #: engine mode for every job this executor runs; ``None`` defers to
        #: the process default (``repro.engine.vector.default_engine``) at
        #: each ``execute`` call, so flipping the default mid-session takes
        #: effect immediately. Results are byte-identical either way
        #: (DESIGN.md §10).
        self.engine = engine if engine is None else vector.resolve_engine(engine)
        self.chunk_size = chunk_size
        #: intermediate-result cache (set by the query service; ``None`` for
        #: plain sessions). Consulted by the scheduler's request runner, not
        #: by ``execute`` itself, so the executor stays stateless per job.
        self.cache = None

    def execute(
        self,
        job: Job,
        parameters: dict | None = None,
        statistics: StatisticsCatalog | None = None,
        tracer=None,
        partitions: int | None = None,
    ) -> tuple[OperatorData, JobMetrics]:
        """Run one job; returns its output data and this job's metrics.

        ``statistics`` overrides the catalog that Sink operators register
        online statistics into — optimizers pass their private working copy
        so experiment runs never pollute the session's ingestion statistics.
        ``tracer`` (an :class:`repro.obs.Tracer`) makes every operator open a
        trace span; it observes metrics without charging anything, so the
        returned metrics are identical with or without it.
        ``partitions`` restricts the job to a partition slice of the cluster
        (the space-shared scheduler's per-job allotment): all cost formulas
        divide by the slice width and the join memory budget shrinks with
        it, while data placement — and therefore the job's output rows —
        stays exactly the same.
        """
        metrics = JobMetrics()
        metrics.jobs = 1
        cost = self.cost if partitions is None else self.cost.with_partitions(partitions)
        metrics.startup = cost.job_startup()
        state = ExecState(
            cluster=self.cluster,
            cost=cost,
            datasets=self.datasets,
            statistics=statistics if statistics is not None else self.statistics,
            evaluation=EvaluationContext(parameters or {}, self.udfs),
            metrics=metrics,
            tracer=tracer,
            engine=vector.resolve_engine(self.engine),
            chunk_size=(
                self.chunk_size
                if self.chunk_size is not None
                else vector.DEFAULT_CHUNK_SIZE
            ),
        )
        data = job.root.run(state)
        return data, metrics
