"""Post-join operators: group-by, order-by, limit.

Section 6.4: non-join operators "are evaluated after all the joins and
selections have been completed". The reproduction supports the tails the four
evaluation queries need: GROUP BY with an implicit COUNT(*), global ORDER BY,
and LIMIT.

The vectorized variants keep the row-wise semantics exactly: groups appear in
first-occurrence order (insertion-ordered dicts), the global sort is a stable
index sort over the same ``_sort_key`` total order, and LIMIT slices columns
in partition order.
"""

from __future__ import annotations

from repro.common.types import DataType
from repro.engine.data import (
    ColumnarData,
    ColumnPartition,
    LazyRowPartition,
    PartitionedData,
)
from repro.engine.exchange import columnar_hash_exchange, hash_exchange
from repro.engine.operators.base import ExecState, PhysicalOperator


class GroupByOp(PhysicalOperator):
    """Hash-partitioned grouping on the key columns with a COUNT(*) output."""

    def __init__(self, child: PhysicalOperator, keys: tuple[str, ...]) -> None:
        self.children = (child,)
        self.keys = tuple(keys)

    def execute_rows(self, state: ExecState) -> PartitionedData:
        data = self.children[0].run(state)
        keys = self.keys
        partitions = data.partitions
        if data.partitioned_on not in keys:
            partitions = hash_exchange(
                partitions,
                lambda row: tuple(row.get(k) for k in keys),
                state.cluster.partitions,
            )
            state.charge(
                "network", state.cost.hash_exchange(data.modeled_rows, data.row_width)
            )
        out_partitions: list[list[dict]] = []
        for partition in partitions:
            groups: dict = {}
            for row in partition:
                groups.setdefault(tuple(row.get(k) for k in keys), []).append(row)
            grouped = []
            for key_values, rows in groups.items():
                out = dict(zip(keys, key_values, strict=True))
                out["count"] = len(rows)
                grouped.append(out)
            out_partitions.append(grouped)
        state.charge("compute", state.cost.probe(data.modeled_rows))

        # Group counts are per modeled group; the number of *groups* does not
        # scale with the fact tables, so the output is unscaled.
        columns = {k: data.columns.get(k, DataType.STRING) for k in keys}
        columns["count"] = DataType.BIGINT
        return PartitionedData(out_partitions, columns, None)

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        data = self.children[0].run(state)
        keys = self.keys
        partitions = data.materialized()
        if data.partitioned_on not in keys:
            key_cols = [[p.column(k) for k in keys] for p in partitions]
            route_keys = [
                [tuple(col[i] for col in cols) for i in range(p.length)]
                for p, cols in zip(partitions, key_cols, strict=True)
            ]
            partitions = columnar_hash_exchange(
                partitions, route_keys, state.cluster.partitions
            )
            state.charge(
                "network", state.cost.hash_exchange(data.modeled_rows, data.row_width)
            )
        out_partitions: list[ColumnPartition] = []
        for partition in partitions:
            cols = [partition.column(k) for k in keys]
            counts: dict[tuple, int] = {}
            for i in range(partition.length):
                key = tuple(col[i] for col in cols)
                counts[key] = counts.get(key, 0) + 1
            out: dict[str, list] = {k: [] for k in keys}
            out["count"] = []
            for key, count in counts.items():
                for k, value in zip(keys, key, strict=True):
                    out[k].append(value)
                out["count"].append(count)
            out_partitions.append(ColumnPartition(out, len(counts)))
        state.charge("compute", state.cost.probe(data.modeled_rows))

        columns = {k: data.columns.get(k, DataType.STRING) for k in keys}
        columns["count"] = DataType.BIGINT
        return ColumnarData(out_partitions, columns, None)

    def label(self) -> str:
        return "GroupBy " + ", ".join(self.keys)


class OrderByOp(PhysicalOperator):
    """Global sort: rows are gathered and ordered by the key columns."""

    def __init__(self, child: PhysicalOperator, keys: tuple[str, ...]) -> None:
        self.children = (child,)
        self.keys = tuple(keys)

    def execute_rows(self, state: ExecState) -> PartitionedData:
        data = self.children[0].run(state)
        rows = sorted(
            data.all_rows(),
            key=lambda row: tuple(_sort_key(row.get(k)) for k in self.keys),
        )
        state.charge("compute", state.cost.probe(data.modeled_rows) * 2)
        partitions = [[] for _ in range(data.partition_count)]
        partitions[0] = rows
        return PartitionedData(partitions, data.columns, None, data.scale)

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        data = self.children[0].run(state)
        materialized = data.materialized()
        names: list[str] = []
        for partition in materialized:
            for name in partition.columns:
                if name not in names:
                    names.append(name)
        gathered = {name: [] for name in names}
        for partition in materialized:
            for name in names:
                gathered[name].extend(partition.column(name))
        total = sum(p.length for p in materialized)
        key_cols = [
            gathered.get(k, [None] * total) for k in self.keys
        ]
        order = sorted(
            range(total),
            key=lambda i: tuple(_sort_key(col[i]) for col in key_cols),
        )
        state.charge("compute", state.cost.probe(data.modeled_rows) * 2)
        sorted_cols = {
            name: [column[i] for i in order] for name, column in gathered.items()
        }
        partitions: list[ColumnPartition] = [
            ColumnPartition({name: [] for name in names}, 0)
            for _ in range(data.partition_count)
        ]
        partitions[0] = ColumnPartition(sorted_cols, total)
        return ColumnarData(partitions, data.columns, None, data.scale)

    def label(self) -> str:
        return "OrderBy " + ", ".join(self.keys)


def _sort_key(value: object) -> tuple:
    """Total order over mixed None/number/string values."""
    if value is None:
        return (0, "")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))


class LimitOp(PhysicalOperator):
    """Keep the first ``n`` rows (in partition order)."""

    def __init__(self, child: PhysicalOperator, n: int) -> None:
        self.children = (child,)
        self.n = n

    def execute_rows(self, state: ExecState) -> PartitionedData:
        data = self.children[0].run(state)
        remaining = self.n
        partitions = []
        for partition in data.partitions:
            take = partition[:remaining]
            remaining -= len(take)
            partitions.append(take)
        return PartitionedData(
            partitions, data.columns, data.partitioned_on, data.scale
        )

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        data = self.children[0].run(state)
        remaining = self.n
        partitions: list[ColumnPartition | LazyRowPartition] = []
        for partition in data.partitions:
            take = min(remaining, partition.length)
            remaining -= take
            if isinstance(partition, LazyRowPartition):
                partitions.append(
                    LazyRowPartition(
                        partition.rows[:take], partition.prefix, partition.live
                    )
                )
            else:
                partitions.append(
                    ColumnPartition(
                        {n: col[:take] for n, col in partition.columns.items()},
                        take,
                    )
                )
        return ColumnarData(
            partitions, data.columns, data.partitioned_on, data.scale
        )

    def label(self) -> str:
        return f"Limit {self.n}"
