"""Join operators: hash, broadcast, and indexed nested loop.

These implement the three algorithms described in Section 3 of the paper:

- **Hash join** — both inputs re-partitioned on the join key(s) unless one is
  already usefully partitioned (key/foreign-key joins on a dataset's primary
  key skip the exchange and "communication is saved"); then a per-partition
  dynamic hash join.
- **Broadcast join** — the (ideally small) build input is replicated to all
  partitions of the probe input; every partition builds a hash table over the
  full build side and probes its local probe portion, so the big side never
  moves.
- **Indexed nested loop join** — the build input is broadcast to all
  partitions of a *base dataset* with a secondary index on the join key;
  arriving rows immediately probe the local index.
"""

from __future__ import annotations

import enum

from repro.common.errors import ExecutionError
from repro.engine import vector
from repro.engine.data import ColumnarData, ColumnPartition, PartitionedData
from repro.engine.exchange import (
    broadcast_exchange,
    columnar_broadcast_exchange,
    columnar_hash_exchange,
    hash_exchange,
)
from repro.engine.operators.base import ExecState, PhysicalOperator


class JoinAlgorithm(enum.Enum):
    HASH = "hash"
    BROADCAST = "broadcast"
    INDEX_NESTED_LOOP = "inl"

    @property
    def plan_marker(self) -> str:
        """Appendix notation: plain ⋈ for hash, 'b' broadcast, 'i' INL."""
        if self is JoinAlgorithm.BROADCAST:
            return "b"
        if self is JoinAlgorithm.INDEX_NESTED_LOOP:
            return "i"
        return ""


def _key_fn(columns: tuple[str, ...]):
    """Join-key extractor; ``None`` signals a null key (SQL: never matches)."""
    if len(columns) == 1:
        column = columns[0]
        return lambda row: row.get(column)

    def composite(row: dict):
        key = tuple(row.get(c) for c in columns)
        if any(part is None for part in key):
            return None
        return key

    return composite


def _merge(build_row: dict, probe_row: dict) -> dict:
    merged = dict(probe_row)
    merged.update(build_row)
    return merged


def _merged_columns(probe_columns: dict, build_columns: dict) -> dict:
    """Join-output logical column map: probe's columns, build overwriting
    overlaps — the columnar mirror of ``_merge``'s dict-update semantics."""
    columns = dict(probe_columns)
    columns.update(build_columns)
    return columns


def _gather_join_output(
    columns: dict,
    build_part: ColumnPartition,
    probe_part: ColumnPartition,
    build_idx: list[int],
    probe_idx: list[int],
) -> ColumnPartition:
    """Materialize one join output partition from matched position pairs.

    Physical columns follow the logical map's order; names present on both
    sides are sourced from the build side (``_merge``: build wins).
    """
    build_names = build_part.columns.keys()
    probe_names = probe_part.columns.keys()
    out: dict[str, list] = {}
    for name in columns:
        if name in build_names:
            out[name] = vector.gather(build_part.columns[name], build_idx)
        elif name in probe_names:
            out[name] = vector.gather(probe_part.columns[name], probe_idx)
    return ColumnPartition(out, len(build_idx))


class HashJoinOp(PhysicalOperator):
    """Partitioned dynamic hash join.

    ``build_keys[i]`` joins against ``probe_keys[i]``; rows are routed by the
    first key column and residual conjuncts are checked by tuple equality.
    """

    algorithm = JoinAlgorithm.HASH

    def __init__(
        self,
        build: PhysicalOperator,
        probe: PhysicalOperator,
        build_keys: tuple[str, ...],
        probe_keys: tuple[str, ...],
    ) -> None:
        if len(build_keys) != len(probe_keys) or not build_keys:
            raise ExecutionError("join needs matching, non-empty key lists")
        self.children = (build, probe)
        self.build_keys = tuple(build_keys)
        self.probe_keys = tuple(probe_keys)

    def execute_rows(self, state: ExecState) -> PartitionedData:
        build = self.children[0].run(state)
        probe = self.children[1].run(state)
        partition_count = state.cluster.partitions

        build_parts = build.partitions
        if build.partitioned_on != self.build_keys[0]:
            build_parts = hash_exchange(
                build_parts, _key_fn(self.build_keys[:1]), partition_count
            )
            state.charge(
                "network", state.cost.hash_exchange(build.modeled_rows, build.row_width)
            )
        probe_parts = probe.partitions
        if probe.partitioned_on != self.probe_keys[0]:
            probe_parts = hash_exchange(
                probe_parts, _key_fn(self.probe_keys[:1]), partition_count
            )
            state.charge(
                "network", state.cost.hash_exchange(probe.modeled_rows, probe.row_width)
            )

        build_key = _key_fn(self.build_keys)
        probe_key = _key_fn(self.probe_keys)
        out_partitions: list[list[dict]] = []
        out_rows = 0
        for build_part, probe_part in zip(build_parts, probe_parts, strict=True):
            table: dict = {}
            for row in build_part:
                key = build_key(row)
                if key is not None:
                    table.setdefault(key, []).append(row)
            joined = []
            for row in probe_part:
                key = probe_key(row)
                if key is None:
                    continue
                for match in table.get(key, ()):
                    joined.append(_merge(match, row))
            out_rows += len(joined)
            out_partitions.append(joined)

        out_scale = max(build.scale, probe.scale)
        state.charge("compute", state.cost.hash_build(build.modeled_rows))
        state.charge(
            "compute", state.cost.probe(probe.modeled_rows + out_rows * out_scale)
        )
        state.charge(
            "spill",
            state.cost.spill(
                build.modeled_rows * build.row_width,
                probe.modeled_rows * probe.row_width,
            ),
        )
        state.metrics.tuples_joined += out_rows

        columns = dict(probe.columns)
        columns.update(build.columns)
        return PartitionedData(out_partitions, columns, self.probe_keys[0], out_scale)

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        build = self.children[0].run(state)
        probe = self.children[1].run(state)
        partition_count = state.cluster.partitions

        build_parts = build.materialized()
        if build.partitioned_on != self.build_keys[0]:
            build_parts = columnar_hash_exchange(
                build_parts,
                [p.column(self.build_keys[0]) for p in build_parts],
                partition_count,
            )
            state.charge(
                "network", state.cost.hash_exchange(build.modeled_rows, build.row_width)
            )
        probe_parts = probe.materialized()
        if probe.partitioned_on != self.probe_keys[0]:
            probe_parts = columnar_hash_exchange(
                probe_parts,
                [p.column(self.probe_keys[0]) for p in probe_parts],
                partition_count,
            )
            state.charge(
                "network", state.cost.hash_exchange(probe.modeled_rows, probe.row_width)
            )

        columns = _merged_columns(probe.columns, build.columns)
        out_partitions: list[ColumnPartition] = []
        out_rows = 0
        for build_part, probe_part in zip(build_parts, probe_parts, strict=True):
            table = vector.build_hash_table(
                vector.join_key_column(
                    build_part.columns, build_part.length, self.build_keys
                )
            )
            build_idx, probe_idx = vector.probe_hash_table(
                table,
                vector.join_key_column(
                    probe_part.columns, probe_part.length, self.probe_keys
                ),
            )
            out_rows += len(build_idx)
            out_partitions.append(
                _gather_join_output(
                    columns, build_part, probe_part, build_idx, probe_idx
                )
            )

        out_scale = max(build.scale, probe.scale)
        state.charge("compute", state.cost.hash_build(build.modeled_rows))
        state.charge(
            "compute", state.cost.probe(probe.modeled_rows + out_rows * out_scale)
        )
        state.charge(
            "spill",
            state.cost.spill(
                build.modeled_rows * build.row_width,
                probe.modeled_rows * probe.row_width,
            ),
        )
        state.metrics.tuples_joined += out_rows
        return ColumnarData(out_partitions, columns, self.probe_keys[0], out_scale)

    def label(self) -> str:
        pairs = ", ".join(
            f"{b} = {p}" for b, p in zip(self.build_keys, self.probe_keys, strict=True)
        )
        return f"HashJoin [{pairs}]"


class BroadcastJoinOp(PhysicalOperator):
    """Broadcast the build input to every partition of the probe input."""

    algorithm = JoinAlgorithm.BROADCAST

    def __init__(
        self,
        build: PhysicalOperator,
        probe: PhysicalOperator,
        build_keys: tuple[str, ...],
        probe_keys: tuple[str, ...],
    ) -> None:
        if len(build_keys) != len(probe_keys) or not build_keys:
            raise ExecutionError("join needs matching, non-empty key lists")
        self.children = (build, probe)
        self.build_keys = tuple(build_keys)
        self.probe_keys = tuple(probe_keys)

    def execute_rows(self, state: ExecState) -> PartitionedData:
        build = self.children[0].run(state)
        probe = self.children[1].run(state)

        gathered = broadcast_exchange(build.partitions)
        state.charge(
            "network",
            state.cost.broadcast_exchange(build.modeled_rows, build.row_width),
        )
        # One shared hash table stands in for the identical per-partition
        # copies; the cost model charged the replicated build above.
        state.charge("compute", state.cost.broadcast_build(build.modeled_rows))
        build_key = _key_fn(self.build_keys)
        table: dict = {}
        for row in gathered:
            key = build_key(row)
            if key is not None:
                table.setdefault(key, []).append(row)

        probe_key = _key_fn(self.probe_keys)
        out_partitions: list[list[dict]] = []
        out_rows = 0
        for partition in probe.partitions:
            joined = []
            for row in partition:
                key = probe_key(row)
                if key is None:
                    continue
                for match in table.get(key, ()):
                    joined.append(_merge(match, row))
            out_rows += len(joined)
            out_partitions.append(joined)

        out_scale = max(build.scale, probe.scale)
        state.charge(
            "compute", state.cost.probe(probe.modeled_rows + out_rows * out_scale)
        )
        state.metrics.tuples_joined += out_rows

        columns = dict(probe.columns)
        columns.update(build.columns)
        # The probe side never moved: its partitioning property survives.
        return PartitionedData(
            out_partitions, columns, probe.partitioned_on, out_scale
        )

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        build = self.children[0].run(state)
        probe = self.children[1].run(state)

        gathered = columnar_broadcast_exchange(build.materialized())
        state.charge(
            "network",
            state.cost.broadcast_exchange(build.modeled_rows, build.row_width),
        )
        state.charge("compute", state.cost.broadcast_build(build.modeled_rows))
        table = vector.build_hash_table(
            vector.join_key_column(
                gathered.columns, gathered.length, self.build_keys
            )
        )

        columns = _merged_columns(probe.columns, build.columns)
        out_partitions: list[ColumnPartition] = []
        out_rows = 0
        for partition in probe.materialized():
            build_idx, probe_idx = vector.probe_hash_table(
                table,
                vector.join_key_column(
                    partition.columns, partition.length, self.probe_keys
                ),
            )
            out_rows += len(build_idx)
            out_partitions.append(
                _gather_join_output(
                    columns, gathered, partition, build_idx, probe_idx
                )
            )

        out_scale = max(build.scale, probe.scale)
        state.charge(
            "compute", state.cost.probe(probe.modeled_rows + out_rows * out_scale)
        )
        state.metrics.tuples_joined += out_rows
        # The probe side never moved: its partitioning property survives.
        return ColumnarData(
            out_partitions, columns, probe.partitioned_on, out_scale
        )

    def label(self) -> str:
        pairs = ", ".join(
            f"{b} = {p}" for b, p in zip(self.build_keys, self.probe_keys, strict=True)
        )
        return f"BroadcastJoin [{pairs}]"


class IndexNestedLoopJoinOp(PhysicalOperator):
    """Broadcast the build input and probe a base dataset's secondary index.

    The probe side is *not* an operator subtree: INL requires the inner to be
    a stored base dataset with a secondary index on the join key, so the
    operator references it directly (there is no scan — that is the point).
    """

    algorithm = JoinAlgorithm.INDEX_NESTED_LOOP

    def __init__(
        self,
        build: PhysicalOperator,
        inner_dataset: str,
        inner_alias: str,
        build_keys: tuple[str, ...],
        inner_fields: tuple[str, ...],
    ) -> None:
        if len(build_keys) != len(inner_fields) or not build_keys:
            raise ExecutionError("join needs matching, non-empty key lists")
        self.children = (build,)
        self.inner_dataset = inner_dataset
        self.inner_alias = inner_alias
        self.build_keys = tuple(build_keys)
        self.inner_fields = tuple(inner_fields)  # *plain* field names

    def _check_inner(self, state: ExecState):
        dataset = state.datasets.get(self.inner_dataset)
        if dataset.is_intermediate:
            raise ExecutionError(
                f"INL inner {self.inner_dataset!r} must be a base dataset"
            )
        index_field = self.inner_fields[0]
        if not dataset.has_index(index_field):
            raise ExecutionError(
                f"INL requires a secondary index on "
                f"{self.inner_dataset}.{index_field}"
            )
        return dataset, index_field

    def execute_rows(self, state: ExecState) -> PartitionedData:
        build = self.children[0].run(state)
        dataset, index_field = self._check_inner(state)

        gathered = broadcast_exchange(build.partitions)
        state.charge(
            "network",
            state.cost.broadcast_exchange(build.modeled_rows, build.row_width),
        )

        prefix = f"{self.inner_alias}."
        residual = list(zip(self.build_keys[1:], self.inner_fields[1:], strict=True))
        out_partitions: list[list[dict]] = []
        out_rows = 0
        lookups = 0
        for partition_id, inner_rows in enumerate(dataset.partitions):
            index = dataset.index_for(index_field, partition_id)
            joined = []
            for build_row in gathered:
                lookups += 1
                key = build_row.get(self.build_keys[0])
                for position in index.lookup(key):
                    inner = inner_rows[position]
                    if any(
                        build_row.get(bk) != inner.get(f) for bk, f in residual
                    ):
                        continue
                    merged = {prefix + k: v for k, v in inner.items()}
                    merged.update(build_row)
                    joined.append(merged)
            out_rows += len(joined)
            out_partitions.append(joined)

        # Every partition performs the full set of (modeled) lookups, in
        # parallel with the other partitions.
        out_scale = max(build.scale, dataset.scale)
        state.charge(
            "index", state.cost.index_lookups(len(gathered) * build.scale)
        )
        state.charge("compute", state.cost.probe(out_rows * out_scale))
        state.metrics.index_lookups += lookups
        state.metrics.tuples_joined += out_rows

        columns = {prefix + f.name: f.dtype for f in dataset.schema.fields}
        columns.update(build.columns)
        partitioned_on = (
            prefix + dataset.partition_key if dataset.partition_key else None
        )
        return PartitionedData(out_partitions, columns, partitioned_on, out_scale)

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        build = self.children[0].run(state)
        dataset, index_field = self._check_inner(state)

        gathered = columnar_broadcast_exchange(build.materialized())
        state.charge(
            "network",
            state.cost.broadcast_exchange(build.modeled_rows, build.row_width),
        )

        prefix = f"{self.inner_alias}."
        residual = list(zip(self.build_keys[1:], self.inner_fields[1:], strict=True))
        key_column = gathered.column(self.build_keys[0])
        residual_columns = [
            (gathered.column(bk), f) for bk, f in residual
        ]
        inner_fields = [f.name for f in dataset.schema.fields]
        columns = {prefix + f.name: f.dtype for f in dataset.schema.fields}
        columns.update(build.columns)
        build_names = gathered.columns.keys()

        out_partitions: list[ColumnPartition] = []
        out_rows = 0
        lookups = 0
        for partition_id, inner_rows in enumerate(dataset.partitions):
            index = dataset.index_for(index_field, partition_id)
            inner_idx: list[int] = []
            build_idx: list[int] = []
            for i in range(gathered.length):
                lookups += 1
                for position in index.lookup(key_column[i]):
                    inner = inner_rows[position]
                    if any(
                        col[i] != inner.get(f) for col, f in residual_columns
                    ):
                        continue
                    inner_idx.append(position)
                    build_idx.append(i)
            out_rows += len(build_idx)
            cols: dict[str, list] = {}
            for name in columns:
                if name in build_names:
                    cols[name] = vector.gather(gathered.columns[name], build_idx)
            for field_name in inner_fields:
                qualified = prefix + field_name
                if qualified not in build_names:
                    cols[qualified] = [
                        inner_rows[p].get(field_name) for p in inner_idx
                    ]
            out_partitions.append(ColumnPartition(cols, len(build_idx)))

        out_scale = max(build.scale, dataset.scale)
        state.charge(
            "index", state.cost.index_lookups(gathered.length * build.scale)
        )
        state.charge("compute", state.cost.probe(out_rows * out_scale))
        state.metrics.index_lookups += lookups
        state.metrics.tuples_joined += out_rows

        partitioned_on = (
            prefix + dataset.partition_key if dataset.partition_key else None
        )
        return ColumnarData(out_partitions, columns, partitioned_on, out_scale)

    def label(self) -> str:
        pairs = ", ".join(
            f"{b} = {self.inner_alias}.{f}"
            for b, f in zip(self.build_keys, self.inner_fields, strict=True)
        )
        return f"IndexNLJoin [{pairs}] (inner {self.inner_dataset})"
