"""Sink operator: materialize intermediate results + collect online statistics.

Section 6.3: "The Sink operator is responsible for materializing intermediate
data while also gathering statistics on them." The sink projects down to the
columns the remaining query still needs (Section 5.1's single-variable
queries project only fields that participate in the rest of the query — this
is what keeps intermediates narrow), writes per-partition temp data, and,
when requested, registers fresh sketches for the attributes participating in
subsequent join stages.

Intermediates are stored row-wise in both engines (the storage layer is
shared); the vectorized path converts its column partitions once at the sink
boundary and feeds the statistics collector whole columns at a time.
"""

from __future__ import annotations

from repro.engine.data import ColumnarData, PartitionedData
from repro.engine.operators.base import ExecState, OperatorData, PhysicalOperator
from repro.stats.collector import StatisticsCollector
from repro.storage.ingest import register_intermediate


class SinkOp(PhysicalOperator):
    """Materialize the child's output as a named intermediate dataset."""

    def __init__(
        self,
        child: PhysicalOperator,
        name: str,
        keep_columns: tuple[str, ...],
        stats_columns: tuple[str, ...] = (),
    ) -> None:
        self.children = (child,)
        self.name = name
        self.keep_columns = tuple(keep_columns)
        self.stats_columns = tuple(stats_columns)

    def _register(
        self,
        state: ExecState,
        projected: OperatorData,
        row_partitions: list[list[dict]],
    ) -> None:
        register_intermediate(
            name=self.name,
            schema=projected.schema(),
            partitions=row_partitions,
            partition_key=projected.partitioned_on,
            datasets=state.datasets,
            scale=projected.scale,
        )
        state.charge(
            "materialize",
            state.cost.materialize(projected.modeled_rows, projected.row_width),
        )
        state.metrics.rows_materialized += projected.row_count

    def _finish_stats(
        self,
        state: ExecState,
        projected: OperatorData,
        collector: StatisticsCollector,
        tracked: list[str],
    ) -> None:
        state.statistics.register_from_collector(
            self.name, collector, projected.row_width, projected.scale
        )
        state.charge(
            "stats",
            state.cost.statistics(projected.modeled_rows, max(1, len(tracked))),
        )

    def execute_rows(self, state: ExecState) -> PartitionedData:
        data = self.children[0].run(state)
        projected = data.project(self.keep_columns)
        self._register(state, projected, projected.partitions)

        if self.stats_columns:
            tracked = [c for c in self.stats_columns if c in projected.columns]
            collector = StatisticsCollector(tracked)
            for partition in projected.partitions:
                for row in partition:
                    collector.observe_row(row)
            self._finish_stats(state, projected, collector, tracked)
        else:
            # Register row count / width only: even without online sketches the
            # driver needs S(x) of the intermediate for the final ordering.
            collector = StatisticsCollector([])
            collector.row_count = projected.row_count
            state.statistics.register_from_collector(
                self.name, collector, projected.row_width, projected.scale
            )
        return projected

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        data = self.children[0].run(state)
        projected = data.project(self.keep_columns)
        materialized = projected.materialized()
        projected = ColumnarData(
            materialized, projected.columns, projected.partitioned_on, projected.scale
        )
        self._register(state, projected, projected.to_row_partitions())

        if self.stats_columns:
            tracked = [c for c in self.stats_columns if c in projected.columns]
            collector = StatisticsCollector(tracked)
            for partition in materialized:
                collector.observe_columns(partition.columns, partition.length)
            self._finish_stats(state, projected, collector, tracked)
        else:
            collector = StatisticsCollector([])
            collector.row_count = projected.row_count
            state.statistics.register_from_collector(
                self.name, collector, projected.row_width, projected.scale
            )
        return projected

    def label(self) -> str:
        return f"Sink ({self.name})"


class DistributeResultOp(PhysicalOperator):
    """Funnel final rows back to the coordinator (end of the last job)."""

    def __init__(self, child: PhysicalOperator) -> None:
        self.children = (child,)

    def execute(self, state: ExecState) -> OperatorData:
        # Engine-agnostic: pass-through plus the result-output charge, so the
        # base dispatch is overridden with one shared implementation.
        data = self.children[0].run(state)
        state.charge(
            "output", state.cost.result_output(data.modeled_rows, data.row_width)
        )
        state.metrics.rows_out += data.row_count
        return data

    def label(self) -> str:
        return "DistributeResult"
