"""Scan and Reader operators.

``ScanOp`` reads a base dataset and qualifies its columns with the scan
alias. ``ReaderOp`` reads a previously materialized intermediate (Figure 4:
"the new operator introduced in this phase (Reader A') indicates that a
datasource is not a base dataset") — its columns are already qualified and it
is charged materialized-read I/O instead of base-scan I/O.
"""

from __future__ import annotations

from repro.common.errors import ExecutionError
from repro.engine.data import PartitionedData
from repro.engine.operators.base import ExecState, PhysicalOperator


class ScanOp(PhysicalOperator):
    """Full scan of a base dataset under an alias."""

    def __init__(self, dataset: str, alias: str) -> None:
        self.dataset = dataset
        self.alias = alias

    def execute(self, state: ExecState) -> PartitionedData:
        dataset = state.datasets.get(self.dataset)
        if dataset.is_intermediate:
            raise ExecutionError(
                f"ScanOp targets base datasets; use ReaderOp for {self.dataset!r}"
            )
        prefix = f"{self.alias}."
        partitions = [
            [{prefix + key: value for key, value in row.items()} for row in partition]
            for partition in dataset.partitions
        ]
        columns = {prefix + f.name: f.dtype for f in dataset.schema.fields}
        partitioned_on = (
            prefix + dataset.partition_key if dataset.partition_key else None
        )
        state.charge(
            "scan", state.cost.scan(dataset.modeled_rows, dataset.schema.row_width)
        )
        state.metrics.tuples_scanned += dataset.row_count
        return PartitionedData(partitions, columns, partitioned_on, dataset.scale)

    def label(self) -> str:
        return f"Scan {self.alias}" if self.alias == self.dataset else f"Scan {self.dataset} AS {self.alias}"


class ReaderOp(PhysicalOperator):
    """Read back a materialized re-optimization-point result."""

    def __init__(self, dataset: str) -> None:
        self.dataset = dataset

    def execute(self, state: ExecState) -> PartitionedData:
        dataset = state.datasets.get(self.dataset)
        if not dataset.is_intermediate:
            raise ExecutionError(
                f"ReaderOp targets intermediates; use ScanOp for {self.dataset!r}"
            )
        # Columns are already qualified; rows are shared read-only.
        partitions = [list(partition) for partition in dataset.partitions]
        columns = {f.name: f.dtype for f in dataset.schema.fields}
        state.charge(
            "materialize",
            state.cost.read_materialized(dataset.modeled_rows, dataset.schema.row_width),
        )
        return PartitionedData(
            partitions, columns, dataset.partition_key, dataset.scale
        )

    def label(self) -> str:
        return f"Reader {self.dataset}"
