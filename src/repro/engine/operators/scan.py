"""Scan and Reader operators.

``ScanOp`` reads a base dataset and qualifies its columns with the scan
alias. ``ReaderOp`` reads a previously materialized intermediate (Figure 4:
"the new operator introduced in this phase (Reader A') indicates that a
datasource is not a base dataset") — its columns are already qualified and it
is charged materialized-read I/O instead of base-scan I/O.

In vectorized mode both return *lazy* column partitions: no column is
extracted until a consumer touches it, so the fused select/project kernel
above the scan reads only referenced columns (and non-predicate columns only
for surviving rows). ``live`` — attached by job generation's projection
pushdown — names the columns the rest of the job can ever need; ``None``
means "no pushdown information, keep everything".
"""

from __future__ import annotations

from repro.common.errors import ExecutionError
from repro.engine.data import ColumnarData, LazyRowPartition, PartitionedData
from repro.engine.operators.base import ExecState, PhysicalOperator


class ScanOp(PhysicalOperator):
    """Full scan of a base dataset under an alias."""

    def __init__(
        self, dataset: str, alias: str, live: tuple[str, ...] | None = None
    ) -> None:
        self.dataset = dataset
        self.alias = alias
        #: qualified columns referenced by the rest of the job (vectorized
        #: mode materializes only these); ``None`` -> all schema columns
        self.live = tuple(live) if live is not None else None

    def _open(self, state: ExecState):
        dataset = state.datasets.get(self.dataset)
        if dataset.is_intermediate:
            raise ExecutionError(
                f"ScanOp targets base datasets; use ReaderOp for {self.dataset!r}"
            )
        prefix = f"{self.alias}."
        columns = {prefix + f.name: f.dtype for f in dataset.schema.fields}
        partitioned_on = (
            prefix + dataset.partition_key if dataset.partition_key else None
        )
        state.charge(
            "scan", state.cost.scan(dataset.modeled_rows, dataset.schema.row_width)
        )
        state.metrics.tuples_scanned += dataset.row_count
        return dataset, prefix, columns, partitioned_on

    def execute_rows(self, state: ExecState) -> PartitionedData:
        dataset, prefix, columns, partitioned_on = self._open(state)
        partitions = [
            [{prefix + key: value for key, value in row.items()} for row in partition]
            for partition in dataset.partitions
        ]
        return PartitionedData(partitions, columns, partitioned_on, dataset.scale)

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        dataset, prefix, columns, partitioned_on = self._open(state)
        partitions = [
            LazyRowPartition(partition, prefix, self.live, dataset.column_cache(i))
            for i, partition in enumerate(dataset.partitions)
        ]
        return ColumnarData(partitions, columns, partitioned_on, dataset.scale)

    def label(self) -> str:
        return f"Scan {self.alias}" if self.alias == self.dataset else f"Scan {self.dataset} AS {self.alias}"


class ReaderOp(PhysicalOperator):
    """Read back a materialized re-optimization-point result."""

    def __init__(self, dataset: str, live: tuple[str, ...] | None = None) -> None:
        self.dataset = dataset
        self.live = tuple(live) if live is not None else None

    def _open(self, state: ExecState):
        dataset = state.datasets.get(self.dataset)
        if not dataset.is_intermediate:
            raise ExecutionError(
                f"ReaderOp targets intermediates; use ScanOp for {self.dataset!r}"
            )
        columns = {f.name: f.dtype for f in dataset.schema.fields}
        state.charge(
            "materialize",
            state.cost.read_materialized(dataset.modeled_rows, dataset.schema.row_width),
        )
        return dataset, columns

    def execute_rows(self, state: ExecState) -> PartitionedData:
        dataset, columns = self._open(state)
        # Columns are already qualified; rows are shared read-only.
        partitions = [list(partition) for partition in dataset.partitions]
        return PartitionedData(
            partitions, columns, dataset.partition_key, dataset.scale
        )

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        dataset, columns = self._open(state)
        partitions = [
            LazyRowPartition(partition, "", self.live, dataset.column_cache(i))
            for i, partition in enumerate(dataset.partitions)
        ]
        return ColumnarData(
            partitions, columns, dataset.partition_key, dataset.scale
        )

    def label(self) -> str:
        return f"Reader {self.dataset}"
