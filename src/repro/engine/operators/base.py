"""Physical operator interface and shared execution state.

A job is a tree of :class:`PhysicalOperator` nodes. ``run`` pulls the child
outputs, performs the operator's work on real rows, charges the cost model
through :class:`ExecState`, and returns :class:`PartitionedData`. This is a
blocking, materialized evaluation of the tree — a deliberate simplification
of Hyracks' pipelined frames that keeps costs and results exact while staying
faithful to operator-level data movement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.config import ClusterConfig
from repro.cluster.cost import CostModel
from repro.engine.data import PartitionedData
from repro.engine.metrics import JobMetrics
from repro.lang.ast import EvaluationContext
from repro.stats.catalog import StatisticsCatalog
from repro.storage.catalog import DatasetCatalog


@dataclass
class ExecState:
    """Everything an operator needs at run time."""

    cluster: ClusterConfig
    cost: CostModel
    datasets: DatasetCatalog
    statistics: StatisticsCatalog
    evaluation: EvaluationContext
    metrics: JobMetrics

    def charge(self, component: str, seconds: float) -> None:
        setattr(self.metrics, component, getattr(self.metrics, component) + seconds)


class PhysicalOperator:
    """Base class for all physical operators."""

    #: Children evaluated before this operator (subclasses override).
    children: tuple["PhysicalOperator", ...] = ()

    def run(self, state: ExecState) -> PartitionedData:
        raise NotImplementedError

    def label(self) -> str:
        """Short name used in plan rendering (Figure 4 vocabulary)."""
        return type(self).__name__.replace("Op", "")

    def render(self, indent: int = 0) -> str:
        """ASCII rendering of the operator subtree."""
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)
