"""Physical operator interface and shared execution state.

A job is a tree of :class:`PhysicalOperator` nodes. ``run`` pulls the child
outputs, performs the operator's work on real rows, charges the cost model
through :class:`ExecState`, and returns :class:`PartitionedData` (row-wise
engine) or :class:`ColumnarData` (vectorized engine). This is a blocking,
materialized evaluation of the tree — a deliberate simplification of
Hyracks' pipelined frames that keeps costs and results exact while staying
faithful to operator-level data movement.

Engine dispatch lives here: ``execute`` routes to ``execute_rows`` or
``execute_columnar`` from ``ExecState.engine``. Both paths charge the exact
same cost sequence with the exact same arguments, so metrics, traces and
plans are byte-identical across engines (DESIGN.md §10; pinned by
``tests/engine/equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.cluster.config import ClusterConfig
from repro.cluster.cost import CostModel
from repro.engine.data import ColumnarData, PartitionedData
from repro.engine.metrics import JobMetrics
from repro.engine.vector import DEFAULT_CHUNK_SIZE, ENGINE_VECTORIZED
from repro.lang.ast import EvaluationContext
from repro.stats.catalog import StatisticsCatalog
from repro.storage.catalog import DatasetCatalog

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

#: either engine's in-flight carrier; both expose the same read surface
OperatorData = Union[PartitionedData, ColumnarData]


@dataclass
class ExecState:
    """Everything an operator needs at run time."""

    cluster: ClusterConfig
    cost: CostModel
    datasets: DatasetCatalog
    statistics: StatisticsCatalog
    evaluation: EvaluationContext
    metrics: JobMetrics
    #: optional observer; operators open a span around each ``run``
    tracer: Tracer | None = None
    #: execution mode: ``"rowwise"`` or ``"vectorized"``. Defaults to
    #: row-wise so directly constructed states (unit tests, tools) keep the
    #: historical behavior; the Executor resolves the session/process-level
    #: engine choice explicitly.
    engine: str = "rowwise"
    #: rows per chunk for the vectorized kernels; never affects results
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def charge(self, component: str, seconds: float) -> None:
        setattr(self.metrics, component, getattr(self.metrics, component) + seconds)


class PhysicalOperator:
    """Base class for all physical operators."""

    #: Children evaluated before this operator (subclasses override).
    children: tuple["PhysicalOperator", ...] = ()
    #: compile-time cardinality estimate (modeled rows) for join operators;
    #: set by ``compile_plan`` so the tracer can record estimate accuracy.
    estimated_rows: float | None = None

    def run(self, state: ExecState) -> OperatorData:
        """Execute the operator, wrapped in a trace span when tracing is on.

        Tracing observes the metrics object before/after ``execute`` — it
        never charges the cost model, so simulated times are identical with
        and without a tracer.
        """
        tracer = state.tracer
        if tracer is None:
            return self.execute(state)
        token = tracer.begin_operator(self.label(), state.metrics)
        data = self.execute(state)
        tracer.end_operator(
            token,
            state.metrics,
            rows_out=data.row_count,
            modeled_rows_out=data.modeled_rows,
            estimated_rows=self.estimated_rows,
        )
        return data

    def execute(self, state: ExecState) -> OperatorData:
        """Engine dispatch; operators implement the two ``execute_*`` hooks."""
        if state.engine == ENGINE_VECTORIZED:
            return self.execute_columnar(state)
        return self.execute_rows(state)

    def execute_rows(self, state: ExecState) -> PartitionedData:
        raise NotImplementedError

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        raise NotImplementedError(
            f"{type(self).__name__} has no vectorized implementation"
        )

    def label(self) -> str:
        """Short name used in plan rendering (Figure 4 vocabulary)."""
        return type(self).__name__.replace("Op", "")

    def render(self, indent: int = 0) -> str:
        """ASCII rendering of the operator subtree."""
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)
