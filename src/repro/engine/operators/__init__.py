"""Physical operators (Figure 4 vocabulary)."""

from repro.engine.operators.base import ExecState, PhysicalOperator
from repro.engine.operators.joins import (
    BroadcastJoinOp,
    HashJoinOp,
    IndexNestedLoopJoinOp,
    JoinAlgorithm,
)
from repro.engine.operators.scan import ReaderOp, ScanOp
from repro.engine.operators.select import AssignOp, ProjectOp, SelectOp
from repro.engine.operators.sink import DistributeResultOp, SinkOp
from repro.engine.operators.tail import GroupByOp, LimitOp, OrderByOp

__all__ = [
    "AssignOp",
    "BroadcastJoinOp",
    "DistributeResultOp",
    "ExecState",
    "GroupByOp",
    "HashJoinOp",
    "IndexNestedLoopJoinOp",
    "JoinAlgorithm",
    "LimitOp",
    "OrderByOp",
    "PhysicalOperator",
    "ProjectOp",
    "ReaderOp",
    "ScanOp",
    "SelectOp",
    "SinkOp",
]
