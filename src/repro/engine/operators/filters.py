"""Semi-join filter operator: apply transferred Bloom filters to a dataflow.

The predicate-transfer scheduler (``repro.core.predicate_transfer``) builds a
Bloom filter per join column of each FROM entry and ships it to the join
partners. ``SemiJoinFilterOp`` is the receiving side: it drops every row
whose join-key value is definitely absent from the partner's filter.

Semantics mirror the join the filter stands in for:

- a **null** filter-column value never matches (the joins' ``_key_fn`` /
  ``join_key_column`` contract), so null-keyed rows are dropped;
- Bloom filters produce false **positives** only, so the surviving superset
  always contains every row the real join would keep — the reduction is
  sound for the inner equi-joins this engine executes.

Cost charges are identical in both engines and computed from the *input*
data's modeled cardinality: the filters ship once per job (network, at the
filters' modeled wire size), then every input row probes every filter
(CPU). The filtering itself is the probe — there is no separate selection
charge.
"""

from __future__ import annotations

from repro.engine import vector
from repro.engine.bloom import BloomFilter
from repro.engine.data import (
    ColumnarData,
    ColumnPartition,
    LazyRowPartition,
    PartitionedData,
    materialize,
)
from repro.engine.operators.base import ExecState, OperatorData, PhysicalOperator


class SemiJoinFilterOp(PhysicalOperator):
    """Keep only rows whose filter-column values pass every Bloom filter."""

    def __init__(
        self,
        child: PhysicalOperator,
        filters: tuple[tuple[str, BloomFilter], ...],
    ) -> None:
        self.children = (child,)
        #: ordered (qualified probe column, partner's filter) pairs
        self.filters = tuple(filters)

    def _charge(self, state: ExecState, data: OperatorData) -> None:
        total_bytes = sum(bloom.charge_bytes for _, bloom in self.filters)
        state.charge("network", state.cost.bloom_transfer(total_bytes))
        state.charge(
            "compute", state.cost.bloom_probe(data.modeled_rows, len(self.filters))
        )

    def _keep(self, row: dict) -> bool:
        for column, bloom in self.filters:
            value = row.get(column)
            if value is None or not bloom.might_contain(value):
                return False
        return True

    def execute_rows(self, state: ExecState) -> PartitionedData:
        data = self.children[0].run(state)
        filtered = [
            [row for row in partition if self._keep(row)]
            for partition in data.partitions
        ]
        self._charge(state, data)
        return PartitionedData(filtered, data.columns, data.partitioned_on, data.scale)

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        data = self.children[0].run(state)
        chunk_size = state.chunk_size
        filtered: list[ColumnPartition | LazyRowPartition] = []
        for partition in data.partitions:
            extracted = materialize(partition, data.columns)
            columns, length = vector.semi_join_filter(
                extracted.columns, extracted.length, self.filters, chunk_size
            )
            filtered.append(ColumnPartition(columns, length))
        self._charge(state, data)
        return ColumnarData(filtered, data.columns, data.partitioned_on, data.scale)

    def label(self) -> str:
        return "SemiJoinFilter " + ", ".join(
            f"{column} IN bloom({bloom.bits_set})" for column, bloom in self.filters
        )
