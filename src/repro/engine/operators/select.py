"""Row-level operators: Select (filter), Assign (derived column), Project.

``AssignOp`` + ``SelectOp`` reproduce Figure 4's predicate push-down subjobs
("Assign t — Select t=C"): the UDF value is computed into a temporary column
and filtered. Query compilation usually folds the UDF into the predicate
directly, but the split form is available for plan fidelity and tests.

In vectorized mode ``SelectOp`` over a fresh scan runs the fused
scan+filter+project kernel (:func:`repro.engine.vector.fused_filter_project`)
— one pass per chunk that filters on predicate columns and gathers only the
live columns of surviving rows; already-extracted inputs go through the
chunked :func:`~repro.engine.vector.filter_columns` kernel instead.
"""

from __future__ import annotations

from repro.common.types import DataType
from repro.engine import vector
from repro.engine.data import (
    ColumnarData,
    ColumnPartition,
    LazyRowPartition,
    PartitionedData,
    materialize,
)
from repro.engine.operators.base import ExecState, PhysicalOperator
from repro.lang.ast import Predicate


class SelectOp(PhysicalOperator):
    """Filter rows by a conjunction of local predicates."""

    def __init__(self, child: PhysicalOperator, predicates: tuple[Predicate, ...]) -> None:
        self.children = (child,)
        self.predicates = tuple(predicates)

    def execute_rows(self, state: ExecState) -> PartitionedData:
        data = self.children[0].run(state)
        evaluation = state.evaluation
        filtered = [
            [
                row
                for row in partition
                if all(p.evaluate(row, evaluation) for p in self.predicates)
            ]
            for partition in data.partitions
        ]
        state.charge(
            "compute",
            state.cost.predicate_eval(data.modeled_rows, len(self.predicates)),
        )
        return PartitionedData(filtered, data.columns, data.partitioned_on, data.scale)

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        data = self.children[0].run(state)
        evaluation = state.evaluation
        chunk_size = state.chunk_size
        filtered: list[ColumnPartition | LazyRowPartition] = []
        for partition in data.partitions:
            if isinstance(partition, LazyRowPartition):
                live = (
                    partition.live
                    if partition.live is not None
                    else tuple(data.columns)
                )
                columns, length = vector.fused_filter_project(
                    partition,
                    self.predicates,
                    live,
                    evaluation,
                    chunk_size,
                )
            else:
                columns, length = vector.filter_columns(
                    partition.columns,
                    partition.length,
                    self.predicates,
                    evaluation,
                    chunk_size,
                )
            filtered.append(ColumnPartition(columns, length))
        state.charge(
            "compute",
            state.cost.predicate_eval(data.modeled_rows, len(self.predicates)),
        )
        return ColumnarData(filtered, data.columns, data.partitioned_on, data.scale)

    def label(self) -> str:
        return "Select " + " AND ".join(p.describe() for p in self.predicates)


class AssignOp(PhysicalOperator):
    """Compute ``target = udf(column)`` into a new column."""

    def __init__(
        self, child: PhysicalOperator, target: str, udf: str, column: str
    ) -> None:
        self.children = (child,)
        self.target = target
        self.udf = udf
        self.column = column

    def execute_rows(self, state: ExecState) -> PartitionedData:
        data = self.children[0].run(state)
        fn = state.evaluation.udfs.get(self.udf)
        for partition in data.partitions:
            for row in partition:
                row[self.target] = fn(row.get(self.column))
        columns = dict(data.columns)
        columns[self.target] = DataType.DOUBLE
        state.charge("compute", state.cost.predicate_eval(data.modeled_rows, 1))
        return PartitionedData(
            data.partitions, columns, data.partitioned_on, data.scale
        )

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        data = self.children[0].run(state)
        fn = state.evaluation.udfs.get(self.udf)
        assigned: list[ColumnPartition | LazyRowPartition] = []
        for partition in data.partitions:
            extracted = materialize(partition, data.columns)
            out = dict(extracted.columns)
            out[self.target] = [fn(v) for v in extracted.column(self.column)]
            assigned.append(ColumnPartition(out, extracted.length))
        columns = dict(data.columns)
        columns[self.target] = DataType.DOUBLE
        state.charge("compute", state.cost.predicate_eval(data.modeled_rows, 1))
        return ColumnarData(assigned, columns, data.partitioned_on, data.scale)

    def label(self) -> str:
        return f"Assign {self.target} = {self.udf}({self.column})"


class ProjectOp(PhysicalOperator):
    """Keep only the named (qualified) columns."""

    def __init__(self, child: PhysicalOperator, columns: tuple[str, ...]) -> None:
        self.children = (child,)
        self.columns = tuple(columns)

    def _project(self, state: ExecState):
        data = self.children[0].run(state)
        projected = data.project(self.columns)
        state.charge("compute", state.cost.probe(data.modeled_rows))
        return projected

    def execute_rows(self, state: ExecState) -> PartitionedData:
        return self._project(state)

    def execute_columnar(self, state: ExecState) -> ColumnarData:
        return self._project(state)

    def label(self) -> str:
        return "Project " + ", ".join(self.columns)
