"""Row-level operators: Select (filter), Assign (derived column), Project.

``AssignOp`` + ``SelectOp`` reproduce Figure 4's predicate push-down subjobs
("Assign t — Select t=C"): the UDF value is computed into a temporary column
and filtered. Query compilation usually folds the UDF into the predicate
directly, but the split form is available for plan fidelity and tests.
"""

from __future__ import annotations

from repro.common.types import DataType
from repro.engine.data import PartitionedData
from repro.engine.operators.base import ExecState, PhysicalOperator
from repro.lang.ast import Predicate


class SelectOp(PhysicalOperator):
    """Filter rows by a conjunction of local predicates."""

    def __init__(self, child: PhysicalOperator, predicates: tuple[Predicate, ...]) -> None:
        self.children = (child,)
        self.predicates = tuple(predicates)

    def execute(self, state: ExecState) -> PartitionedData:
        data = self.children[0].run(state)
        evaluation = state.evaluation
        filtered = [
            [
                row
                for row in partition
                if all(p.evaluate(row, evaluation) for p in self.predicates)
            ]
            for partition in data.partitions
        ]
        state.charge(
            "compute",
            state.cost.predicate_eval(data.modeled_rows, len(self.predicates)),
        )
        return PartitionedData(filtered, data.columns, data.partitioned_on, data.scale)

    def label(self) -> str:
        return "Select " + " AND ".join(p.describe() for p in self.predicates)


class AssignOp(PhysicalOperator):
    """Compute ``target = udf(column)`` into a new column."""

    def __init__(
        self, child: PhysicalOperator, target: str, udf: str, column: str
    ) -> None:
        self.children = (child,)
        self.target = target
        self.udf = udf
        self.column = column

    def execute(self, state: ExecState) -> PartitionedData:
        data = self.children[0].run(state)
        fn = state.evaluation.udfs.get(self.udf)
        for partition in data.partitions:
            for row in partition:
                row[self.target] = fn(row.get(self.column))
        columns = dict(data.columns)
        columns[self.target] = DataType.DOUBLE
        state.charge("compute", state.cost.predicate_eval(data.modeled_rows, 1))
        return PartitionedData(
            data.partitions, columns, data.partitioned_on, data.scale
        )

    def label(self) -> str:
        return f"Assign {self.target} = {self.udf}({self.column})"


class ProjectOp(PhysicalOperator):
    """Keep only the named (qualified) columns."""

    def __init__(self, child: PhysicalOperator, columns: tuple[str, ...]) -> None:
        self.children = (child,)
        self.columns = tuple(columns)

    def execute(self, state: ExecState) -> PartitionedData:
        data = self.children[0].run(state)
        projected = data.project(self.columns)
        state.charge("compute", state.cost.probe(data.modeled_rows))
        return projected

    def label(self) -> str:
        return "Project " + ", ".join(self.columns)
