"""Deterministic Bloom filters for predicate transfer.

Predicate transfer (Yang et al., "Predicate Transfer: Efficient
Pre-Filtering on Multi-Join Queries") propagates approximate membership
filters across join edges before execution. The filter here is a textbook
partitioned-bit Bloom filter with two engineering constraints imposed by
this codebase:

- **Determinism.** Hashing goes through :func:`repro.common.rng.stable_hash`
  (keyed blake2b), so filter contents — and therefore which false positives
  survive a probe — are identical across processes, engines and platforms.
  The byte-identity guarantee of DESIGN.md §10 extends through the semi-join
  filter operator only because of this.
- **Honest cost accounting.** The filter is *built* over stored
  (scaled-down) rows but *charged* at modeled scale: ``charge_bytes`` is the
  wire size a filter sized for the modeled cardinality would have, which is
  what the cost model's ``bloom_transfer`` bills for shipping it.

Index derivation uses Kirsch-Mitzenmacher double hashing: one 64-bit hash
split into two halves drives all ``hash_count`` probes, so each add/probe
costs a single blake2b invocation regardless of ``hash_count``.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Iterable

from repro.common.errors import ReproError
from repro.common.rng import stable_hash

_LN2 = math.log(2.0)

#: smallest filter ever allocated — tiny inputs still get a real bit array.
MIN_BITS = 64
#: default false-positive probability for transfer filters.
DEFAULT_FPP = 0.01


def bloom_bit_count(expected: int, fpp: float = DEFAULT_FPP) -> int:
    """Optimal bit-array size for ``expected`` keys at probability ``fpp``."""
    n = max(1, int(expected))
    bits = math.ceil(-n * math.log(fpp) / (_LN2 * _LN2))
    return max(MIN_BITS, bits)


def bloom_hash_count(bit_count: int, expected: int) -> int:
    """Optimal probe count ``k = m/n * ln 2`` (at least one)."""
    n = max(1, int(expected))
    return max(1, round(bit_count / n * _LN2))


def bloom_size_bytes(expected: float, fpp: float = DEFAULT_FPP) -> float:
    """Modeled wire size of a filter sized for ``expected`` keys.

    ``expected`` may be fractional (modeled cardinalities are stored counts
    times a scale factor); the result is the analytic optimal bit count in
    bytes, without the :data:`MIN_BITS` floor or integer rounding — it feeds
    the cost model, not an allocation.
    """
    n = max(1.0, float(expected))
    bits = -n * math.log(fpp) / (_LN2 * _LN2)
    return bits / 8.0


class BloomFilter:
    """A deterministic Bloom filter over arbitrary hashable-by-repr values.

    The bit array is one Python int (arbitrary precision), which keeps
    add/probe allocation-free and makes the whole filter trivially
    fingerprintable.
    """

    __slots__ = ("bit_count", "hash_count", "charge_bytes", "_bits")

    def __init__(
        self, bit_count: int, hash_count: int, charge_bytes: float = 0.0
    ) -> None:
        if bit_count < 1 or hash_count < 1:
            raise ReproError("a Bloom filter needs >= 1 bit and >= 1 hash")
        self.bit_count = int(bit_count)
        self.hash_count = int(hash_count)
        #: modeled wire size in bytes, billed by ``CostModel.bloom_transfer``
        #: when the filter ships to a probe job; defaults to the physical
        #: size when the builder does not override it.
        self.charge_bytes = (
            float(charge_bytes) if charge_bytes > 0.0 else float(self.size_bytes)
        )
        self._bits = 0

    @classmethod
    def build(
        cls,
        values: Iterable[object],
        expected: int,
        fpp: float = DEFAULT_FPP,
        charge_bytes: float | None = None,
    ) -> BloomFilter:
        """A filter sized for ``expected`` keys, populated from ``values``.

        ``None`` values are skipped: a null join key never matches, and the
        probe side drops null keys before consulting the filter.
        """
        bit_count = bloom_bit_count(expected, fpp)
        bloom = cls(
            bit_count,
            bloom_hash_count(bit_count, expected),
            charge_bytes if charge_bytes is not None else 0.0,
        )
        for value in values:
            if value is not None:
                bloom.add(value)
        return bloom

    def add(self, value: object) -> None:
        digest = stable_hash(value)
        low = digest & 0xFFFFFFFF
        high = (digest >> 32) | 1
        bit_count = self.bit_count
        bits = self._bits
        for i in range(self.hash_count):
            bits |= 1 << ((low + i * high) % bit_count)
        self._bits = bits

    def might_contain(self, value: object) -> bool:
        """False means definitely absent; True means present or false positive."""
        digest = stable_hash(value)
        low = digest & 0xFFFFFFFF
        high = (digest >> 32) | 1
        bit_count = self.bit_count
        bits = self._bits
        for i in range(self.hash_count):
            if not (bits >> ((low + i * high) % bit_count)) & 1:
                return False
        return True

    @property
    def size_bytes(self) -> int:
        """Physical size of the bit array in bytes."""
        return (self.bit_count + 7) // 8

    @property
    def bits_set(self) -> int:
        return bin(self._bits).count("1")

    def fingerprint(self) -> str:
        """Stable 64-bit content identity (used in cache tokens).

        Hashes the raw bitset bytes, not its ``repr`` — a large filter's bit
        array is an int with far more digits than CPython's int-to-str
        conversion limit allows.
        """
        header = f"{self.bit_count}|{self.hash_count}|".encode()
        payload = self._bits.to_bytes(self.size_bytes, "big")
        return hashlib.blake2b(header + payload, digest_size=8).hexdigest()

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.bit_count}, hashes={self.hash_count}, "
            f"set={self.bits_set})"
        )
