"""Data-movement connectors between operators.

Two physical exchanges exist in the simulated Hyracks runtime, matching the
paper's join descriptions (Section 3):

- **hash exchange** — redistribute rows so equal keys land on the same
  partition; every row crosses the network once.
- **broadcast exchange** — replicate the (small) input to every partition.

Both return new partition lists; the caller charges the cost model.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.common.rng import stable_hash


def hash_exchange(
    partitions: list[list[dict]],
    key_fn: Callable[[dict], object],
    partition_count: int,
) -> list[list[dict]]:
    """Redistribute rows by hash of ``key_fn(row)``."""
    out: list[list[dict]] = [[] for _ in range(partition_count)]
    for partition in partitions:
        for row in partition:
            out[stable_hash(key_fn(row)) % partition_count].append(row)
    return out


def broadcast_exchange(partitions: list[list[dict]]) -> list[dict]:
    """Gather the input into one list that every partition will receive.

    The engine keeps one shared (read-only) copy rather than materializing
    ``partition_count`` physical copies; the cost model still charges the
    replication traffic.
    """
    gathered: list[dict] = []
    for partition in partitions:
        gathered.extend(partition)
    return gathered
