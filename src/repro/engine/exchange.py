"""Data-movement connectors between operators.

Two physical exchanges exist in the simulated Hyracks runtime, matching the
paper's join descriptions (Section 3):

- **hash exchange** — redistribute rows so equal keys land on the same
  partition; every row crosses the network once.
- **broadcast exchange** — replicate the (small) input to every partition.

Both return new partition lists; the caller charges the cost model.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.common.rng import stable_hash
from repro.engine import vector
from repro.engine.data import ColumnPartition


def hash_exchange(
    partitions: list[list[dict]],
    key_fn: Callable[[dict], object],
    partition_count: int,
) -> list[list[dict]]:
    """Redistribute rows by hash of ``key_fn(row)``."""
    out: list[list[dict]] = [[] for _ in range(partition_count)]
    for partition in partitions:
        for row in partition:
            out[stable_hash(key_fn(row)) % partition_count].append(row)
    return out


def broadcast_exchange(partitions: list[list[dict]]) -> list[dict]:
    """Gather the input into one list that every partition will receive.

    The engine keeps one shared (read-only) copy rather than materializing
    ``partition_count`` physical copies; the cost model still charges the
    replication traffic.
    """
    gathered: list[dict] = []
    for partition in partitions:
        gathered.extend(partition)
    return gathered


# -- columnar variants (vectorized engine) ---------------------------------------


def columnar_hash_exchange(
    partitions: list[ColumnPartition],
    route_keys: list[list],
    partition_count: int,
) -> list[ColumnPartition]:
    """Redistribute columnar partitions by hash of the per-row route keys.

    ``route_keys[p]`` holds one routing value per row of partition ``p`` —
    the raw first-key-column value for joins, the full key tuple for
    group-by — matching the row-wise exchange's ``key_fn(row)`` exactly, so
    every row lands on the same destination in the same order. Null keys are
    routed like any other value (only join build/probe skips them).
    """
    names: tuple[str, ...] = ()
    for partition in partitions:
        if partition.columns:
            names = tuple(partition.columns)
            break
    out_columns: list[dict[str, list]] = [
        {name: [] for name in names} for _ in range(partition_count)
    ]
    out_lengths = [0] * partition_count
    route_cache = vector.shared_route_cache(partition_count)
    for partition, keys in zip(partitions, route_keys, strict=True):
        routes = vector.route_partitions(keys, partition_count, route_cache)
        buckets: list[list[int]] = [[] for _ in range(partition_count)]
        for position, slot in enumerate(routes):
            buckets[slot].append(position)
        for slot, positions in enumerate(buckets):
            if not positions:
                continue
            out_lengths[slot] += len(positions)
            dest = out_columns[slot]
            for name in names:
                column = partition.column(name)
                dest[name].extend([column[i] for i in positions])
    return [
        ColumnPartition(cols, length)
        for cols, length in zip(out_columns, out_lengths)
    ]


def columnar_broadcast_exchange(
    partitions: list[ColumnPartition],
) -> ColumnPartition:
    """Gather columnar partitions into the one shared copy every partition
    receives (cost charged by the caller, as in :func:`broadcast_exchange`)."""
    names: tuple[str, ...] = ()
    for partition in partitions:
        if partition.columns:
            names = tuple(partition.columns)
            break
    gathered: dict[str, list] = {name: [] for name in names}
    length = 0
    for partition in partitions:
        length += partition.length
        for name in names:
            gathered[name].extend(partition.column(name))
    return ColumnPartition(gathered, length)
