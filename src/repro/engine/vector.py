"""Vectorized execution kernels and engine-mode configuration.

The engine runs in one of two modes (DESIGN.md §10):

- ``rowwise`` — the original tuple-at-a-time interpreter: rows are dicts,
  operators loop over them one by one.
- ``vectorized`` — rows flow as fixed-size chunks of parallel column lists
  (:class:`~repro.engine.data.ColumnarData`); scans read only referenced
  columns, scan+filter+project fuse into one pass per chunk, and joins
  build/probe over key columns instead of per-row dicts.

Both modes produce byte-identical rows, plans, phases, traces and
``JobMetrics`` — the cost clock charges from row counts and the logical
column map, which the columnar path carries unchanged. The equivalence
harness (``tests/engine/equivalence.py``) pins this for every strategy and
bench query.

The kernels here are free functions on purpose: the mutation tests
monkeypatch them to prove the equivalence harness catches a broken kernel.
"""

from __future__ import annotations

import os

from repro.common.rng import stable_hash

ENGINE_ROWWISE = "rowwise"
ENGINE_VECTORIZED = "vectorized"
ENGINES = (ENGINE_ROWWISE, ENGINE_VECTORIZED)

#: Rows per chunk in the fused scan/filter/project kernel. Chunk size never
#: leaks into results or simulated cost (pinned by the chunking property
#: test); it only bounds the working set of one kernel invocation.
DEFAULT_CHUNK_SIZE = 1024

_default_engine = os.environ.get("REPRO_ENGINE", ENGINE_VECTORIZED)


def default_engine() -> str:
    """The engine mode used when a Session/Executor does not pick one."""
    return _default_engine


def set_default_engine(name: str) -> str:
    """Set the process-wide default engine mode; returns the previous one."""
    global _default_engine
    previous = _default_engine
    _default_engine = resolve_engine(name)
    return previous


def resolve_engine(name: str | None) -> str:
    """Validate an engine name; ``None`` means the process default."""
    if name is None:
        name = _default_engine
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; choose from {ENGINES}")
    return name


# -- fused scan + filter + project ---------------------------------------------


def fused_filter_project(
    partition,
    predicates: tuple,
    live: tuple[str, ...],
    evaluation,
    chunk_size: int,
) -> tuple[dict[str, list], int]:
    """One pass over a lazy scan partition in chunks: filter, then project.

    ``partition`` is a :class:`~repro.engine.data.LazyRowPartition`: its
    ``prefix`` is the scan alias qualifier (empty for intermediates, whose
    stored names are already qualified) and ``storage_column`` serves each
    referenced field as one flat list — pivoted from the stored rows once
    per dataset lifetime and memoized. ``live`` names the qualified columns
    to materialize for surviving rows — the projection part of the fusion;
    columns the query never references are never pivoted at all.

    Per chunk the survivor index list is refined predicate by predicate
    (mirroring the row-wise ``all()`` conjunction, including its
    short-circuit order), and only then are the live columns gathered for
    the survivors.
    """
    prefix = partition.prefix
    plen = len(prefix)
    pred_cols = []
    for predicate in predicates:
        column = predicate.column
        key = column[plen:] if plen and column.startswith(prefix) else column
        pred_cols.append(partition.storage_column(key))
    out_columns = []
    for name in live:
        key = name[plen:] if plen and name.startswith(prefix) else name
        out_columns.append((name, partition.storage_column(key)))

    out: dict[str, list] = {name: [] for name in live}
    length = 0
    for start in range(0, partition.length, chunk_size):
        stop = min(start + chunk_size, partition.length)
        survivors: list[int] | range = range(start, stop)
        for predicate, col in zip(predicates, pred_cols):
            if not survivors:
                break
            values = [col[i] for i in survivors]
            mask = predicate.evaluate_batch(values, evaluation)
            survivors = [i for i, ok in zip(survivors, mask) if ok]
        if not survivors:
            continue
        length += len(survivors)
        for name, col in out_columns:
            out[name].extend([col[i] for i in survivors])
    return out, length


def filter_columns(
    columns: dict[str, list],
    length: int,
    predicates: tuple,
    evaluation,
    chunk_size: int,
) -> tuple[dict[str, list], int]:
    """Filter an already-columnar partition, chunk by chunk.

    Same survivor-refinement contract as :func:`fused_filter_project`; the
    gather step copies every physical column for the surviving indices.
    """
    names = list(columns)
    pred_cols = [columns.get(p.column) for p in predicates]
    out: dict[str, list] = {name: [] for name in names}
    out_length = 0
    for start in range(0, length, chunk_size):
        stop = min(start + chunk_size, length)
        survivors: list[int] | range = range(start, stop)
        for predicate, col in zip(predicates, pred_cols):
            if not survivors:
                break
            if col is None:
                values: list = [None] * len(survivors)
            else:
                values = [col[i] for i in survivors]
            mask = predicate.evaluate_batch(values, evaluation)
            survivors = [i for i, ok in zip(survivors, mask) if ok]
        if not survivors:
            continue
        out_length += len(survivors)
        for name in names:
            col = columns[name]
            out[name].extend(col[i] for i in survivors)
    return out, out_length


def semi_join_filter(
    columns: dict[str, list],
    length: int,
    filters: tuple,
    chunk_size: int,
) -> tuple[dict[str, list], int]:
    """Bloom semi-join filter over a columnar partition, chunk by chunk.

    ``filters`` is an ordered tuple of ``(qualified column, BloomFilter)``
    pairs; a row survives only when every filter column is non-null and its
    value might be in the corresponding filter — the row-wise contract of
    ``SemiJoinFilterOp._keep`` (null join keys never match, so they are
    dropped exactly like the join itself would drop them). A filter column
    absent from the partition reads as all-null and eliminates the chunk.
    """
    names = list(columns)
    filter_cols = [columns.get(column) for column, _ in filters]
    out: dict[str, list] = {name: [] for name in names}
    out_length = 0
    for start in range(0, length, chunk_size):
        stop = min(start + chunk_size, length)
        survivors: list[int] | range = range(start, stop)
        for (_, bloom), col in zip(filters, filter_cols):
            if not survivors:
                break
            if col is None:
                survivors = []
                break
            contains = bloom.might_contain
            survivors = [
                i for i in survivors if col[i] is not None and contains(col[i])
            ]
        if not survivors:
            continue
        out_length += len(survivors)
        for name in names:
            col = columns[name]
            out[name].extend(col[i] for i in survivors)
    return out, out_length


# -- hash-join kernels ---------------------------------------------------------


def join_key_column(
    columns: dict[str, list], length: int, keys: tuple[str, ...]
) -> list:
    """Per-row join keys from key columns; ``None`` marks a null key.

    Single-column keys use the raw value (``None`` stays ``None``);
    composite keys become tuples, collapsed to ``None`` when any component
    is null — exactly the row-wise ``_key_fn`` contract.
    """
    if len(keys) == 1:
        col = columns.get(keys[0])
        return list(col) if col is not None else [None] * length

    parts = [
        columns.get(k) if columns.get(k) is not None else [None] * length
        for k in keys
    ]
    return [
        None if any(part is None for part in key) else key
        for key in zip(*parts)
    ]


def build_hash_table(key_column: list) -> dict:
    """Row positions per key, skipping null keys (SQL: never match)."""
    table: dict = {}
    for position, key in enumerate(key_column):
        if key is not None:
            table.setdefault(key, []).append(position)
    return table


def probe_hash_table(table: dict, key_column: list) -> tuple[list[int], list[int]]:
    """Batched probe: (build positions, probe positions) per output row.

    Output order matches the row-wise nested loop — probe rows in order,
    matches in build insertion order — so gathered outputs are identical.
    """
    build_idx: list[int] = []
    probe_idx: list[int] = []
    get = table.get
    for position, key in enumerate(key_column):
        if key is None:
            continue
        matches = get(key)
        if matches:
            build_idx.extend(matches)
            probe_idx.extend([position] * len(matches))
    return build_idx, probe_idx


def gather(column: list, positions: list[int]) -> list:
    return [column[i] for i in positions]


# -- exchange routing ----------------------------------------------------------

#: Per-partition-count route memos shared across exchanges. Routing is a pure
#: function of (key value, partition count) — ``stable_hash(key) % count`` —
#: so the cache can outlive any single exchange or query.
_route_caches: dict[int, dict] = {}


def shared_route_cache(partition_count: int) -> dict:
    cache = _route_caches.get(partition_count)
    if cache is None:
        cache = _route_caches[partition_count] = {}
    return cache


def route_partitions(key_values: list, partition_count: int, cache: dict) -> list[int]:
    """Destination partition per row: ``stable_hash(key) % partition_count``.

    Routing is a pure function of the key value, so repeated keys reuse the
    cached slot instead of re-hashing — same assignment as the row-wise
    exchange, far fewer blake2b calls.
    """
    routes = []
    for key in key_values:
        slot = cache.get(key)
        if slot is None:
            slot = stable_hash(key) % partition_count
            cache[key] = slot
        routes.append(slot)
    return routes
