"""In-flight partitioned data between operators.

In row-wise mode, rows travel between operators as per-partition lists of
dicts with *qualified* column names (``alias.field``); in vectorized mode
they travel as :class:`ColumnarData` — per-partition parallel column lists.
Alongside the payload both carry the column-type map (so intermediate
schemas and byte widths can be derived) and the partitioning property (so
the engine can skip re-partitioning when a join input is already
hash-partitioned on the join key — the optimization the paper's Hash Join
description calls out for key/foreign-key joins).

The two carriers expose the same read surface (``row_count``,
``modeled_rows``, ``row_width``, ``byte_size``, ``all_rows``, ``project``,
``schema``), and ``ColumnarData.columns`` always holds the *full* logical
column map — even when only a subset is physically materialized — so every
cost-model charge derived from widths and counts is byte-identical across
engines (DESIGN.md §10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import DataType, Field, Schema


@dataclass
class PartitionedData:
    """Rows spread over cluster partitions plus their physical properties."""

    partitions: list[list[dict]]
    columns: dict[str, DataType]
    partitioned_on: str | None = None
    #: Modeled full-scale rows per stored row; the cost clock charges
    #: ``row_count * scale`` (see DESIGN.md §2). Join outputs inherit the
    #: larger input scale.
    scale: float = 1.0

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    @property
    def row_count(self) -> int:
        return sum(len(p) for p in self.partitions)

    @property
    def modeled_rows(self) -> float:
        """Row count of the modeled full-scale data in flight."""
        return self.row_count * self.scale

    @property
    def row_width(self) -> int:
        return sum(dtype.byte_width for dtype in self.columns.values()) + 8

    @property
    def byte_size(self) -> float:
        return self.row_count * self.row_width

    def all_rows(self) -> list[dict]:
        rows: list[dict] = []
        for partition in self.partitions:
            rows.extend(partition)
        return rows

    def schema(self, primary_key: tuple[str, ...] = ()) -> Schema:
        """Materialization schema for these columns (qualified names kept)."""
        return Schema(
            tuple(Field(name, dtype) for name, dtype in self.columns.items()),
            primary_key,
        )

    def project(self, names: list[str] | tuple[str, ...]) -> PartitionedData:
        keep = [n for n in names if n in self.columns]
        projected = [
            [{name: row.get(name) for name in keep} for row in partition]
            for partition in self.partitions
        ]
        part_key = self.partitioned_on if self.partitioned_on in keep else None
        return PartitionedData(
            projected, {n: self.columns[n] for n in keep}, part_key, self.scale
        )


# -- columnar carrier (vectorized engine) ----------------------------------------


class ColumnPartition:
    """One partition as parallel column lists.

    ``columns`` maps qualified names to equal-length value lists; the set of
    physically present columns may be narrower than the data's logical
    column map when projection pushdown marked the rest dead. Reading an
    absent column yields nulls — the columnar analogue of ``row.get``.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: dict[str, list], length: int) -> None:
        self.columns = columns
        self.length = length

    def column(self, name: str) -> list:
        col = self.columns.get(name)
        if col is None:
            return [None] * self.length
        return col


class LazyRowPartition:
    """A scan's partition before any column has been touched.

    Holds a read-only reference to the dataset's stored row dicts plus the
    alias qualifier; columns are extracted on first use, so a fused
    select+project above the scan reads only referenced columns. ``cache``
    is the dataset's per-partition columnar memo
    (:meth:`repro.storage.dataset.Dataset.column_cache`): the row->column
    pivot for a given field happens once per dataset lifetime, and every
    later scan of the same partition reuses the extracted list.
    """

    __slots__ = ("rows", "prefix", "live", "cache")

    def __init__(
        self,
        rows: list[dict],
        prefix: str,
        live: tuple[str, ...] | None,
        cache: dict[str, list] | None = None,
    ) -> None:
        self.rows = rows
        self.prefix = prefix
        self.live = live
        self.cache = cache

    @property
    def length(self) -> int:
        return len(self.rows)

    def storage_column(self, key: str) -> list:
        """Values of one *storage-named* (unqualified) field, memoized."""
        cache = self.cache
        if cache is not None:
            column = cache.get(key)
            if column is None:
                column = [row.get(key) for row in self.rows]
                cache[key] = column
            return column
        return [row.get(key) for row in self.rows]

    def extract(self, names) -> ColumnPartition:
        """Materialize the qualified ``names`` from the stored rows."""
        plen = len(self.prefix)
        columns = {}
        for name in names:
            key = name[plen:] if plen else name
            columns[name] = self.storage_column(key)
        return ColumnPartition(columns, len(self.rows))


def materialize(
    partition: ColumnPartition | LazyRowPartition, columns: dict[str, DataType]
) -> ColumnPartition:
    """Normalize a partition to extracted column lists.

    Lazy scan partitions extract their live set (all logical columns when no
    pushdown information was attached); extracted partitions pass through.
    """
    if isinstance(partition, ColumnPartition):
        return partition
    live = partition.live if partition.live is not None else tuple(columns)
    return partition.extract(live)


@dataclass
class ColumnarData:
    """Column-partitioned in-flight data with the physical properties of
    :class:`PartitionedData` (vectorized-engine carrier)."""

    partitions: list[ColumnPartition | LazyRowPartition]
    #: the *logical* column map — identical, in content and insertion order,
    #: to the row-wise engine's at the same operator boundary, regardless of
    #: which columns are physically materialized. Keeps ``row_width`` (and
    #: with it every width-derived charge) byte-identical across engines.
    columns: dict[str, DataType]
    partitioned_on: str | None = None
    scale: float = 1.0

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    @property
    def row_count(self) -> int:
        return sum(p.length for p in self.partitions)

    @property
    def modeled_rows(self) -> float:
        return self.row_count * self.scale

    @property
    def row_width(self) -> int:
        return sum(dtype.byte_width for dtype in self.columns.values()) + 8

    @property
    def byte_size(self) -> float:
        return self.row_count * self.row_width

    def materialized(self) -> list[ColumnPartition]:
        return [materialize(p, self.columns) for p in self.partitions]

    def to_row_partitions(self) -> list[list[dict]]:
        """Convert back to per-partition row dicts (sink materialization).

        Key order inside each dict follows the physical column order, which
        tracks the row-wise engine's dict construction order.
        """
        out = []
        for partition in self.materialized():
            names = tuple(partition.columns)
            cols = [partition.columns[n] for n in names]
            if not names:
                out.append([{} for _ in range(partition.length)])
                continue
            out.append([dict(zip(names, values)) for values in zip(*cols)])
        return out

    def all_rows(self) -> list[dict]:
        rows: list[dict] = []
        for partition in self.to_row_partitions():
            rows.extend(partition)
        return rows

    def schema(self, primary_key: tuple[str, ...] = ()) -> Schema:
        return Schema(
            tuple(Field(name, dtype) for name, dtype in self.columns.items()),
            primary_key,
        )

    def project(self, names: list[str] | tuple[str, ...]) -> ColumnarData:
        keep = [n for n in names if n in self.columns]
        projected: list[ColumnPartition | LazyRowPartition] = []
        for partition in self.partitions:
            if isinstance(partition, LazyRowPartition):
                # stay lazy: narrow the live set, defer extraction
                projected.append(
                    LazyRowPartition(
                        partition.rows,
                        partition.prefix,
                        tuple(keep),
                        partition.cache,
                    )
                )
            else:
                cols = {
                    n: partition.column(n) for n in keep
                }
                projected.append(ColumnPartition(cols, partition.length))
        part_key = self.partitioned_on if self.partitioned_on in keep else None
        return ColumnarData(
            projected, {n: self.columns[n] for n in keep}, part_key, self.scale
        )
