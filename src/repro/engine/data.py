"""In-flight partitioned data between operators.

Rows travel between operators as per-partition lists of dicts with
*qualified* column names (``alias.field``). Alongside the rows we carry the
column-type map (so intermediate schemas and byte widths can be derived) and
the partitioning property (so the engine can skip re-partitioning when a join
input is already hash-partitioned on the join key — the optimization the
paper's Hash Join description calls out for key/foreign-key joins).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import DataType, Field, Schema


@dataclass
class PartitionedData:
    """Rows spread over cluster partitions plus their physical properties."""

    partitions: list[list[dict]]
    columns: dict[str, DataType]
    partitioned_on: str | None = None
    #: Modeled full-scale rows per stored row; the cost clock charges
    #: ``row_count * scale`` (see DESIGN.md §2). Join outputs inherit the
    #: larger input scale.
    scale: float = 1.0

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    @property
    def row_count(self) -> int:
        return sum(len(p) for p in self.partitions)

    @property
    def modeled_rows(self) -> float:
        """Row count of the modeled full-scale data in flight."""
        return self.row_count * self.scale

    @property
    def row_width(self) -> int:
        return sum(dtype.byte_width for dtype in self.columns.values()) + 8

    @property
    def byte_size(self) -> float:
        return self.row_count * self.row_width

    def all_rows(self) -> list[dict]:
        rows: list[dict] = []
        for partition in self.partitions:
            rows.extend(partition)
        return rows

    def schema(self, primary_key: tuple[str, ...] = ()) -> Schema:
        """Materialization schema for these columns (qualified names kept)."""
        return Schema(
            tuple(Field(name, dtype) for name, dtype in self.columns.items()),
            primary_key,
        )

    def project(self, names: list[str] | tuple[str, ...]) -> PartitionedData:
        keep = [n for n in names if n in self.columns]
        projected = [
            [{name: row.get(name) for name in keep} for row in partition]
            for partition in self.partitions
        ]
        part_key = self.partitioned_on if self.partitioned_on in keep else None
        return PartitionedData(
            projected, {n: self.columns[n] for n in keep}, part_key, self.scale
        )
