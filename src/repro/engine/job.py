"""Hyracks-style jobs: a runnable operator tree with a label and phase tag.

The dynamic optimization driver splits one query into several jobs (Figure
4): predicate push-down jobs, per-iteration join jobs ending in a Sink, and
the final job ending in DistributeResult. The phase tag keeps that structure
visible for tests and plan dumps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.operators.base import PhysicalOperator


@dataclass
class Job:
    """A runnable operator tree."""

    root: PhysicalOperator
    label: str = "job"
    phase: str = ""

    def render(self) -> str:
        header = f"-- Job: {self.label}" + (f" [{self.phase}]" if self.phase else "")
        return header + "\n" + self.root.render()
