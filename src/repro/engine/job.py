"""Hyracks-style jobs: a runnable operator tree with a label and phase tag.

The dynamic optimization driver splits one query into several jobs (Figure
4): predicate push-down jobs, per-iteration join jobs ending in a Sink, and
the final job ending in DistributeResult. The phase tag keeps that structure
visible for tests and plan dumps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.operators.base import PhysicalOperator

if TYPE_CHECKING:
    from repro.algebra.plan import PlanNode


@dataclass
class Job:
    """A runnable operator tree."""

    root: PhysicalOperator
    label: str = "job"
    phase: str = ""
    #: the join tree this job was compiled from, when there is one — the
    #: verifier's plan-level rules (key types, broadcast budgets) need the
    #: algebraic view; push-down jobs and hand-built jobs carry ``None``.
    plan: PlanNode | None = None

    def render(self) -> str:
        header = f"-- Job: {self.label}" + (f" [{self.phase}]" if self.phase else "")
        return header + "\n" + self.root.render()
