"""Hyracks-like partitioned dataflow engine."""

from repro.engine.data import PartitionedData
from repro.engine.executor import Executor
from repro.engine.job import Job
from repro.engine.metrics import ExecutionResult, JobMetrics

__all__ = ["ExecutionResult", "Executor", "Job", "JobMetrics", "PartitionedData"]
