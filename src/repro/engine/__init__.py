"""Hyracks-like partitioned dataflow engine."""

from repro.engine.data import PartitionedData
from repro.engine.executor import Executor
from repro.engine.job import Job
from repro.engine.metrics import ExecutionResult, JobMetrics
from repro.engine.scheduler import (
    JobOutcome,
    JobRequest,
    JobScheduler,
    QueryHandle,
    ScheduleInfo,
    SchedulerConfig,
)

__all__ = [
    "ExecutionResult",
    "Executor",
    "Job",
    "JobMetrics",
    "JobOutcome",
    "JobRequest",
    "JobScheduler",
    "PartitionedData",
    "QueryHandle",
    "ScheduleInfo",
    "SchedulerConfig",
]
