"""Simulated-time accounting for jobs and whole query executions.

Figure 6 of the paper decomposes execution time into the baseline work, the
re-optimization overhead (writing + reading materialized intermediates and
the extra job launches), and the online-statistics overhead. The metrics
object keeps those components separate so the overhead experiments can report
them individually.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class JobMetrics:
    """Simulated seconds by activity, plus raw work counters, for one job."""

    startup: float = 0.0
    scan: float = 0.0
    compute: float = 0.0
    network: float = 0.0
    materialize: float = 0.0
    spill: float = 0.0
    stats: float = 0.0
    index: float = 0.0
    output: float = 0.0

    tuples_scanned: int = 0
    tuples_joined: int = 0
    rows_materialized: int = 0
    index_lookups: int = 0
    rows_out: int = 0
    jobs: int = 0

    _TIME_FIELDS = (
        "startup",
        "scan",
        "compute",
        "network",
        "materialize",
        "spill",
        "stats",
        "index",
        "output",
    )

    @property
    def total_seconds(self) -> float:
        return sum(getattr(self, name) for name in self._TIME_FIELDS)

    @property
    def reoptimization_seconds(self) -> float:
        """The overhead Figure 6 attributes to re-optimization points:
        materializing/re-reading intermediates plus extra job launches."""
        return self.materialize + self.startup

    @property
    def stats_seconds(self) -> float:
        """Online statistics collection overhead (Figure 6)."""
        return self.stats

    def merge(self, other: JobMetrics) -> JobMetrics:
        """Accumulate another job's metrics into this one (in place)."""
        for f in fields(self):
            if f.name.startswith("_"):
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> JobMetrics:
        clone = JobMetrics()
        clone.merge(self)
        return clone

    def breakdown(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in self._TIME_FIELDS}


@dataclass
class ExecutionResult:
    """Final output of running a query under some optimizer."""

    rows: list[dict]
    metrics: JobMetrics
    plan_description: str = ""
    phases: list[str] = field(default_factory=list)
    #: structured execution trace (repro.obs.QueryTrace): hierarchical spans
    #: plus estimated-vs-actual cardinality records; None only for results
    #: assembled outside the traced execution paths.
    trace: object | None = None
    #: scheduling record (repro.engine.scheduler.ScheduleInfo) when the query
    #: ran through a JobScheduler: admission/finish instants on the shared
    #: cluster clock and the queueing delay charged under saturation. None
    #: for direct (unscheduled) execution; never affects ``metrics``.
    schedule: object | None = None
    #: feedback-policy decisions (repro.core.policy.PolicyDecision) taken
    #: during this run: replan triggers, widened picks, early fusing. Empty
    #: for runs without a policy (or with ReplanPolicy.off()).
    decisions: tuple = ()

    @property
    def seconds(self) -> float:
        return self.metrics.total_seconds

    def explain_analyze(self) -> str:
        """Plan-with-actuals report; requires a captured trace.

        When the query ran through a scheduler under contention (or was
        answered from a service's result cache), the report is suffixed with
        the scheduling annotations — queueing delay and cache-hit status —
        so the gap between a query's own work and its observed latency is
        visible in the same place as the plan. A solo zero-delay run renders
        exactly as before.
        """
        body = (
            "no execution trace captured"
            if self.trace is None
            else self.trace.explain_analyze()
        )
        schedule = self.schedule
        if schedule is None:
            return body
        notes = []
        if getattr(schedule, "cache_hit", False):
            notes.append(
                "answered from result cache (zero cluster work, "
                f"latency {schedule.latency_seconds:.2f}s on the shared clock)"
            )
        if schedule.queue_delay_seconds > 0.0:
            notes.append(
                f"queue delay {schedule.queue_delay_seconds:.2f}s "
                f"(submitted {schedule.submitted_at:.2f}s, "
                f"finished {schedule.finished_at:.2f}s"
                + (f", tenant {schedule.tenant!r}" if schedule.tenant else "")
                + ")"
            )
        if not notes:
            return body
        return body + "\n" + "\n".join(f"-- schedule: {note}" for note in notes)
