"""The Planner stage of Algorithm 1 (lines 25-33).

Given the (reconstructed) query and the freshest statistics, the planner
finds the single join with the least estimated result cardinality — it "does
not need to form the complete plan, but only to find the cheapest next join
for each iteration". When exactly two joins remain it additionally orders
them (the endgame of Figure 3, Plan 2) and the chosen plan is final.

The ranking function is pluggable: the paper's dynamic approach ranks by the
formula-(1) result estimate; the INGRES-like baseline ranks by input dataset
cardinalities only.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.algebra.plan import JoinNode, PlanNode
from repro.algebra.toolkit import PlannerToolkit
from repro.common.errors import OptimizationError
from repro.lang.ast import JoinCondition

#: rank(toolkit, alias_a, alias_b, conditions) -> sort key (lower = better)
RankFunction = Callable[[PlannerToolkit, str, str, list], float]


def rank_by_result_cardinality(
    toolkit: PlannerToolkit, a: str, b: str, conditions: list
) -> float:
    """The paper's dynamic ranking: formula (1) result estimate."""
    return toolkit.estimate_pair(a, b, conditions)


def rank_by_input_cardinality(
    toolkit: PlannerToolkit, a: str, b: str, conditions: list
) -> float:
    """INGRES-like ranking: dataset cardinalities only, no result estimate."""
    return toolkit.input_cardinality(a, b)


@dataclass(frozen=True)
class PlannedJoin:
    """The planner's pick for the next join to execute."""

    pair: frozenset
    conditions: tuple[JoinCondition, ...]
    rank: float
    node: JoinNode


class Planner:
    """One planning invocation over the current query + statistics."""

    def __init__(
        self,
        toolkit: PlannerToolkit,
        rank: RankFunction = rank_by_result_cardinality,
    ) -> None:
        self.toolkit = toolkit
        self.rank = rank

    def ranked_joins(self) -> list[PlannedJoin]:
        """All candidate joins, cheapest first (ties broken by alias names)."""
        graph = self.toolkit.join_graph()
        if not graph:
            return []
        planned = []
        for pair, conditions in graph.items():
            a, b = sorted(pair)
            node = self.toolkit.make_join(
                self.toolkit.leaf(a), self.toolkit.leaf(b), conditions
            )
            planned.append(
                PlannedJoin(pair, tuple(conditions), self.rank(self.toolkit, a, b, conditions), node)
            )
        planned.sort(key=lambda p: (p.rank, tuple(sorted(p.pair))))
        return planned

    def cheapest_join(self) -> PlannedJoin:
        """Algorithm 1 line 28: the join with the minimum rank."""
        joins = self.ranked_joins()
        if not joins:
            raise OptimizationError("query has no joins to plan")
        return joins[0]

    def final_plan(self) -> PlanNode:
        """Endgame planning once at most two joins remain.

        - 0 joins: a single FROM entry — the leaf is the plan.
        - 1 join: orient + pick the algorithm for it.
        - 2 joins: the cheaper join becomes the inner subtree, then it is
          joined with the remaining FROM entry (Figure 3, Plan 2).
        """
        toolkit = self.toolkit
        graph = toolkit.join_graph()
        if len(graph) > 2:
            raise OptimizationError(
                f"final_plan called with {len(graph)} joins remaining"
            )
        joined_aliases = set().union(*graph) if graph else set()
        unjoined = set(toolkit.query.aliases) - joined_aliases
        if graph and unjoined:
            raise OptimizationError(
                f"FROM entries {sorted(unjoined)} have no join condition "
                "(cross products unsupported)"
            )
        if not graph:
            aliases = toolkit.query.aliases
            if len(aliases) != 1:
                raise OptimizationError(
                    "query without join conditions over multiple tables "
                    "(cross products unsupported)"
                )
            return toolkit.leaf(aliases[0])
        if len(graph) == 1:
            return self.cheapest_join().node

        inner = self.cheapest_join()
        outer_aliases = set(toolkit.query.aliases) - set(inner.pair)
        inner_node = inner.node
        conditions = toolkit.conditions_across(
            inner_node.aliases, frozenset(outer_aliases)
        )
        if not conditions:
            raise OptimizationError(
                "remaining join does not connect to the chosen inner join"
            )
        remaining = sorted(
            {
                alias
                for condition in conditions
                for alias in toolkit.resolver.join_sides(condition)
                if alias not in inner.pair
            }
        )
        if len(remaining) != 1:
            raise OptimizationError(
                f"endgame expected one remaining table, found {remaining}"
            )
        outer_leaf = toolkit.leaf(remaining[0])
        return toolkit.make_join(inner_node, outer_leaf, conditions)
