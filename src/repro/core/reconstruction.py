"""Query Reconstruction (Algorithm 1 lines 35-39, Section 5.4).

After a join (or a predicate push-down) executes and its result materializes
as dataset ``d'``, the remaining query is rewritten:

- the participating FROM entries are removed and replaced by ``d'``;
- the executed join conditions are removed;
- every other clause stays textually identical — this reproduction's
  qualified-column convention means references like ``B.c`` remain valid
  because the intermediate's physical columns keep their original names
  (the paper's "suitable adjustment" of the WHERE clause becomes a no-op in
  the column-name space, with the column resolver re-binding providers).
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import QueryError
from repro.lang.ast import Query, TableRef
from repro.lang.binding import ColumnResolver


def replace_filtered_table(query: Query, alias: str, intermediate: str) -> Query:
    """Swap a FROM entry for its post-predicate materialization.

    The alias is preserved (the intermediate's columns are qualified with
    it), and the alias's local predicates are dropped — they have been
    applied (Section 5.1's Q1 -> Q1' rewrite).
    """
    tables = tuple(
        TableRef(intermediate, alias) if t.alias == alias else t
        for t in query.tables
    )
    predicates = tuple(p for p in query.predicates if p.alias != alias)
    return replace(query, tables=tables, predicates=predicates)


def reconstruct_after_join(
    query: Query,
    resolver: ColumnResolver,
    executed_pair: frozenset,
    intermediate: str,
) -> Query:
    """Rewrite the query after the pair's join materialized as ``intermediate``."""
    missing = [a for a in executed_pair if a not in query.aliases]
    if missing:
        raise QueryError(f"cannot reconstruct: aliases {missing} not in query")

    tables = tuple(t for t in query.tables if t.alias not in executed_pair)
    tables += (TableRef(intermediate, intermediate),)

    joins = tuple(
        condition
        for condition in query.joins
        if frozenset(resolver.join_sides(condition)) != executed_pair
    )
    # Local predicates of the merged tables were evaluated inside the job.
    predicates = tuple(p for p in query.predicates if p.alias not in executed_pair)
    return replace(query, tables=tables, joins=joins, predicates=predicates)
