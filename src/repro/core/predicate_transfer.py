"""Predicate transfer: Bloom-filter pre-filtering across join edges.

The paper's pre-processing phase (Algorithm 1 lines 6-9) materializes *local*
predicates only. Predicate transfer [Yang et al., "Predicate Transfer:
Efficient Pre-Filtering on Multi-Join Queries"] generalizes it: before any
join executes, every FROM entry ships a Bloom filter over each of its join
columns to its join partners, and every partner is reduced to the rows whose
keys might match. Two passes over the join graph make the reduction
transitive:

- **forward pass** — FROM entries ordered by ascending estimated
  post-predicate cardinality (most selective first, so the tightest filters
  flow outward); each entry is reduced by the filters of its already-visited
  partners, then builds filters over its own join columns;
- **backward pass** — the reverse order; each entry is reduced by the
  (by now fully reduced) filters of its later partners, and rebuilds its
  filters when an earlier partner still needs them.

Reductions are *real* jobs (Scan/Reader → Select → SemiJoinFilter → Sink)
yielded through the stage-generator protocol, so the scheduler, the cost
model, the tracer and the P001-P007 verifier all see them; filter builds are
in-process passes charged as virtual-cost requests (the pilot-run /
sketch-pass pattern). Every reduce job registers measured statistics for its
intermediate, so a downstream planner — the ``predicate_transfer`` strategy's
one-shot bushy DP, or the ``dynamic`` re-optimization loop running behind the
``pre_filter="transfer"`` prelude — plans over post-transfer cardinalities.

Filters are approximate with false positives only, so each reduction keeps a
superset of the rows the later joins keep: results are byte-identical to the
unfiltered execution, only cheaper (or not — shipping and probing filters is
charged honestly, and ``bench transfer`` maps both regimes).
"""

from __future__ import annotations

from collections.abc import Generator, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.algebra.jobgen import build_transfer_job
from repro.algebra.rules.pushdown import surviving_columns
from repro.analysis.dataflow import JobDataflow, TransferSummary
from repro.core.predicate_pushdown import join_columns_of
from repro.core.reconstruction import replace_filtered_table
from repro.engine.bloom import DEFAULT_FPP, BloomFilter, bloom_size_bytes
from repro.engine.metrics import JobMetrics
from repro.engine.scheduler.request import JobRequest
from repro.lang.ast import EvaluationContext, Predicate, Query, split_column
from repro.lang.binding import ColumnResolver
from repro.obs.trace import Tracer
from repro.stats.catalog import StatisticsCatalog
from repro.stats.estimation import filtered_cardinality


@dataclass
class TransferOutcome:
    """Result of one predicate-transfer prelude."""

    query: Query
    executed_aliases: list[str]
    #: alias -> its final (fully reduced) intermediate name
    intermediates: dict[str, str] = field(default_factory=dict)
    #: Bloom filters built across both passes (observability)
    filters_built: int = 0


def transfer_order(query: Query, statistics: StatisticsCatalog) -> list[str]:
    """FROM aliases by ascending estimated post-predicate cardinality.

    The most selective entries go first so their filters reduce everything
    visited after them; ties break on the alias for determinism.
    """
    keyed: list[tuple[float, str]] = []
    for table in query.tables:
        stats = statistics.get(table.dataset)
        estimate = (
            filtered_cardinality(stats, query.predicates_for(table.alias))
            * stats.scale
        )
        keyed.append((estimate, table.alias))
    return [alias for _, alias in sorted(keyed)]


def transfer_adjacency(query: Query) -> dict[str, list[tuple[str, str, str]]]:
    """Join-graph adjacency: alias -> sorted (partner, own column, partner
    column) triples, one per join condition touching the alias."""
    adjacency: dict[str, list[tuple[str, str, str]]] = {
        table.alias: [] for table in query.tables
    }
    for condition in query.joins:
        left_alias, _ = split_column(condition.left)
        right_alias, _ = split_column(condition.right)
        adjacency[left_alias].append(
            (right_alias, condition.left, condition.right)
        )
        adjacency[right_alias].append(
            (left_alias, condition.right, condition.left)
        )
    for alias in adjacency:
        adjacency[alias].sort()
    return adjacency


def transfer_cache_token(
    dataset: str,
    predicates: tuple[Predicate, ...],
    keep_columns: tuple[str, ...],
    stats_columns: tuple[str, ...],
    filters: tuple[tuple[str, BloomFilter], ...],
    parameters: dict[str, Any] | None,
) -> str:
    """Namespace-free identity of one base-dataset transfer reduction.

    Mirrors :func:`~repro.core.predicate_pushdown.pushdown_cache_token` with
    the transferred filters folded in by content fingerprint: two queries
    reducing the same base dataset under byte-identical filters (same
    partners, same filter contents) may replay each other's materialization.
    """
    bound = sorted((k, repr(v)) for k, v in (parameters or {}).items())
    filter_ids = ",".join(
        f"{column}:{bloom.fingerprint()}" for column, bloom in filters
    )
    return "|".join(
        [
            "transfer",
            dataset,
            repr(predicates),
            repr(tuple(keep_columns)),
            repr(tuple(stats_columns)),
            filter_ids,
            repr(bound),
        ]
    )


def _intermediate_name(alias: str, namespace: str, direction: str) -> str:
    return f"{namespace}__transfer_{direction}_{alias}"


def _gather_filters(
    alias: str,
    sources: set[str],
    adjacency: dict[str, list[tuple[str, str, str]]],
    filters: dict[str, dict[str, BloomFilter]],
) -> tuple[tuple[str, BloomFilter], ...]:
    """Applicable (own column, partner filter) pairs from ``sources``."""
    gathered: list[tuple[str, BloomFilter]] = []
    for partner, own_column, partner_column in adjacency[alias]:
        if partner not in sources:
            continue
        entry = filters.get(partner)
        if entry is None:
            continue
        bloom = entry.get(partner_column)
        if bloom is None:
            continue
        gathered.append((own_column, bloom))
    # Stable sort by probe column; adjacency order breaks ties (the sort in
    # transfer_adjacency makes that deterministic).
    gathered.sort(key=lambda item: item[0])
    return tuple(gathered)


def transfer_stages(
    query: Query,
    session: Any,
    working_statistics: StatisticsCatalog,
    metrics: JobMetrics,
    phases: list[str],
    tracer: Tracer | None = None,
    namespace: str = "",
    fpp: float = DEFAULT_FPP,
) -> Generator[JobRequest, Any, TransferOutcome]:
    """Run the two-pass transfer schedule; return the rewritten query.

    A stage generator in the driver protocol: reduce jobs are yielded one at
    a time (each depends on filters built from the previous jobs' outputs —
    unlike push-down there is no independent group to batch), filter builds
    are yielded as virtual-cost requests. Returns a :class:`TransferOutcome`
    whose query references the final per-alias intermediates.
    """
    if len(query.tables) < 2 or not query.joins:
        return TransferOutcome(query, [])

    resolver = ColumnResolver(query, session.datasets.schema_lookup)
    columns_of_alias = {alias: resolver.columns_of(alias) for alias in query.aliases}
    join_columns = join_columns_of(query)
    keep_of = {
        alias: surviving_columns(query, columns_of_alias[alias])
        for alias in query.aliases
    }
    stats_of = {
        alias: tuple(c for c in keep_of[alias] if c in join_columns)
        for alias in query.aliases
    }

    adjacency = transfer_adjacency(query)
    order = transfer_order(query, working_statistics)
    position = {alias: index for index, alias in enumerate(order)}
    context = EvaluationContext(query.parameters, session.udfs)

    current: dict[str, str | None] = {alias: None for alias in order}
    filters: dict[str, dict[str, BloomFilter]] = {}
    outcome = TransferOutcome(query, [])

    def has_later_partners(alias: str) -> bool:
        return any(
            position[partner] > position[alias]
            for partner, _, _ in adjacency[alias]
        )

    def reduce_stage(
        alias: str, direction: str, sources: set[str]
    ) -> Iterator[JobRequest]:
        """One reduction of ``alias`` by its partners' current filters."""
        gathered = _gather_filters(alias, sources, adjacency, filters)
        if not gathered:
            return
        name = _intermediate_name(alias, namespace, direction)
        source_name = current[alias]
        is_intermediate = source_name is not None
        predicates = () if is_intermediate else query.predicates_for(alias)
        final_reduce = direction == "b" or not has_later_partners(alias)
        stats_columns = stats_of[alias] if final_reduce else ()
        job = build_transfer_job(
            source_name if is_intermediate else query.table(alias).dataset,
            alias,
            is_intermediate,
            predicates,
            gathered,
            keep_of[alias],
            name,
            stats_columns,
            phase=f"transfer:{alias}" if direction == "f" else f"transfer-back:{alias}",
        )
        estimate: tuple[str, float] | None = None
        if tracer is not None and final_reduce:
            # The transfer stage is a re-optimization point: record what the
            # pre-transfer statistics predicted for this entry (local
            # predicates only) against the measured post-transfer rows.
            base_stats = working_statistics.get(query.table(alias).dataset)
            estimate = (
                f"τ({alias})",
                filtered_cardinality(base_stats, query.predicates_for(alias))
                * base_stats.scale,
            )
        cache_token: str | None = None
        batch_key: str | None = None
        if not is_intermediate:
            batch_key = query.table(alias).dataset
            cache_token = transfer_cache_token(
                batch_key,
                predicates,
                keep_of[alias],
                stats_columns,
                gathered,
                query.parameters,
            )
        yield JobRequest(
            phase=job.phase,
            cumulative=metrics,
            job=job,
            parameters=query.parameters,
            statistics=working_statistics,
            tracer=tracer,
            estimate=estimate,
            batch_key=batch_key,
            kind="transfer",
            cache_token=cache_token,
        )
        phases.append(job.phase)
        current[alias] = name
        if alias not in outcome.executed_aliases:
            outcome.executed_aliases.append(alias)

    def build_stage(alias: str) -> Iterator[JobRequest]:
        """Build (or rebuild) the alias's filters from its current rows."""
        entry, delta = _build_filters(
            query, alias, current[alias], session, context, adjacency, fpp
        )
        if entry is None:
            return
        filters[alias] = entry
        outcome.filters_built += len(entry)
        phase_name = f"transfer-build:{alias}"
        yield JobRequest(
            phase=phase_name,
            cumulative=metrics,
            virtual_cost=delta,
            tracer=tracer,
            kind="transfer",
        )
        phases.append(phase_name)
        if tracer is not None:
            # The build pass is a virtual-cost request that never reaches the
            # launch gate; record its filter fingerprints directly so the
            # Q006 build-before-probe audit sees the build precede every
            # reduce job that probes these filters.
            tracer.record_dataflow(
                JobDataflow(
                    phase=phase_name,
                    label=phase_name,
                    kind="transfer",
                    builds=tuple(
                        sorted(bloom.fingerprint() for bloom in entry.values())
                    ),
                )
            )

    # -- forward pass ---------------------------------------------------------
    for index, alias in enumerate(order):
        yield from reduce_stage(alias, "f", set(order[:index]))
        yield from build_stage(alias)

    # -- backward pass --------------------------------------------------------
    for index in range(len(order) - 1, -1, -1):
        alias = order[index]
        before = current[alias]
        yield from reduce_stage(alias, "b", set(order[index + 1 :]))
        reduced = current[alias] != before
        if reduced and any(
            position[partner] < position[alias]
            for partner, _, _ in adjacency[alias]
        ):
            # An earlier partner's backward reduction will probe this entry's
            # filters; rebuild them over the newly reduced rows.
            yield from build_stage(alias)

    # -- rewrite --------------------------------------------------------------
    rewritten = query
    for alias in order:
        name = current[alias]
        if name is not None:
            rewritten = replace_filtered_table(rewritten, alias, name)
            outcome.intermediates[alias] = name
    outcome.query = rewritten
    if tracer is not None:
        # The Q006 rewiring audit: which aliases the pass reduced, and the
        # (alias, dataset) binding of every FROM entry before and after the
        # replace_filtered_table rewrite. All sorted — content-deterministic.
        tracer.record_dataflow(
            TransferSummary(
                reduced=tuple(sorted(outcome.intermediates)),
                intermediates=tuple(sorted(outcome.intermediates.items())),
                original_tables=tuple(
                    sorted((t.alias, t.dataset) for t in query.tables)
                ),
                rewritten_tables=tuple(
                    sorted((t.alias, t.dataset) for t in rewritten.tables)
                ),
            )
        )
    return outcome


def _build_filters(
    query: Query,
    alias: str,
    current_name: str | None,
    session: Any,
    context: EvaluationContext,
    adjacency: dict[str, list[tuple[str, str, str]]],
    fpp: float,
) -> tuple[dict[str, BloomFilter] | None, JobMetrics | None]:
    """One in-process filter-build pass over the alias's current rows.

    Reads either the base dataset (applying local predicates, exactly like
    the sketch pass) or the alias's latest transfer intermediate (already
    filtered). Returns the per-join-column filters plus the virtual-cost
    delta that charges the pass to the simulated clock: job launch, the
    scan/read, predicate evaluation when predicates ran, and one Bloom
    insertion per (surviving row, join column).
    """
    own_columns = tuple(
        sorted({own_column for _, own_column, _ in adjacency[alias]})
    )
    if not own_columns:
        return None, None

    cost = session.executor.cost
    delta = JobMetrics()
    delta.startup = cost.job_startup()
    delta.jobs = 1

    values: dict[str, list[object]] = {column: [] for column in own_columns}
    if current_name is None:
        table = query.table(alias)
        dataset = session.datasets.get(table.dataset)
        predicates: tuple[Predicate, ...] = query.predicates_for(alias)
        prefix = f"{alias}."
        storage_names = {
            column: split_column(column)[1] for column in own_columns
        }
        survivors = 0
        for row in dataset.rows():
            if predicates:
                qualified = {prefix + key: value for key, value in row.items()}
                if not all(p.evaluate(qualified, context) for p in predicates):
                    continue
            survivors += 1
            for column in own_columns:
                values[column].append(row.get(storage_names[column]))
        delta.scan = cost.scan(dataset.modeled_rows, dataset.schema.row_width)
        if predicates:
            delta.compute = cost.predicate_eval(dataset.modeled_rows)
    else:
        dataset = session.datasets.get(current_name)
        predicates = ()
        survivors = 0
        for row in dataset.rows():
            survivors += 1
            for column in own_columns:
                values[column].append(row.get(column))
        delta.scan = cost.read_materialized(
            dataset.modeled_rows, dataset.schema.row_width
        )

    modeled_survivors = survivors * dataset.scale
    delta.compute += cost.bloom_build(modeled_survivors, len(own_columns))
    delta.tuples_scanned = dataset.row_count

    charge = bloom_size_bytes(max(1.0, modeled_survivors), fpp)
    built = {
        column: BloomFilter.build(
            values[column], max(1, survivors), fpp, charge_bytes=charge
        )
        for column in own_columns
    }
    return built, delta
