"""The paper's contribution: runtime dynamic optimization (Algorithm 1)."""

from repro.core.driver import DynamicOptimizer, greedy_full_plan, resolve_logical
from repro.core.planner import (
    PlannedJoin,
    Planner,
    rank_by_input_cardinality,
    rank_by_result_cardinality,
)
from repro.core.predicate_pushdown import (
    PushdownOutcome,
    execute_pushdowns,
    intermediate_name_for,
    pushdown_stages,
)
from repro.core.reconstruction import reconstruct_after_join, replace_filtered_table

__all__ = [
    "DynamicOptimizer",
    "PlannedJoin",
    "Planner",
    "PushdownOutcome",
    "execute_pushdowns",
    "greedy_full_plan",
    "intermediate_name_for",
    "pushdown_stages",
    "rank_by_input_cardinality",
    "rank_by_result_cardinality",
    "reconstruct_after_join",
    "replace_filtered_table",
    "resolve_logical",
]

from repro.core.driver import DriverState, SimulatedFailure  # noqa: E402

__all__ += ["DriverState", "SimulatedFailure"]
