"""Predicate push-down execution (Algorithm 1 lines 6-9 and 20-23).

Datasets with multiple local predicates or at least one complex (UDF /
parameterized) predicate are wrapped in single-variable select-project
queries and executed *first*. Each produces a materialized post-predicate
dataset plus exact statistics, and the main query is rewritten to reference
the materialization (Section 5.1's Q1 -> Q1').

Push-down jobs are independent of each other, so :func:`pushdown_stages`
yields them as one *group* of :class:`JobRequest`s tagged with the base
dataset they scan (``batch_key``). The synchronous pump runs them in order
(the pre-scheduler behavior); the job scheduler may merge same-dataset scans
— from this query or a concurrently admitted one — into a single cluster
job whose scan cost is shared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.jobgen import build_pushdown_job
from repro.algebra.rules.pushdown import pushdown_candidates
from repro.core.reconstruction import replace_filtered_table
from repro.engine.metrics import JobMetrics
from repro.engine.scheduler.request import JobRequest, drive_stages
from repro.lang.ast import Query
from repro.lang.binding import ColumnResolver
from repro.obs.trace import Tracer
from repro.stats.catalog import StatisticsCatalog
from repro.stats.estimation import filtered_cardinality


@dataclass
class PushdownOutcome:
    """Result of executing all qualifying push-down subqueries."""

    query: Query
    executed_aliases: list[str]
    intermediates: dict[str, str]  # alias -> intermediate dataset name


def intermediate_name_for(alias: str, namespace: str = "") -> str:
    return f"{namespace}__filtered_{alias}"


def pushdown_cache_token(candidate, stats_columns, parameters) -> str:
    """Namespace-free identity of one push-down materialization.

    Two requests with equal tokens perform byte-identical work over the same
    base dataset (same predicates, projection, sketched columns, and bound
    parameter values), so the service's intermediate cache may replay one's
    output for the other. The query's namespace and alias are deliberately
    excluded — the replay re-registers under the requesting query's names.
    """
    bound = sorted((k, repr(v)) for k, v in (parameters or {}).items())
    return "|".join(
        [
            "pushdown",
            candidate.table.dataset,
            repr(candidate.predicates),
            repr(tuple(candidate.keep_columns)),
            repr(tuple(stats_columns)),
            repr(bound),
        ]
    )


def join_columns_of(query: Query) -> set[str]:
    columns = set()
    for condition in query.joins:
        columns.add(condition.left)
        columns.add(condition.right)
    return columns


def pushdown_stages(
    query: Query,
    session,
    working_statistics: StatisticsCatalog,
    metrics: JobMetrics,
    phases: list[str],
    tracer: Tracer | None = None,
    namespace: str = "",
    min_predicates: int = 2,
):
    """Yield every qualifying single-variable query as one request group.

    Statistics for the filtered datasets are registered into
    ``working_statistics`` under the intermediate's name (the paper "updates
    the statistics attached to the base unfiltered datasets to depict the new
    cardinalities" — here the rewrite points the alias at the new entry).
    ``min_predicates`` parameterizes the candidate rule (the paper's fixed
    "two simple predicates or any complex one" corresponds to 2; adaptive
    policies may lower it). Returns the :class:`PushdownOutcome` with the
    rewritten query.
    """
    resolver = ColumnResolver(query, session.datasets.schema_lookup)
    columns_of_alias = {alias: resolver.columns_of(alias) for alias in query.aliases}
    candidates = pushdown_candidates(query, columns_of_alias, min_predicates)
    join_columns = join_columns_of(query)

    requests = []
    for candidate in candidates:
        alias = candidate.table.alias
        name = intermediate_name_for(alias, namespace)
        stats_columns = tuple(
            c for c in candidate.keep_columns if c in join_columns
        )
        job = build_pushdown_job(
            candidate.table,
            candidate.predicates,
            candidate.keep_columns,
            name,
            stats_columns,
        )
        estimate = None
        if tracer is not None:
            # Push-downs are re-optimization points: record the estimate the
            # static statistics would have produced against the measured
            # post-predicate cardinality (all in modeled full-scale rows).
            base_stats = working_statistics.get(candidate.table.dataset)
            estimate = (
                f"σ({alias})",
                filtered_cardinality(base_stats, candidate.predicates)
                * base_stats.scale,
            )
        requests.append(
            JobRequest(
                phase=f"pushdown:{alias}",
                cumulative=metrics,
                job=job,
                parameters=query.parameters,
                statistics=working_statistics,
                tracer=tracer,
                estimate=estimate,
                batch_key=candidate.table.dataset,
                kind="pushdown",
                cache_token=pushdown_cache_token(
                    candidate, stats_columns, query.parameters
                ),
            )
        )
    if requests:
        yield requests

    current = query
    executed = []
    intermediates: dict[str, str] = {}
    for candidate in candidates:
        alias = candidate.table.alias
        name = intermediate_name_for(alias, namespace)
        phases.append(f"pushdown:{alias}")
        current = replace_filtered_table(current, alias, name)
        executed.append(alias)
        intermediates[alias] = name
    return PushdownOutcome(current, executed, intermediates)


def execute_pushdowns(
    query: Query,
    session,
    working_statistics: StatisticsCatalog,
    metrics: JobMetrics,
    phases: list[str],
    tracer: Tracer | None = None,
) -> PushdownOutcome:
    """Run every qualifying push-down immediately; return the rewritten query."""
    stages = pushdown_stages(
        query, session, working_statistics, metrics, phases, tracer=tracer
    )
    return drive_stages(stages, session.executor)
