"""Predicate push-down execution (Algorithm 1 lines 6-9 and 20-23).

Datasets with multiple local predicates or at least one complex (UDF /
parameterized) predicate are wrapped in single-variable select-project
queries and executed *first*. Each produces a materialized post-predicate
dataset plus exact statistics, and the main query is rewritten to reference
the materialization (Section 5.1's Q1 -> Q1').
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.jobgen import build_pushdown_job
from repro.algebra.rules.pushdown import pushdown_candidates
from repro.core.reconstruction import replace_filtered_table
from repro.engine.metrics import JobMetrics
from repro.lang.ast import Query
from repro.lang.binding import ColumnResolver
from repro.obs.trace import Tracer
from repro.stats.catalog import StatisticsCatalog
from repro.stats.estimation import filtered_cardinality


@dataclass
class PushdownOutcome:
    """Result of executing all qualifying push-down subqueries."""

    query: Query
    executed_aliases: list[str]
    intermediates: dict[str, str]  # alias -> intermediate dataset name


def intermediate_name_for(alias: str) -> str:
    return f"__filtered_{alias}"


def join_columns_of(query: Query) -> set[str]:
    columns = set()
    for condition in query.joins:
        columns.add(condition.left)
        columns.add(condition.right)
    return columns


def execute_pushdowns(
    query: Query,
    session,
    working_statistics: StatisticsCatalog,
    metrics: JobMetrics,
    phases: list[str],
    tracer: Tracer | None = None,
) -> PushdownOutcome:
    """Run every qualifying single-variable query; return the rewritten query.

    Statistics for the filtered datasets are registered into
    ``working_statistics`` under the intermediate's name (the paper "updates
    the statistics attached to the base unfiltered datasets to depict the new
    cardinalities" — here the rewrite points the alias at the new entry).
    """
    resolver = ColumnResolver(query, session.datasets.schema_lookup)
    columns_of_alias = {alias: resolver.columns_of(alias) for alias in query.aliases}
    candidates = pushdown_candidates(query, columns_of_alias)

    current = query
    executed = []
    intermediates: dict[str, str] = {}
    join_columns = join_columns_of(query)
    for candidate in candidates:
        alias = candidate.table.alias
        name = intermediate_name_for(alias)
        stats_columns = tuple(
            c for c in candidate.keep_columns if c in join_columns
        )
        job = build_pushdown_job(
            candidate.table,
            candidate.predicates,
            candidate.keep_columns,
            name,
            stats_columns,
        )
        phase_name = f"pushdown:{alias}"
        if tracer is None:
            _, job_metrics = session.executor.execute(
                job, query.parameters, working_statistics
            )
            metrics.merge(job_metrics)
        else:
            # Push-downs are re-optimization points: record the estimate the
            # static statistics would have produced against the measured
            # post-predicate cardinality (all in modeled full-scale rows).
            base_stats = working_statistics.get(candidate.table.dataset)
            estimated = (
                filtered_cardinality(base_stats, candidate.predicates)
                * base_stats.scale
            )
            with tracer.phase(phase_name):
                data, job_metrics = session.executor.execute(
                    job, query.parameters, working_statistics, tracer=tracer
                )
                metrics.merge(job_metrics)
                tracer.sync(metrics.total_seconds)
            tracer.record_estimate(
                phase_name, f"σ({alias})", estimated, data.modeled_rows
            )
        phases.append(phase_name)
        current = replace_filtered_table(current, alias, name)
        executed.append(alias)
        intermediates[alias] = name
    return PushdownOutcome(current, executed, intermediates)
