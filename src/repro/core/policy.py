"""Feedback-driven re-planning policy: Q-error triggers + adaptive thresholds.

The tracer records an :class:`~repro.obs.trace.EstimateRecord` (and hence a
Q-error) at every re-optimization point, but the classic driver never reads
it back — the schedule is fixed (iterate to the two-join endgame) and the
planning constants (broadcast budget, the ``tables_after <= 3``
online-statistics cutoff, the push-down candidate rule) are static. This
module closes that loop:

- :class:`ReplanPolicy` — the *typed policy API*: a frozen dataclass the
  driver consults after every materialized stage. A measured Q-error above
  the trigger threshold makes the driver (a) re-collect sketches on the
  mis-estimated intermediate when the fixed schedule had skipped them (an
  extra re-optimization, charged to the clock), and (b) optionally widen the
  *next* planning step from the greedy rule to a bounded bushy enumeration.
  A run whose stages all landed under ``fuse_qerror`` may instead fuse the
  remaining joins into the endgame job early, skipping redundant
  re-optimization points.
- :class:`FeedbackLog` — a per-:class:`~repro.session.Session` accumulator
  of misestimate/spill history *across* queries. Adaptive policies derive
  their :class:`RuntimeThresholds` from it: the trigger threshold converges
  to the tail of the observed Q-error distribution, the broadcast budget
  shrinks when joins the planner thought memory-resident spilled (the
  robust-hash-join argument of arXiv:2112.02480), the online-statistics
  cutoff deepens when estimates are chronically wrong, and the push-down
  rule turns aggressive (any predicated table qualifies) for workloads whose
  estimates keep missing.
- :class:`RuntimeThresholds` — the resolved constants one execution runs
  under. The defaults are exactly the paper's static constants, which is
  what keeps ``ReplanPolicy.off()`` byte-identical to the fixed schedule.

Everything here is pure planning state: consulting a policy charges zero
simulated seconds. Only the *actions* it triggers (a sketch-refresh job, a
different join order) touch the clock.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.common.errors import OptimizationError

#: The paper's online-statistics cutoff: sketches are skipped once the join
#: would leave this many (or fewer) tables — "we know that we are not going
#: to further re-optimize".
DEFAULT_STATS_CUTOFF = 3
#: The paper's push-down rule: tables with at least this many local
#: predicates (or any complex one) are pre-executed.
DEFAULT_PUSHDOWN_MIN_PREDICATES = 2


@dataclass(frozen=True)
class RuntimeThresholds:
    """The planning constants one dynamic run executes under.

    The defaults reproduce the paper's fixed behavior; adaptive policies
    replace them with values derived from the session's
    :class:`FeedbackLog`. ``broadcast_budget_bytes=None`` means "use the
    cluster's configured budget".
    """

    #: Q-error above which a stage counts as a bad miss (trigger).
    qerror_threshold: float = 4.0
    #: skip online sketches when ``tables_after <= stats_cutoff``.
    stats_cutoff: int = DEFAULT_STATS_CUTOFF
    #: planner-side broadcast build budget override (modeled bytes).
    broadcast_budget_bytes: float | None = None
    #: minimum simple-predicate count for push-down candidacy.
    pushdown_min_predicates: int = DEFAULT_PUSHDOWN_MIN_PREDICATES


@dataclass(frozen=True)
class PolicyDecision:
    """One consult of the policy that changed (or shaped) the schedule."""

    phase: str
    #: "replan" (bad miss: refresh + extra re-optimization), "widen"
    #: (next pick came from bounded enumeration), "fuse" (remaining joins
    #: fused into the endgame job early).
    action: str
    q_error: float
    threshold: float
    detail: str = ""

    def describe(self) -> str:
        q = "inf" if math.isinf(self.q_error) else f"{self.q_error:.2f}"
        text = f"{self.phase}: {self.action} (q={q}, threshold={self.threshold:.2f})"
        if self.detail:
            text += f" — {self.detail}"
        return text


@dataclass(frozen=True)
class ReplanPolicy:
    """Typed re-planning policy consulted at every re-optimization point.

    Construct directly for full control, or use :meth:`off` (fixed paper
    schedule, byte-identical to no policy), :meth:`default` (static trigger
    threshold), or :meth:`adaptive` (thresholds derived from the session's
    :class:`FeedbackLog`).
    """

    #: master switch; disabled policies never consult or decide anything.
    enabled: bool = True
    #: Q-error that makes a materialized stage a bad miss.
    qerror_threshold: float = 4.0
    #: on a bad miss, re-collect sketches on the mis-estimated intermediate
    #: if the fixed schedule had skipped them (charged to the clock).
    refresh_sketches: bool = True
    #: on a bad miss, plan the *next* step with a bounded bushy enumeration
    #: over the surviving tables instead of the greedy rule.
    widen_search: bool = True
    #: enumeration bound: fall back to greedy beyond this many tables.
    widen_max_tables: int = 8
    #: fuse the remaining joins into the endgame job once every observed
    #: stage landed under ``fuse_qerror`` (skip redundant re-opt points).
    early_fuse: bool = False
    #: max Q-error a stage may have and still count as well-predicted.
    fuse_qerror: float = 1.5
    #: only fuse when at most this many joins remain.
    fuse_max_joins: int = 3
    #: derive RuntimeThresholds from the session's FeedbackLog.
    adaptive: bool = False
    #: finite Q-error observations required before adaptation kicks in.
    min_history: int = 8

    def __post_init__(self) -> None:
        if self.qerror_threshold < 1.0:
            raise OptimizationError("qerror_threshold must be >= 1 (a Q-error)")
        if self.fuse_qerror < 1.0:
            raise OptimizationError("fuse_qerror must be >= 1 (a Q-error)")
        if self.widen_max_tables < 3:
            raise OptimizationError("widen_max_tables must be >= 3")
        if self.fuse_max_joins < 2:
            raise OptimizationError("fuse_max_joins must be >= 2")
        if self.min_history < 1:
            raise OptimizationError("min_history must be >= 1")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def off(cls) -> ReplanPolicy:
        """The fixed paper schedule; byte-identical to passing no policy."""
        return cls(enabled=False)

    @classmethod
    def default(cls, qerror_threshold: float = 4.0) -> ReplanPolicy:
        """Static trigger threshold, refresh + widen on a miss, no fusing."""
        return cls(qerror_threshold=qerror_threshold)

    @classmethod
    def adaptive_policy(cls, min_history: int = 8) -> ReplanPolicy:
        """Thresholds derived at runtime from the session's FeedbackLog."""
        return cls(adaptive=True, early_fuse=True, min_history=min_history)

    # -- resolution -----------------------------------------------------------

    def resolve(self, session=None, query=None) -> RuntimeThresholds:
        """The thresholds one run should execute under.

        Disabled policies resolve to the paper's static constants; adaptive
        ones consult the session's :class:`FeedbackLog` (falling back to the
        static constants until enough history accumulates). ``query`` is the
        query about to run, when known: dataset-keyed feedback stores (the
        query service's :class:`~repro.service.store.StoredFeedback`) use it
        to derive thresholds from the history of that query's dataset group
        instead of the whole workload; the base log ignores it.
        """
        if not self.enabled:
            return RuntimeThresholds()
        feedback = getattr(session, "feedback", None) if session is not None else None
        if self.adaptive and feedback is not None:
            return feedback.derive(
                self, getattr(session, "cluster", None), query=query
            )
        return RuntimeThresholds(qerror_threshold=self.qerror_threshold)

    # -- stage verdicts -------------------------------------------------------

    def is_bad_miss(self, q_error: float | None, thresholds: RuntimeThresholds) -> bool:
        """Did this stage's estimate miss badly enough to replan?

        Non-finite Q-errors never trigger: ``observe_qerror`` already counts
        inf/NaN separately instead of folding them into the adaptive window
        (they would pin every derived threshold), and the trigger must apply
        the same rule — an infinite Q-error from a zero-estimate stage says
        the *estimate* was degenerate, not that replanning will help, and
        treating it as an automatic miss let a single degenerate stage buy a
        replan on every remaining join.
        """
        if not self.enabled or q_error is None or not math.isfinite(q_error):
            return False
        return q_error > thresholds.qerror_threshold

    def may_fuse(self, q_history: list[float], joins_remaining: int) -> bool:
        """May the remaining joins fuse into the endgame job early?"""
        if not self.enabled or not self.early_fuse or not q_history:
            return False
        if joins_remaining > self.fuse_max_joins:
            return False
        return all(
            math.isfinite(q) and q <= self.fuse_qerror for q in q_history
        )


class FeedbackLog:
    """Per-session misestimate/spill history across query executions.

    The :class:`~repro.engine.scheduler.scheduler.JobScheduler` feeds every
    finished :class:`~repro.engine.metrics.ExecutionResult` into the owning
    session's log; adaptive policies then derive their
    :class:`RuntimeThresholds` from the recent window. Observation is pure
    bookkeeping — it never changes the result being observed.
    """

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise OptimizationError("feedback window must be >= 1")
        self.window = window
        #: finite Q-errors of recent estimate records (newest last).
        self.q_errors: deque[float] = deque(maxlen=window)
        #: per-query (spill_seconds, total_seconds) pairs.
        self.query_costs: deque[tuple[float, float]] = deque(maxlen=window)
        #: unbounded misses (zero-estimate or zero-actual stages) seen.
        self.infinite_records = 0
        #: total queries observed (lifetime, not windowed).
        self.queries = 0

    # -- observation ----------------------------------------------------------

    def observe_result(self, result, datasets: tuple[str, ...] = ()) -> None:
        """Fold one finished execution into the history.

        ``datasets`` names the base datasets the query read, when the caller
        knows them (the scheduler passes the query's FROM-clause datasets).
        The base log keeps one undifferentiated history and ignores them;
        dataset-keyed stores override this to route the observation into the
        matching per-dataset-group log as well.
        """
        self.queries += 1
        metrics = getattr(result, "metrics", None)
        if metrics is not None:
            self.query_costs.append(
                (float(metrics.spill), float(metrics.total_seconds))
            )
        trace = getattr(result, "trace", None)
        if trace is None:
            return
        for record in getattr(trace, "estimates", ()):
            self.observe_qerror(record.q_error)

    def observe_qerror(self, q_error: float) -> None:
        """Record one estimate-accuracy point (inf/NaN are counted, not kept).

        Guarding here is what keeps adaptive thresholds finite: a single
        zero-estimate stage must never turn the trigger threshold into
        ``inf`` and silently disable re-planning for the rest of the session.
        """
        if math.isnan(q_error) or math.isinf(q_error):
            self.infinite_records += 1
            return
        self.q_errors.append(float(q_error))

    # -- aggregates -----------------------------------------------------------

    @property
    def records(self) -> int:
        return len(self.q_errors)

    def qerror_quantile(self, fraction: float) -> float | None:
        """The ``fraction`` quantile of the recent finite Q-errors."""
        if not self.q_errors:
            return None
        ordered = sorted(self.q_errors)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def spill_ratio(self) -> float:
        """Fraction of recent queries that spilled at all."""
        if not self.query_costs:
            return 0.0
        spilled = sum(1 for spill, _ in self.query_costs if spill > 0.0)
        return spilled / len(self.query_costs)

    # -- persistence ----------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable snapshot of the full history window."""
        return {
            "window": self.window,
            "q_errors": list(self.q_errors),
            "query_costs": [[spill, total] for spill, total in self.query_costs],
            "infinite_records": self.infinite_records,
            "queries": self.queries,
        }

    @classmethod
    def from_state(cls, state: dict) -> FeedbackLog:
        """Rebuild a log from :meth:`to_state` output.

        Derivation is a pure function of the restored deques, so a
        round-tripped log produces identical :class:`RuntimeThresholds`.
        """
        log = cls(int(state["window"]))
        log.restore_state(state)
        return log

    def restore_state(self, state: dict) -> None:
        """Load :meth:`to_state` output into this log in place."""
        self.q_errors.clear()
        self.q_errors.extend(float(q) for q in state["q_errors"])
        self.query_costs.clear()
        self.query_costs.extend(
            (float(spill), float(total)) for spill, total in state["query_costs"]
        )
        self.infinite_records = int(state["infinite_records"])
        self.queries = int(state["queries"])

    # -- derivation -----------------------------------------------------------

    def derive(self, policy: ReplanPolicy, cluster=None, query=None) -> RuntimeThresholds:
        """Adaptive thresholds from the observed history.

        ``query`` is accepted for interface compatibility with dataset-keyed
        stores (which narrow the history to the query's dataset group); the
        base log derives from its single undifferentiated window.

        - **Trigger threshold** converges to the 75th percentile of the
          observed finite Q-errors (clamped to ``[2, 8x the configured
          base]``): on a workload whose estimates are usually tight, even a
          2x miss is anomalous and worth re-planning; on a chronically noisy
          one the threshold rises so the driver does not pay a refresh job
          at every stage.
        - **Broadcast budget** shrinks proportionally to the fraction of
          recent queries that spilled (floor: a quarter of the configured
          budget) — a spill means a build the planner thought memory-resident
          was not, so the planning-side memory threshold was too optimistic.
        - **Online-statistics cutoff** deepens to 2 (never skip) when the
          median Q-error exceeds the trigger threshold, and relaxes to 4
          (skip one iteration earlier) when the median shows estimates are
          reliably tight.
        - **Push-down rule** turns aggressive (any predicated table
          qualifies) when the median Q-error exceeds the trigger threshold —
          exact post-predicate cardinalities are the cheapest estimate
          repair available.
        """
        if not policy.adaptive or self.records < policy.min_history:
            return RuntimeThresholds(qerror_threshold=policy.qerror_threshold)

        tail = self.qerror_quantile(0.75)
        threshold = min(
            max(2.0, tail if tail is not None else policy.qerror_threshold),
            policy.qerror_threshold * 8.0,
        )

        budget: float | None = None
        if cluster is not None and self.spill_ratio > 0.0:
            base = cluster.broadcast_threshold_bytes
            budget = base * max(0.25, 1.0 - self.spill_ratio)

        median = self.qerror_quantile(0.5)
        cutoff = DEFAULT_STATS_CUTOFF
        min_predicates = DEFAULT_PUSHDOWN_MIN_PREDICATES
        if median is not None:
            if median > threshold:
                cutoff = 2  # chronic misses: keep sketching to the endgame
                min_predicates = 1  # and measure every predicated table
            elif median <= policy.fuse_qerror:
                cutoff = 4  # estimates are tight: skip sketches earlier

        return RuntimeThresholds(
            qerror_threshold=threshold,
            stats_cutoff=cutoff,
            broadcast_budget_bytes=budget,
            pushdown_min_predicates=min_predicates,
        )
