"""The runtime dynamic optimization driver — Algorithm 1 of the paper.

Orchestrates the full loop: predicate push-down jobs, the re-optimization
loop (plan cheapest join -> construct job -> materialize + online statistics
-> reconstruct query), and the two-join endgame whose job returns results to
the user. Subclasses (the INGRES-like and pilot-run baselines) override the
ranking function and the statistics source but reuse the machinery — which
mirrors how the paper describes those comparisons.

The driver is written as *resumable stage generators*: each re-optimization
stage ``yield``s a :class:`~repro.engine.scheduler.request.JobRequest` and
receives the :class:`~repro.engine.scheduler.request.JobOutcome` back.
``execute``/``resume`` pump the generator synchronously (byte-identical to
the old blocking loop), while the
:class:`~repro.engine.scheduler.scheduler.JobScheduler` interleaves the
generators of concurrent queries on a shared simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.jobgen import build_final_job, build_sink_job
from repro.algebra.plan import JoinNode, LeafNode, PlanNode
from repro.algebra.toolkit import PlannerToolkit
from repro.analysis.runtime import verify_plan_before_jobgen
from repro.common.errors import OptimizationError
from repro.core.planner import (
    PlannedJoin,
    Planner,
    RankFunction,
    rank_by_result_cardinality,
)
from repro.core.policy import PolicyDecision, ReplanPolicy, RuntimeThresholds
from repro.core.predicate_pushdown import join_columns_of, pushdown_stages
from repro.core.predicate_transfer import transfer_stages
from repro.core.reconstruction import reconstruct_after_join
from repro.engine.metrics import ExecutionResult, JobMetrics
from repro.engine.scheduler.request import JobRequest, drive_stages
from repro.lang.ast import Query
from repro.obs.trace import Tracer
from repro.optimizers.base import Optimizer
from repro.stats.catalog import StatisticsCatalog
from repro.stats.collector import StatisticsCollector


def resolve_logical(node: PlanNode, registry: dict[str, PlanNode]) -> PlanNode:
    """Rewrite a plan over intermediates into one over the original tables.

    Each materialized intermediate remembers the (already resolved) subtree
    that produced it; substituting those subtrees yields the full logical
    join tree the dynamic run effectively executed — the artifact the
    appendix figures draw and the best-order baseline replays.
    """
    if isinstance(node, LeafNode):
        return registry.get(node.dataset, node)
    if isinstance(node, JoinNode):
        return JoinNode(
            build=resolve_logical(node.build, registry),
            probe=resolve_logical(node.probe, registry),
            build_keys=node.build_keys,
            probe_keys=node.probe_keys,
            algorithm=node.algorithm,
            estimated_rows=node.estimated_rows,
            decided_build_bytes=node.decided_build_bytes,
        )
    raise OptimizationError(f"cannot resolve node type {type(node).__name__}")


def greedy_full_plan(
    query: Query,
    session,
    statistics: StatisticsCatalog,
    inl_enabled: bool,
    broadcast_budget_bytes: float | None = None,
) -> PlanNode:
    """Estimate-only greedy join tree (no execution between decisions).

    Used by the push-down-only mode (Figure 6 right): after predicate
    materialization refines the statistics, the remaining joins are planned
    in one shot by repeatedly merging the pair with the smallest estimated
    result — the same greedy policy as the loop, minus the feedback.
    """
    toolkit = PlannerToolkit(
        query,
        session,
        statistics,
        inl_enabled,
        broadcast_budget_bytes=broadcast_budget_bytes,
    )
    nodes: list[PlanNode] = [toolkit.leaf(alias) for alias in query.aliases]
    while len(nodes) > 1:
        best = None
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                conditions = toolkit.conditions_across(
                    nodes[i].aliases, nodes[j].aliases
                )
                if not conditions:
                    continue
                candidate = toolkit.make_join(nodes[i], nodes[j], conditions)
                if best is None or candidate.estimated_rows < best[0]:
                    best = (candidate.estimated_rows, i, j, candidate)
        if best is None:
            raise OptimizationError("join graph is disconnected (cross product)")
        _, i, j, joined = best
        nodes = [n for k, n in enumerate(nodes) if k not in (i, j)] + [joined]
    return nodes[0]


@dataclass
class DriverState:
    """Resumable execution state of one dynamic run.

    Everything the driver needs to continue after a re-optimization point:
    the reconstructed query, the logical-subtree registry, accumulated
    metrics/phases and the working statistics catalog. Together with the
    intermediates already materialized in the session's dataset catalog this
    is exactly the paper's Section-8 fault-tolerance checkpoint: "recover
    from a failure by not having to start over from the beginning of a
    long-running query".
    """

    original: Query
    current: Query
    working: StatisticsCatalog
    registry: dict[str, "PlanNode"] = field(default_factory=dict)
    metrics: JobMetrics = field(default_factory=JobMetrics)
    phases: list[str] = field(default_factory=list)
    iteration: int = 0
    #: execution tracer; checkpointed with the rest of the state so a
    #: resumed run extends the same trace instead of starting a new one
    tracer: Tracer = field(default_factory=Tracer)
    #: intermediate-name prefix (e.g. ``__q3``) isolating this run's
    #: materializations from concurrently scheduled queries; empty for
    #: direct (non-scheduled) execution, keeping legacy names.
    namespace: str = ""
    #: planning constants this run executes under, resolved once at query
    #: start (possibly from the session's FeedbackLog); checkpointed so a
    #: resumed run keeps the thresholds it started with.
    thresholds: RuntimeThresholds = field(default_factory=RuntimeThresholds)
    #: feedback-policy decisions taken so far (surfaced on ExecutionResult).
    policy_log: list[PolicyDecision] = field(default_factory=list)
    #: measured Q-errors of completed materialized stages, oldest first.
    q_history: list[float] = field(default_factory=list)
    #: a bad miss armed the widened (bounded-enumeration) next pick.
    widen_pending: bool = False


class SimulatedFailure(RuntimeError):
    """Raised by the failure injector; carries the last completed checkpoint."""

    def __init__(self, checkpoint: DriverState) -> None:
        super().__init__("simulated mid-query failure")
        self.checkpoint = checkpoint


class DynamicOptimizer(Optimizer):
    """The paper's contribution: INGRES-style re-optimization + statistics."""

    name = "dynamic"

    def __init__(
        self,
        inl_enabled: bool = False,
        pushdown_enabled: bool = True,
        reoptimize_joins: bool = True,
        charge_online_stats: bool = True,
        collect_online_sketches: bool = True,
        rank: RankFunction = rank_by_result_cardinality,
        fail_after_jobs: int | None = None,
        policy: ReplanPolicy | None = None,
        pre_filter: str | None = None,
    ) -> None:
        if pre_filter not in (None, "transfer"):
            raise OptimizationError(
                f"unknown pre_filter {pre_filter!r}; choose 'transfer' or None"
            )
        #: optional pre-filtering prelude: "transfer" runs the predicate
        #: transfer passes (Bloom-filter propagation) in place of plain
        #: predicate push-down before the re-optimization loop starts.
        self.pre_filter = pre_filter
        self.inl_enabled = inl_enabled
        self.pushdown_enabled = pushdown_enabled
        self.reoptimize_joins = reoptimize_joins
        self.charge_online_stats = charge_online_stats
        self.collect_online_sketches = collect_online_sketches
        self.rank = rank
        #: feedback policy consulted after every materialized stage; None
        #: (or ReplanPolicy.off()) reproduces the fixed paper schedule.
        self.policy = policy if policy is not None else ReplanPolicy.off()
        #: failure injector: raise SimulatedFailure once this many jobs have
        #: completed (testing the Section-8 checkpoint/resume story)
        self.fail_after_jobs = fail_after_jobs
        #: the resolved logical tree of the last execution (plan capture)
        self.last_tree: PlanNode | None = None

    # -- hooks for subclasses ---------------------------------------------------

    def prepare_statistics(
        self,
        query: Query,
        session,
        metrics: JobMetrics,
        phases: list[str],
        tracer: Tracer | None = None,
    ) -> StatisticsCatalog:
        """Statistics the run starts from: ingestion-time sketches."""
        return session.statistics.copy()

    def prepare_stages(
        self,
        query: Query,
        session,
        metrics: JobMetrics,
        phases: list[str],
        tracer: Tracer | None = None,
    ):
        """Stage-generator form of :meth:`prepare_statistics`.

        The base strategy charges nothing, so the generator yields no
        requests; pilot-run overrides this with per-table sampling stages.
        """
        return self.prepare_statistics(query, session, metrics, phases, tracer)
        yield  # unreachable; marks this as a generator

    # -- main entry -------------------------------------------------------------

    def execute(self, query: Query, session) -> ExecutionResult:
        return drive_stages(self.stages(query, session), session.executor)

    def stages(self, query: Query, session, namespace: str = ""):
        """The full dynamic run as one resumable stage generator."""
        metrics = JobMetrics()
        phases: list[str] = []
        tracer = Tracer(query_label=f"{self.name}: {', '.join(query.aliases)}")
        working = yield from self.prepare_stages(
            query, session, metrics, phases, tracer
        )
        state = DriverState(
            original=query,
            current=query,
            working=working,
            metrics=metrics,
            phases=phases,
            tracer=tracer,
            namespace=namespace,
            # Resolved once per run: adaptive policies read the session's
            # FeedbackLog here; the fixed schedule gets the paper constants.
            # Dataset-keyed stores narrow the history to this query's group.
            thresholds=self.policy.resolve(session, query=query),
        )

        if self.pre_filter == "transfer":
            # Predicate-transfer prelude: the transfer reduce jobs apply each
            # alias's local predicates on their first reduction, so plain
            # push-down would be redundant work on top.
            outcome = yield from transfer_stages(
                state.current,
                session,
                working,
                metrics,
                phases,
                tracer=tracer,
                namespace=namespace,
            )
            state.current = outcome.query
            for alias, name in outcome.intermediates.items():
                state.registry[name] = LeafNode(
                    alias=alias,
                    dataset=query.table(alias).dataset,
                    predicates=query.predicates_for(alias),
                )
            if not self.charge_online_stats:
                metrics.stats = 0.0
                tracer.sync(metrics.total_seconds)
        elif self.pushdown_enabled:
            outcome = yield from pushdown_stages(
                state.current,
                session,
                working,
                metrics,
                phases,
                tracer=tracer,
                namespace=namespace,
                min_predicates=state.thresholds.pushdown_min_predicates,
            )
            state.current = outcome.query
            for alias, name in outcome.intermediates.items():
                state.registry[name] = LeafNode(
                    alias=alias,
                    dataset=query.table(alias).dataset,
                    predicates=query.predicates_for(alias),
                )
            if not self.charge_online_stats:
                # The Figure-6 "no online statistics" execution: sketches are
                # still collected (identical plans) but their cost is refunded.
                metrics.stats = 0.0
                tracer.sync(metrics.total_seconds)
        self._maybe_fail(state)

        if not self.reoptimize_joins:
            return (yield from self._single_shot_stages(query, state, session))
        return (yield from self.resume_stages(state, session))

    def resume(self, state: DriverState, session) -> ExecutionResult:
        """Continue a run from a re-optimization-point checkpoint.

        The intermediates the checkpoint references must still exist in the
        session's dataset catalog (they do, unless ``reset_intermediates``
        ran) — this is the paper's Section-8 recovery story: completed join
        stages are never repeated after a failure.
        """
        return drive_stages(self.resume_stages(state, session), session.executor)

    def resume_stages(self, state: DriverState, session):
        """The re-optimization loop from a checkpoint, one stage per join."""
        query = state.original
        policy = self.policy
        while True:
            toolkit = self._toolkit(state, session)
            planner = Planner(toolkit, self.rank)
            joins_remaining = len(toolkit.join_graph())
            if joins_remaining <= 2:
                break
            if policy.may_fuse(state.q_history, joins_remaining):
                # Every stage so far landed under fuse_qerror: the remaining
                # re-optimization points are unlikely to change anything, so
                # skip them and fuse the rest into the endgame job.
                state.policy_log.append(
                    PolicyDecision(
                        phase=f"join-{state.iteration}",
                        action="fuse",
                        q_error=max(state.q_history),
                        threshold=policy.fuse_qerror,
                        detail=f"{joins_remaining} remaining joins fused into "
                        "the final job",
                    )
                )
                return (yield from self._final_stages(query, state, session, fused=True))
            picked = self._pick_join(state, planner, toolkit, policy)
            # Plan-time verification (DESIGN.md §14): check the picked join's
            # logical subtree at the re-optimization point that produced it,
            # before jobgen — the compiled job re-verifies at the launch gate.
            verify_plan_before_jobgen(session.executor, picked.node, state.working)
            name = f"{state.namespace}__join_{state.iteration}"
            keep, stats_columns = self._sink_columns(state.current, toolkit, picked)
            tables_after = len(state.current.tables) - 1
            if (
                not self.collect_online_sketches
                or tables_after <= state.thresholds.stats_cutoff
            ):
                # Online statistics are skipped in the last loop iteration(s):
                # "we know that we are not going to further re-optimize". The
                # paper's fixed cutoff is 3; adaptive policies move it.
                stats_columns = ()
            job = build_sink_job(
                picked.node,
                name,
                keep,
                stats_columns,
                session.datasets,
                phase=f"join-{state.iteration}",
            )
            # Phase names strip the namespace so a scheduled run's phase list
            # matches a direct run's (join:__join_0+dc either way).
            pair = sorted(a.removeprefix(state.namespace) for a in picked.pair)
            phase_name = f"join:{'+'.join(pair)}"
            yield JobRequest(
                phase=phase_name,
                cumulative=state.metrics,
                job=job,
                parameters=query.parameters,
                statistics=state.working,
                tracer=state.tracer,
                refund_stats=not self.charge_online_stats,
                kind="join",
            )
            state.phases.append(phase_name)
            state.registry[name] = resolve_logical(picked.node, state.registry)
            state.current = reconstruct_after_join(
                state.current, toolkit.resolver, picked.pair, name
            )
            state.iteration += 1
            if policy.enabled:
                # Consult before the failure injector: the consult (and any
                # refresh it buys) belongs to the stage, so a checkpoint taken
                # here already carries the stage's feedback.
                yield from self._consult_policy(
                    state, session, policy, name, phase_name, bool(stats_columns)
                )
            self._maybe_fail(state)

        return (yield from self._final_stages(query, state, session))

    def _final_stages(self, query: Query, state: DriverState, session, fused=False):
        """The endgame job: at most two remaining joins — or, when ``fused``,
        all remaining joins planned greedily in one shot (the policy's
        early-fuse action)."""
        if fused:
            plan = greedy_full_plan(
                state.current,
                session,
                state.working,
                self.inl_enabled,
                broadcast_budget_bytes=state.thresholds.broadcast_budget_bytes,
            )
        else:
            plan = Planner(self._toolkit(state, session), self.rank).final_plan()
        verify_plan_before_jobgen(session.executor, plan, state.working)
        job = build_final_job(plan, state.current, session.datasets)
        outcome = yield JobRequest(
            phase="final",
            cumulative=state.metrics,
            job=job,
            parameters=query.parameters,
            statistics=state.working,
            tracer=state.tracer,
            refund_stats=not self.charge_online_stats,
            kind="final",
        )
        state.phases.append("final")

        self.last_tree = resolve_logical(plan, state.registry)
        return ExecutionResult(
            rows=outcome.data.all_rows(),
            metrics=state.metrics,
            plan_description=self.last_tree.describe(),
            phases=state.phases,
            trace=state.tracer.finish(),
            decisions=tuple(state.policy_log),
        )

    def _maybe_fail(self, state: DriverState) -> None:
        if self.fail_after_jobs is not None and state.metrics.jobs >= self.fail_after_jobs:
            self.fail_after_jobs = None  # fail once
            raise SimulatedFailure(state)

    # -- feedback policy --------------------------------------------------------

    def _toolkit(self, state: DriverState, session) -> PlannerToolkit:
        """Planning toolkit under the run's resolved thresholds."""
        return PlannerToolkit(
            state.current,
            session,
            state.working,
            self.inl_enabled,
            broadcast_budget_bytes=state.thresholds.broadcast_budget_bytes,
        )

    def _pick_join(
        self,
        state: DriverState,
        planner: Planner,
        toolkit: PlannerToolkit,
        policy: ReplanPolicy,
    ) -> PlannedJoin:
        """The next join: greedy, or the widened pick after a bad miss.

        When the previous stage's estimate missed badly, the policy arms a
        one-shot *widened* planning step: the bounded bushy enumeration over
        the surviving tables replaces the greedy "cheapest next join" rule
        (the greedy rule is what propagated the miss). Beyond the size
        bound, or when both agree, the greedy pick stands.
        """
        if not state.widen_pending:
            return planner.cheapest_join()
        state.widen_pending = False
        from repro.optimizers.enumeration import bounded_first_join

        widened = bounded_first_join(toolkit, policy.widen_max_tables)
        greedy = planner.cheapest_join()
        if widened is None or widened.pair == greedy.pair:
            return greedy
        strip = state.namespace
        state.policy_log.append(
            PolicyDecision(
                phase=f"join-{state.iteration}",
                action="widen",
                q_error=state.q_history[-1] if state.q_history else 1.0,
                threshold=state.thresholds.qerror_threshold,
                detail="enumeration picked "
                + "+".join(sorted(a.removeprefix(strip) for a in widened.pair))
                + " over greedy "
                + "+".join(sorted(a.removeprefix(strip) for a in greedy.pair)),
            )
        )
        return widened

    def _consult_policy(
        self,
        state: DriverState,
        session,
        policy: ReplanPolicy,
        name: str,
        phase_name: str,
        had_sketches: bool,
    ):
        """Compare the stage's measured Q-error against the trigger threshold.

        Runs right after a join stage materialized. Reading the tracer's
        latest estimate record costs zero simulated seconds; only the
        *actions* a bad miss triggers (the sketch-refresh job, a widened next
        pick) touch the clock.
        """
        record = state.tracer.latest_estimate(phase=phase_name)
        if record is None:
            return
        q = record.q_error
        state.q_history.append(q)
        if not policy.is_bad_miss(q, state.thresholds):
            return
        details = []
        if (
            policy.refresh_sketches
            and not had_sketches
            and self.collect_online_sketches
        ):
            refreshed = yield from self._refresh_stages(state, session, name)
            if refreshed:
                details.append(
                    f"refreshed sketches on {name.removeprefix(state.namespace)}"
                )
        if policy.widen_search:
            state.widen_pending = True
            details.append("widened next pick to bounded enumeration")
        state.policy_log.append(
            PolicyDecision(
                phase=phase_name,
                action="replan",
                q_error=q,
                threshold=state.thresholds.qerror_threshold,
                detail="; ".join(details),
            )
        )

    def _refresh_stages(self, state: DriverState, session, name: str):
        """Extra re-optimization: re-sketch a mis-estimated intermediate.

        The fixed schedule skips online statistics in the last loop
        iteration(s); after a bad miss that skip is exactly what leaves the
        endgame blind (an unsketched intermediate's distinct counts fall
        back to its row count, deflating every estimate involving it). The
        refresh reads the materialized intermediate back and sketches its
        future join columns, charged as one extra cluster job (launch + read
        + sketch maintenance) on the simulated clock — the driver gathers
        the sketches in-process and yields the charge as a virtual-cost
        request, the same pattern as pilot-run sampling.
        """
        dataset = session.datasets.get(name)
        columns = tuple(
            sorted(
                column
                for column in join_columns_of(state.current)
                if dataset.schema.has_field(column)
            )
        )
        if not columns:
            return False
        collector = StatisticsCollector(columns)
        collector.observe_rows(dataset.rows())
        state.working.register_from_collector(
            name, collector, dataset.schema.row_width, dataset.scale
        )
        cost = session.executor.cost
        delta = JobMetrics()
        delta.startup = cost.job_startup()
        delta.scan = cost.read_materialized(
            dataset.modeled_rows, dataset.schema.row_width
        )
        delta.stats = cost.statistics(dataset.modeled_rows, len(columns))
        delta.tuples_scanned = dataset.row_count
        delta.jobs = 1
        phase_name = f"replan:{name.removeprefix(state.namespace)}"
        yield JobRequest(
            phase=phase_name,
            cumulative=state.metrics,
            virtual_cost=delta,
            tracer=state.tracer,
            kind="replan",
        )
        state.phases.append(phase_name)
        return True

    # -- helpers ----------------------------------------------------------------

    def _sink_columns(
        self, current: Query, toolkit: PlannerToolkit, picked
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Columns the intermediate must keep / collect sketches on.

        Keep = columns of the joined pair still referenced by the remaining
        query; sketch only those that participate in subsequent join stages
        (Section 5.3's "Online Statistics").
        """
        a, b = sorted(picked.pair)
        pair_columns = toolkit.resolver.columns_of(a) | toolkit.resolver.columns_of(b)
        remaining_joins = [
            c
            for c in current.joins
            if frozenset(toolkit.resolver.join_sides(c)) != picked.pair
        ]
        referenced = set(current.select) | set(current.group_by) | set(current.order_by)
        future_join_columns = set()
        for condition in remaining_joins:
            future_join_columns.add(condition.left)
            future_join_columns.add(condition.right)
        referenced |= future_join_columns
        keep = tuple(sorted(pair_columns & referenced))
        if not keep:
            # Degenerate but legal: nothing downstream references the pair;
            # keep the join keys so the intermediate is non-empty-schema.
            keep = picked.node.probe_keys
        stats_columns = tuple(sorted(pair_columns & future_join_columns))
        return keep, stats_columns

    def _single_shot_stages(self, original: Query, state: DriverState, session):
        """Push-down-only mode: one job for all joins, planned greedily."""
        plan = greedy_full_plan(
            state.current,
            session,
            state.working,
            self.inl_enabled,
            broadcast_budget_bytes=state.thresholds.broadcast_budget_bytes,
        )
        verify_plan_before_jobgen(session.executor, plan, state.working)
        job = build_final_job(plan, state.current, session.datasets)
        outcome = yield JobRequest(
            phase="single-shot",
            cumulative=state.metrics,
            job=job,
            parameters=original.parameters,
            statistics=state.working,
            tracer=state.tracer,
            kind="final",
        )
        state.phases.append("single-shot")
        self.last_tree = resolve_logical(plan, state.registry)
        return ExecutionResult(
            rows=outcome.data.all_rows(),
            metrics=state.metrics,
            plan_description=self.last_tree.describe(),
            phases=state.phases,
            trace=state.tracer.finish(),
            decisions=tuple(state.policy_log),
        )
