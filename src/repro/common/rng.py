"""Deterministic random number helpers.

All data generation and sampling in the library is seeded so experiments are
exactly reproducible run to run. ``derive`` gives independent substreams from
one master seed without the correlated-stream pitfalls of reusing a seed.
"""

from __future__ import annotations

import hashlib
import random


def derive(seed: int, *labels: str | int) -> random.Random:
    """Return a ``random.Random`` derived from ``seed`` and a label path.

    Two calls with the same seed and labels always produce identical streams;
    different label paths produce statistically independent streams.
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return random.Random(int.from_bytes(digest.digest()[:8], "big"))


def stable_hash(value: object) -> int:
    """A hash that is stable across processes (unlike ``hash`` for str).

    Used for hash partitioning and HyperLogLog so results do not depend on
    ``PYTHONHASHSEED``.
    """
    if isinstance(value, int):
        # Size the buffer to the value: a fixed 16-byte encoding overflows
        # on integers outside [-2^127, 2^127), which hypothesis finds.
        length = max(16, (value.bit_length() + 8) // 8)
        data = value.to_bytes(length, "big", signed=True)
    else:
        data = repr(value).encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")
