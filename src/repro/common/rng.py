"""Deterministic random number helpers.

All data generation and sampling in the library is seeded so experiments are
exactly reproducible run to run. ``derive`` gives independent substreams from
one master seed without the correlated-stream pitfalls of reusing a seed.
"""

from __future__ import annotations

import hashlib
import random


def derive(seed: int, *labels: str | int) -> random.Random:
    """Return a ``random.Random`` derived from ``seed`` and a label path.

    Two calls with the same seed and labels always produce identical streams;
    different label paths produce statistically independent streams.
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return random.Random(int.from_bytes(digest.digest()[:8], "big"))


def stable_hash(value: object) -> int:
    """A hash that is stable across processes (unlike ``hash`` for str).

    Used for hash partitioning and HyperLogLog so results do not depend on
    ``PYTHONHASHSEED``.
    """
    if isinstance(value, int):
        data = value.to_bytes(16, "big", signed=True)
    else:
        data = repr(value).encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")
