"""Schema primitives shared by storage, the engine and the optimizers.

A :class:`Schema` is an ordered collection of :class:`Field` objects. Rows are
plain dicts keyed by field name; the schema carries the type and estimated
width information that the cost model needs to translate tuple counts into
byte volumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import SchemaError


class DataType(enum.Enum):
    """Logical column types supported by the simulated BDMS."""

    INT = "int"
    BIGINT = "bigint"
    DOUBLE = "double"
    STRING = "string"
    DATE = "date"  # stored as an int ordinal (days since epoch)
    BOOLEAN = "boolean"

    @property
    def byte_width(self) -> int:
        """Estimated serialized width in bytes, used by the cost model."""
        return _TYPE_WIDTHS[self]


_TYPE_WIDTHS = {
    DataType.INT: 4,
    DataType.BIGINT: 8,
    DataType.DOUBLE: 8,
    DataType.STRING: 24,
    DataType.DATE: 4,
    DataType.BOOLEAN: 1,
}


@dataclass(frozen=True)
class Field:
    """A named, typed column of a dataset."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")


@dataclass(frozen=True)
class Schema:
    """Ordered collection of fields describing a dataset or intermediate.

    ``primary_key`` names the field(s) the dataset is hash-partitioned on; an
    intermediate result typically has no primary key.
    """

    fields: tuple[Field, ...]
    primary_key: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")
        for key in self.primary_key:
            if key not in names:
                raise SchemaError(f"primary key field {key!r} not in schema")

    @classmethod
    def of(cls, *pairs: tuple[str, DataType], primary_key: tuple[str, ...] = ()) -> Schema:
        """Build a schema from ``(name, dtype)`` pairs."""
        return cls(tuple(Field(name, dtype) for name, dtype in pairs), primary_key)

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def field_type(self, name: str) -> DataType:
        for f in self.fields:
            if f.name == name:
                return f.dtype
        raise SchemaError(f"unknown field {name!r}")

    @property
    def row_width(self) -> int:
        """Estimated serialized bytes per row (cost-model input)."""
        return sum(f.dtype.byte_width for f in self.fields) + 8  # header

    def project(self, names: list[str] | tuple[str, ...]) -> Schema:
        """Return a schema containing only ``names``, in the given order."""
        by_name = {f.name: f for f in self.fields}
        missing = [n for n in names if n not in by_name]
        if missing:
            raise SchemaError(f"cannot project missing fields: {missing}")
        pk = tuple(k for k in self.primary_key if k in names)
        return Schema(tuple(by_name[n] for n in names), pk)

    def concat(self, other: Schema) -> Schema:
        """Join-output schema: all of ``self``'s fields then ``other``'s.

        Duplicate field names on the right side are dropped (the join key
        appears once), matching how the engine merges joined rows.
        """
        left = set(self.field_names)
        merged = list(self.fields) + [f for f in other.fields if f.name not in left]
        return Schema(tuple(merged))
