"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or a field reference does not resolve."""


class CatalogError(ReproError):
    """A dataset or statistics entry is missing from a catalog."""


class PlanError(ReproError):
    """A logical or physical plan is malformed or cannot be compiled."""


class QueryError(ReproError):
    """A query specification is malformed (bad predicate, unknown dataset...)."""


class ExecutionError(ReproError):
    """A runtime job failed while executing."""


class OptimizationError(ReproError):
    """An optimizer could not produce a plan for a query."""


class StatisticsError(ReproError):
    """A statistics sketch was used incorrectly (e.g. empty-sketch query)."""


class ParseError(QueryError):
    """The miniature SQL parser rejected its input."""


class AdmissionError(ReproError):
    """The scheduler's bounded admission queue rejected a submission."""
