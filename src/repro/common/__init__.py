"""Shared primitives: schemas, errors, deterministic randomness."""

from repro.common.errors import ReproError
from repro.common.types import DataType, Field, Schema

__all__ = ["DataType", "Field", "ReproError", "Schema"]
