"""INGRES-like baseline (Section 7.2 / Wong & Youssefi 1976).

Same decomposition machinery as the dynamic approach — single-variable
predicate queries, materialized intermediate results (stored "in a temporary
file for simplicity"), iterative re-optimization — but "the choice of the
next best subquery to be executed is only based on dataset cardinalities
(without other statistical information)". No formula-(1) result estimation,
no sketches on intermediates: just row counts.
"""

from __future__ import annotations

from repro.core.driver import DynamicOptimizer
from repro.core.planner import rank_by_input_cardinality


class IngresLikeOptimizer(DynamicOptimizer):
    """Cardinality-only incremental optimization."""

    name = "ingres"

    def __init__(self, inl_enabled: bool = False, policy=None) -> None:
        super().__init__(
            inl_enabled=inl_enabled,
            rank=rank_by_input_cardinality,
            # Intermediates keep row counts only — INGRES has no sketch
            # framework, so no online quantile/HLL collection (or cost).
            collect_online_sketches=False,
            policy=policy,
        )
