"""Online sketch-based optimization [COMPASS, Izenov et al., SIGMOD 2021].

COMPASS computes sketches for every table *during the pre-filtering scans* —
after local predicates are applied — and then plans the complete join order
from those sketch estimates alone. The crucial difference from the static
cost-based baseline is *when* the statistics are taken: ingestion-time
sketches describe unfiltered base data, so a multi-predicate filter must be
estimated by multiplying per-predicate selectivities (the independence
assumption the adversarial workloads break), whereas a post-filter sketch
*measures* the surviving cardinality and distinct counts exactly. The
strategy still trusts formula (1) across joins — unlike the dynamic
approach it never re-optimizes — so it isolates how far measured leaf
statistics alone close the gap to runtime re-optimization.

Execution shape, as stage generators like the other eight strategies:

1. one **sketch pass per FROM entry** — scan the dataset partition by
   partition, apply the alias's local predicates, and build a GK + HLL
   sketch per future join column of each partition, merging the
   per-partition sketches into one (the distributed sketch-merge COMPASS
   runs on its workers). The pass happens in-process and is charged to the
   simulated clock as a virtual-cost job (launch + scan + predicate
   evaluation + sketch maintenance), the same pattern as pilot-run sampling;
2. one **planning step** — an exhaustive bushy DP over the measured
   statistics (zero simulated cost, like every other planner);
3. one **final job** executing the whole join tree pipelined, with the
   leaves re-applying predicates inline (sketch passes materialize nothing).

Composes unchanged with the scheduler (stage generator protocol), the
P001–P007 verifier (the final job is an ordinary compiled job), both
execution engines (the sketch pass is engine-independent by construction)
and the QueryService.
"""

from __future__ import annotations

from repro.algebra.jobgen import build_final_job
from repro.algebra.plan import PlanNode
from repro.algebra.toolkit import PlannerToolkit, alias_stats_key
from repro.engine.metrics import ExecutionResult, JobMetrics
from repro.engine.scheduler.request import JobRequest
from repro.lang.ast import EvaluationContext, Query, split_column
from repro.obs.trace import Tracer
from repro.optimizers.base import Optimizer
from repro.optimizers.enumeration import best_bushy_plan
from repro.stats.catalog import DatasetStatistics
from repro.stats.collector import FieldStatistics, StatisticsCollector


class SketchOnlineOptimizer(Optimizer):
    """Sketch during pre-filtering scans; plan the full join order once."""

    name = "sketch_online"

    def __init__(self, inl_enabled: bool = False) -> None:
        self.inl_enabled = inl_enabled
        #: the planned join tree of the last execution (plan capture)
        self.last_tree: PlanNode | None = None

    def stages(self, query: Query, session, namespace: str = ""):
        metrics = JobMetrics()
        phases: list[str] = []
        tracer = Tracer(query_label=f"{self.name}: {', '.join(query.aliases)}")
        working = session.statistics.copy()
        context = EvaluationContext(query.parameters, session.udfs)

        for table in query.tables:
            entry, delta = self._sketch_pass(query, table.alias, session, context)
            working.register(entry)
            phase_name = f"sketch:{table.alias}"
            yield JobRequest(
                phase=phase_name,
                cumulative=metrics,
                virtual_cost=delta,
                tracer=tracer,
                kind="sketch",
            )
            phases.append(phase_name)

        toolkit = PlannerToolkit(query, session, working, self.inl_enabled)
        plan = best_bushy_plan(toolkit)
        job = build_final_job(plan, query, session.datasets)
        outcome = yield JobRequest(
            phase="final",
            cumulative=metrics,
            job=job,
            parameters=query.parameters,
            statistics=working,
            tracer=tracer,
            kind="final",
        )
        phases.append("final")

        self.last_tree = plan
        return ExecutionResult(
            rows=outcome.data.all_rows(),
            metrics=metrics,
            plan_description=plan.describe(),
            phases=phases,
            trace=tracer.finish(),
        )

    # -- the sketch pass --------------------------------------------------------

    def _join_columns(self, query: Query, alias: str) -> tuple[str, ...]:
        """Fields of ``alias`` that participate in any join condition."""
        columns = []
        for condition in query.joins:
            for side in (condition.left, condition.right):
                side_alias, field_name = split_column(side)
                if side_alias == alias and field_name not in columns:
                    columns.append(field_name)
        return tuple(sorted(columns))

    def _sketch_pass(
        self, query: Query, alias: str, session, context: EvaluationContext
    ) -> tuple[DatasetStatistics, JobMetrics]:
        """One pre-filtering scan: post-predicate sketches for one FROM entry.

        Each partition is sketched independently and the per-partition
        sketches are merged — the order COMPASS's distributed workers
        produce. GK and HLL merges are exact (merge-then-estimate equals
        estimate-over-union), so the merged entry is byte-identical to a
        single-pass scan while exercising the real distributed dataflow.
        """
        table = query.table(alias)
        dataset = session.datasets.get(table.dataset)
        predicates = query.predicates_for(alias)
        columns = self._join_columns(query, alias)
        prefix = f"{alias}."

        merged: dict[str, FieldStatistics] = {
            name: FieldStatistics(name) for name in columns
        }
        qualified_rows = 0
        for partition in dataset.partitions:
            collector = StatisticsCollector(columns)
            for row in partition:
                if predicates:
                    qualified = {prefix + key: value for key, value in row.items()}
                    if not all(p.evaluate(qualified, context) for p in predicates):
                        continue
                collector.observe_row(row)
            qualified_rows += collector.row_count
            for name, stats in collector.fields.items():
                merged[name] = merged[name].merge(stats)

        entry = DatasetStatistics(
            name=alias_stats_key(alias),
            row_count=qualified_rows,
            row_width=dataset.schema.row_width,
            fields=merged,
            predicates_applied=True,
            scale=dataset.scale,
        )

        cost = session.executor.cost
        delta = JobMetrics()
        delta.startup = cost.job_startup()
        delta.scan = cost.scan(dataset.modeled_rows, dataset.schema.row_width)
        if predicates:
            delta.compute = cost.predicate_eval(dataset.modeled_rows)
        delta.stats = cost.statistics(qualified_rows * dataset.scale, len(columns))
        delta.tuples_scanned = dataset.row_count
        delta.jobs = 1
        return entry, delta
