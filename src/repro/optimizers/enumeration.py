"""Dynamic-programming join enumeration (bushy plans).

The static cost-based baseline "forms the complete execution plan at the
beginning based on the collected statistics" — a System-R style exhaustive
search, extended to bushy trees (the paper's cost-based plans are bushy).
The search space is subsets of the join graph; disconnected combinations
(cross products) are skipped.
"""

from __future__ import annotations

from itertools import combinations

from repro.algebra.plan import JoinNode, LeafNode, PlanNode
from repro.algebra.toolkit import PlannerToolkit
from repro.common.errors import OptimizationError


def best_bushy_plan(toolkit: PlannerToolkit, movement_aware: bool = False) -> PlanNode:
    """Exhaustive DP over connected alias subsets; returns the cheapest tree.

    The default cost metric is the classic cardinality cost (sum of
    estimated intermediate sizes) the paper's static baseline uses;
    ``movement_aware=True`` switches to the engine-mirroring cost model (an
    ablation showing how much of the dynamic approach's win comes from
    estimation quality vs cost-model fidelity).
    """
    cost_fn = (
        toolkit.estimator.plan_cost if movement_aware else toolkit.estimator.cout_cost
    )
    aliases = sorted(toolkit.query.aliases)
    if not aliases:
        raise OptimizationError("query has no FROM entries")
    best: dict[frozenset, tuple[float, PlanNode]] = {}
    for alias in aliases:
        leaf = toolkit.leaf(alias)
        best[frozenset((alias,))] = (cost_fn(leaf), leaf)

    for size in range(2, len(aliases) + 1):
        for subset in combinations(aliases, size):
            members = list(subset)
            full = frozenset(members)
            entry: tuple[float, PlanNode] | None = None
            # Enumerate splits; pinning members[0] to the left half halves
            # the work without losing any (unordered) split. mask selects
            # which of the remaining members join it; the all-ones mask is
            # excluded (it would leave the right half empty).
            for mask in range((1 << (len(members) - 1)) - 1):
                left = frozenset(
                    members[i + 1] for i in range(len(members) - 1) if mask >> i & 1
                ) | {members[0]}
                right = full - left
                left_entry = best.get(frozenset(left))
                right_entry = best.get(right)
                if left_entry is None or right_entry is None:
                    continue
                conditions = toolkit.conditions_across(frozenset(left), right)
                if not conditions:
                    continue
                node = toolkit.make_join(left_entry[1], right_entry[1], conditions)
                cost = cost_fn(node)
                if entry is None or cost < entry[0]:
                    entry = (cost, node)
            if entry is not None:
                best[full] = entry

    final = best.get(frozenset(aliases))
    if final is None:
        raise OptimizationError(
            "join graph is disconnected: no cross-product-free plan exists"
        )
    return final[1]


def bounded_first_join(toolkit: PlannerToolkit, max_tables: int = 8):
    """The first base-table join of the DP-optimal bushy tree, or ``None``.

    The feedback policy's *widened* planning step: instead of the greedy
    "cheapest next join" rule, run the exhaustive enumeration over the
    surviving tables and commit to one of the leaf-leaf joins the optimal
    tree starts from (the one with the smallest estimated result — the next
    re-optimization point will re-plan the rest anyway). Returns a
    :class:`~repro.core.planner.PlannedJoin` so the driver can substitute it
    for the greedy pick, or ``None`` when the query exceeds ``max_tables``
    (the DP is exponential; past the bound the greedy rule stays in charge).
    """
    from repro.core.planner import PlannedJoin  # late import: avoids a cycle

    if len(toolkit.query.aliases) > max_tables:
        return None
    tree = best_bushy_plan(toolkit)
    candidates: list[JoinNode] = []

    def visit(node: PlanNode) -> None:
        if not isinstance(node, JoinNode):
            return
        if isinstance(node.build, LeafNode) and isinstance(node.probe, LeafNode):
            candidates.append(node)
            return
        visit(node.build)
        visit(node.probe)

    visit(tree)
    if not candidates:
        return None
    node = min(
        candidates, key=lambda n: (n.estimated_rows, tuple(sorted(n.aliases)))
    )
    pair = frozenset((node.build.alias, node.probe.alias))
    conditions = tuple(toolkit.conditions_across(node.build.aliases, node.probe.aliases))
    return PlannedJoin(
        pair=pair,
        conditions=conditions,
        rank=node.estimated_rows,
        node=node,
    )
