"""Dynamic-programming join enumeration (bushy plans).

The static cost-based baseline "forms the complete execution plan at the
beginning based on the collected statistics" — a System-R style exhaustive
search, extended to bushy trees (the paper's cost-based plans are bushy).
The search space is subsets of the join graph; disconnected combinations
(cross products) are skipped.
"""

from __future__ import annotations

from itertools import combinations

from repro.algebra.plan import PlanNode
from repro.common.errors import OptimizationError
from repro.algebra.toolkit import PlannerToolkit


def best_bushy_plan(toolkit: PlannerToolkit, movement_aware: bool = False) -> PlanNode:
    """Exhaustive DP over connected alias subsets; returns the cheapest tree.

    The default cost metric is the classic cardinality cost (sum of
    estimated intermediate sizes) the paper's static baseline uses;
    ``movement_aware=True`` switches to the engine-mirroring cost model (an
    ablation showing how much of the dynamic approach's win comes from
    estimation quality vs cost-model fidelity).
    """
    cost_fn = (
        toolkit.estimator.plan_cost if movement_aware else toolkit.estimator.cout_cost
    )
    aliases = sorted(toolkit.query.aliases)
    if not aliases:
        raise OptimizationError("query has no FROM entries")
    best: dict[frozenset, tuple[float, PlanNode]] = {}
    for alias in aliases:
        leaf = toolkit.leaf(alias)
        best[frozenset((alias,))] = (cost_fn(leaf), leaf)

    for size in range(2, len(aliases) + 1):
        for subset in combinations(aliases, size):
            members = list(subset)
            full = frozenset(members)
            entry: tuple[float, PlanNode] | None = None
            # Enumerate splits; pinning members[0] to the left half halves
            # the work without losing any (unordered) split. mask selects
            # which of the remaining members join it; the all-ones mask is
            # excluded (it would leave the right half empty).
            for mask in range((1 << (len(members) - 1)) - 1):
                left = frozenset(
                    members[i + 1] for i in range(len(members) - 1) if mask >> i & 1
                ) | {members[0]}
                right = full - left
                left_entry = best.get(frozenset(left))
                right_entry = best.get(right)
                if left_entry is None or right_entry is None:
                    continue
                conditions = toolkit.conditions_across(frozenset(left), right)
                if not conditions:
                    continue
                node = toolkit.make_join(left_entry[1], right_entry[1], conditions)
                cost = cost_fn(node)
                if entry is None or cost < entry[0]:
                    entry = (cost, node)
            if entry is not None:
                best[full] = entry

    final = best.get(frozenset(aliases))
    if final is None:
        raise OptimizationError(
            "join graph is disconnected: no cross-product-free plan exists"
        )
    return final[1]
