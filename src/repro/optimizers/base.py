"""Optimizer interface and plan-replay helper.

Every optimization strategy implements :class:`Optimizer`: it receives a
query and a session, drives however many jobs its approach needs, and returns
an :class:`~repro.engine.metrics.ExecutionResult` whose metrics cover the
whole execution (including any overhead jobs the strategy ran).
"""

from __future__ import annotations

from repro.algebra.jobgen import build_final_job
from repro.algebra.plan import PlanNode
from repro.engine.metrics import ExecutionResult, JobMetrics
from repro.lang.ast import Query
from repro.obs.trace import Tracer


class Optimizer:
    """Base class for optimization strategies."""

    #: registry key / display name
    name = "base"

    def execute(self, query: Query, session) -> ExecutionResult:
        raise NotImplementedError


def execute_tree(
    tree: PlanNode, query: Query, session, label: str = ""
) -> ExecutionResult:
    """Run a fully annotated plan tree as one pipelined job.

    This is how the best-order baseline and the Figure-6 "statistics
    upfront" baseline run: the join tree is known in advance, so there are
    no re-optimization points, no materialization, and no online statistics
    — just a single job whose leaves filter inline. The trace still carries
    an estimate record per join operator, so static plans' estimate accuracy
    is directly comparable with the dynamic approach's.
    """
    phase_label = label or "single-job"
    job = build_final_job(tree, query, session.datasets)
    tracer = Tracer(query_label=f"{phase_label}: {', '.join(query.aliases)}")
    metrics = JobMetrics()
    with tracer.phase(phase_label):
        data, job_metrics = session.executor.execute(
            job, query.parameters, session.statistics.copy(), tracer=tracer
        )
        metrics.merge(job_metrics)
        tracer.sync(metrics.total_seconds)
    return ExecutionResult(
        rows=data.all_rows(),
        metrics=metrics,
        plan_description=tree.describe(),
        phases=[phase_label],
        trace=tracer.finish(),
    )
