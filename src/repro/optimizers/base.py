"""Optimizer interface and plan-replay helper.

Every optimization strategy implements :class:`Optimizer` as a *stage
generator*: :meth:`Optimizer.stages` plans and then ``yield``s
:class:`~repro.engine.scheduler.request.JobRequest`s, receiving each job's
:class:`~repro.engine.scheduler.request.JobOutcome` back, and finally
returns an :class:`~repro.engine.metrics.ExecutionResult` whose metrics
cover the whole execution (including any overhead jobs the strategy ran).
:meth:`Optimizer.execute` pumps the generator synchronously on the session's
executor; the job scheduler drives the same generator when queries run
concurrently — one code path, two drivers.
"""

from __future__ import annotations

from repro.algebra.jobgen import build_final_job
from repro.algebra.plan import PlanNode
from repro.engine.metrics import ExecutionResult, JobMetrics
from repro.engine.scheduler.request import JobRequest, drive_stages
from repro.lang.ast import Query
from repro.obs.trace import Tracer


class Optimizer:
    """Base class for optimization strategies."""

    #: registry key / display name
    name = "base"

    def execute(self, query: Query, session) -> ExecutionResult:
        """Run the strategy to completion, blocking (the serial entry)."""
        return drive_stages(self.stages(query, session), session.executor)

    def stages(self, query: Query, session, namespace: str = ""):
        """The strategy as a resumable stage generator.

        ``namespace`` prefixes any intermediate dataset names so concurrent
        queries scheduled together cannot collide; strategies that
        materialize nothing may ignore it.
        """
        raise NotImplementedError


def single_job_stages(tree: PlanNode, query: Query, session, label: str = ""):
    """Stage generator running a fully annotated plan tree as one job."""
    phase_label = label or "single-job"
    job = build_final_job(tree, query, session.datasets)
    tracer = Tracer(query_label=f"{phase_label}: {', '.join(query.aliases)}")
    metrics = JobMetrics()
    outcome = yield JobRequest(
        phase=phase_label,
        cumulative=metrics,
        job=job,
        parameters=query.parameters,
        statistics=session.statistics.copy(),
        tracer=tracer,
        kind="single",
    )
    return ExecutionResult(
        rows=outcome.data.all_rows(),
        metrics=metrics,
        plan_description=tree.describe(),
        phases=[phase_label],
        trace=tracer.finish(),
    )


def execute_tree(
    tree: PlanNode, query: Query, session, label: str = ""
) -> ExecutionResult:
    """Run a fully annotated plan tree as one pipelined job.

    This is how the best-order baseline and the Figure-6 "statistics
    upfront" baseline run: the join tree is known in advance, so there are
    no re-optimization points, no materialization, and no online statistics
    — just a single job whose leaves filter inline. The trace still carries
    an estimate record per join operator, so static plans' estimate accuracy
    is directly comparable with the dynamic approach's.
    """
    return drive_stages(
        single_job_stages(tree, query, session, label), session.executor
    )
