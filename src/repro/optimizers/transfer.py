"""Predicate transfer as a standalone strategy [Yang et al., CIDR 2024].

The pure pre-filtering bet: spend the whole runtime-adaptivity budget
*before* the first join. A forward and a backward pass over the join graph
ship Bloom filters along every join edge and reduce each FROM entry to
(a superset of) the rows that survive the full join — see
``repro.core.predicate_transfer`` for the scheduler. The joins themselves
are then planned **once**, by the same exhaustive bushy DP every static
strategy uses, but over *measured* post-transfer statistics, and executed as
one pipelined final job.

This sits between ``sketch_online`` (measure after local predicates, plan
once) and ``dynamic`` (measure after every join, replan every step): like
COMPASS it never re-optimizes, but its leaf statistics already reflect the
joins' reducing effect, not just the local predicates'. The trade is paid in
transfer machinery — per-entry reduce jobs, filter builds, filter shipping —
which ``bench transfer`` shows winning on join-reductive workloads and
losing when the joins keep most rows anyway.

Composes with the scheduler (stage generators; the reduce jobs are real
Scan/Reader → Select → SemiJoinFilter → Sink jobs), the P001-P007 verifier,
both engines, the service cache (reduce jobs carry content-addressed cache
tokens) and the equivalence harness: Bloom filters err on the side of
keeping rows, so results are byte-identical to every other strategy.
"""

from __future__ import annotations

from repro.algebra.jobgen import build_final_job
from repro.algebra.plan import LeafNode, PlanNode
from repro.algebra.toolkit import PlannerToolkit
from repro.analysis.runtime import verify_plan_before_jobgen
from repro.core.predicate_transfer import transfer_stages
from repro.engine.bloom import DEFAULT_FPP
from repro.engine.metrics import ExecutionResult, JobMetrics
from repro.engine.scheduler.request import JobRequest
from repro.lang.ast import Query
from repro.obs.trace import Tracer
from repro.optimizers.base import Optimizer
from repro.optimizers.enumeration import best_bushy_plan


class PredicateTransferOptimizer(Optimizer):
    """Bloom-filter pre-filtering passes, then one static bushy plan."""

    name = "predicate_transfer"

    def __init__(self, inl_enabled: bool = False, fpp: float = DEFAULT_FPP) -> None:
        self.inl_enabled = inl_enabled
        self.fpp = fpp
        #: the planned join tree of the last execution (plan capture)
        self.last_tree: PlanNode | None = None

    def stages(self, query: Query, session, namespace: str = ""):
        metrics = JobMetrics()
        phases: list[str] = []
        tracer = Tracer(query_label=f"{self.name}: {', '.join(query.aliases)}")
        working = session.statistics.copy()

        outcome = yield from transfer_stages(
            query,
            session,
            working,
            metrics,
            phases,
            tracer=tracer,
            namespace=namespace,
            fpp=self.fpp,
        )

        toolkit = PlannerToolkit(outcome.query, session, working, self.inl_enabled)
        plan = best_bushy_plan(toolkit)
        verify_plan_before_jobgen(session.executor, plan, working)
        job = build_final_job(plan, outcome.query, session.datasets)
        final_outcome = yield JobRequest(
            phase="final",
            cumulative=metrics,
            job=job,
            parameters=query.parameters,
            statistics=working,
            tracer=tracer,
            kind="final",
        )
        phases.append("final")

        # Report the plan in terms of the original FROM entries, not the
        # transfer intermediates (plan capture / Figure 5 reconstruction).
        registry: dict[str, PlanNode] = {
            name: LeafNode(
                alias=alias,
                dataset=query.table(alias).dataset,
                predicates=query.predicates_for(alias),
            )
            for alias, name in outcome.intermediates.items()
        }
        from repro.core.driver import resolve_logical

        self.last_tree = resolve_logical(plan, registry)
        return ExecutionResult(
            rows=final_outcome.data.all_rows(),
            metrics=metrics,
            plan_description=self.last_tree.describe(),
            phases=phases,
            trace=tracer.finish(),
        )
