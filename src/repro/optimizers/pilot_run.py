"""Pilot-run baseline [Karanasos et al., SIGMOD 2014].

Initial statistics come from *pilot runs*: select-project queries over each
base dataset that include its local predicates and stop "after k tuples have
been output" (the paper simulates this with a LIMIT clause). From those
sample statistics an initial plan is formed; execution then proceeds through
re-optimization points that adjust the remaining plan with online feedback.

Two deliberate weaknesses carried over from the paper's analysis:

- **Prefix sampling.** The pilot scans rows in storage order until ``k``
  outputs, so distinct counts are linearly scaled up from the sample. For a
  key column that is harmless, but for duplicated join keys (fact-to-fact
  conditions like ticket_number) the scaled estimate badly overshoots the
  true distinct count, deflating the formula-(1) join estimate and promoting
  the fact-to-fact join too early — the Q50 failure mode.
- **Overhead.** Pilot jobs are charged against the clock; on queries where
  the final plan matches the dynamic one (Q8) pilot-run is "slightly slower"
  for exactly this reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.toolkit import alias_stats_key
from repro.core.driver import DynamicOptimizer
from repro.engine.metrics import JobMetrics
from repro.lang.ast import EvaluationContext, Query
from repro.stats.catalog import DatasetStatistics, StatisticsCatalog
from repro.stats.collector import FieldStatistics, StatisticsCollector


@dataclass
class ScaledFieldStatistics(FieldStatistics):
    """Sample field statistics whose distinct count is linearly scaled."""

    scale: float = 1.0

    @property
    def distinct_count(self) -> float:
        raw = super().distinct_count
        return max(1.0, raw * self.scale)

    @classmethod
    def from_sample(cls, sample: FieldStatistics, scale: float) -> ScaledFieldStatistics:
        scaled = cls(sample.field_name, scale=scale)
        scaled.quantiles = sample.quantiles
        scaled.distinct = sample.distinct
        scaled.null_count = sample.null_count
        return scaled


class PilotRunOptimizer(DynamicOptimizer):
    """Sample-seeded incremental optimization."""

    name = "pilot_run"

    def __init__(
        self,
        inl_enabled: bool = False,
        sample_limit: int = 100,
        policy=None,
    ) -> None:
        # Pilot runs *estimate* predicate selectivities from the sample; the
        # main execution evaluates local predicates inline (no push-down
        # materialization — that is the dynamic approach's addition).
        super().__init__(
            inl_enabled=inl_enabled, pushdown_enabled=False, policy=policy
        )
        self.sample_limit = sample_limit

    def prepare_statistics(
        self,
        query: Query,
        session,
        metrics: JobMetrics,
        phases: list[str],
        tracer=None,
    ) -> StatisticsCatalog:
        from repro.engine.scheduler.request import drive_stages

        stages = self.prepare_stages(query, session, metrics, phases, tracer)
        return drive_stages(stages, session.executor)

    def prepare_stages(
        self,
        query: Query,
        session,
        metrics: JobMetrics,
        phases: list[str],
        tracer=None,
    ):
        """Per-table pilot sampling as virtual-cost stages.

        The rows are gathered here (the sample drives the statistics), but
        the charge is submitted as a pre-computed cost delta so a scheduler
        can account the pilot jobs on the shared cluster clock.
        """
        from repro.engine.scheduler.request import JobRequest

        working = session.statistics.copy()
        context = EvaluationContext(query.parameters, session.udfs)
        for table in query.tables:
            entry, scanned = self._pilot_entry(query, table.alias, session, context)
            working.register(entry)
            phase_name = f"pilot:{table.alias}"
            yield JobRequest(
                phase=phase_name,
                cumulative=metrics,
                virtual_cost=self._pilot_cost(
                    session, table, scanned, len(entry.fields)
                ),
                tracer=tracer,
                kind="pilot",
            )
            phases.append(phase_name)
        return working

    # -- pilot execution ----------------------------------------------------------

    def _pilot_entry(
        self, query: Query, alias: str, session, context: EvaluationContext
    ) -> tuple[DatasetStatistics, int]:
        """Run one pilot: prefix-scan until ``sample_limit`` qualifying rows."""
        table = query.table(alias)
        dataset = session.datasets.get(table.dataset)
        predicates = query.predicates_for(alias)
        prefix = f"{alias}."

        collector = StatisticsCollector(list(dataset.schema.field_names))
        scanned = 0
        outputs = 0
        for row in dataset.rows():
            scanned += 1
            if predicates:
                qualified = {prefix + key: value for key, value in row.items()}
                if not all(p.evaluate(qualified, context) for p in predicates):
                    continue
            outputs += 1
            collector.observe_row(row)
            if outputs >= self.sample_limit:
                break

        total = dataset.row_count
        selectivity = outputs / scanned if scanned else 0.0
        estimated_rows = max(0.0, total * selectivity)
        scale = total / scanned if scanned else 1.0
        fields = {
            name: ScaledFieldStatistics.from_sample(stats, scale)
            for name, stats in collector.fields.items()
        }
        entry = DatasetStatistics(
            name=alias_stats_key(alias),
            row_count=estimated_rows,
            row_width=dataset.schema.row_width,
            fields=fields,
            predicates_applied=True,
            scale=dataset.scale,
        )
        return entry, scanned

    def _pilot_cost(
        self, session, table, scanned: int, field_count: int
    ) -> JobMetrics:
        """One pilot job's charge as a metrics delta (a virtual-cost job)."""
        cost = session.executor.cost
        dataset = session.datasets.get(table.dataset)
        modeled_scanned = scanned * dataset.scale
        delta = JobMetrics()
        delta.startup = cost.job_startup()
        delta.scan = cost.scan(modeled_scanned, dataset.schema.row_width)
        delta.compute = cost.predicate_eval(modeled_scanned)
        delta.stats = cost.statistics(
            min(scanned, self.sample_limit) * dataset.scale, field_count
        )
        delta.jobs = 1
        return delta
