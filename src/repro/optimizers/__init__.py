"""Optimization strategies: the dynamic approach and its nine comparators.

Imports are lazy (PEP 562) because the dynamic optimizer lives in
``repro.core`` and subclasses/uses pieces from this package — eager imports
in both directions would cycle.
"""

from __future__ import annotations

from importlib import import_module

from repro.common.errors import OptimizationError
from repro.optimizers.base import Optimizer, execute_tree, single_job_stages

#: name -> (module, class) for every registered strategy
OPTIMIZERS = {
    "dynamic": ("repro.core.driver", "DynamicOptimizer"),
    "cost_based": ("repro.optimizers.static_cost", "CostBasedOptimizer"),
    "from_order": ("repro.optimizers.from_order", "FromOrderOptimizer"),
    "best_order": ("repro.optimizers.best_order", "BestOrderOptimizer"),
    "worst_order": ("repro.optimizers.worst_order", "WorstOrderOptimizer"),
    "pilot_run": ("repro.optimizers.pilot_run", "PilotRunOptimizer"),
    "ingres": ("repro.optimizers.ingres", "IngresLikeOptimizer"),
    "greedy_static": ("repro.optimizers.greedy_static", "GreedyStaticOptimizer"),
    "sketch_online": ("repro.optimizers.sketch_online", "SketchOnlineOptimizer"),
    "predicate_transfer": ("repro.optimizers.transfer", "PredicateTransferOptimizer"),
}

_LAZY_EXPORTS = {
    "DynamicOptimizer": ("repro.core.driver", "DynamicOptimizer"),
    "CostBasedOptimizer": ("repro.optimizers.static_cost", "CostBasedOptimizer"),
    "FromOrderOptimizer": ("repro.optimizers.from_order", "FromOrderOptimizer"),
    "BestOrderOptimizer": ("repro.optimizers.best_order", "BestOrderOptimizer"),
    "WorstOrderOptimizer": ("repro.optimizers.worst_order", "WorstOrderOptimizer"),
    "PilotRunOptimizer": ("repro.optimizers.pilot_run", "PilotRunOptimizer"),
    "IngresLikeOptimizer": ("repro.optimizers.ingres", "IngresLikeOptimizer"),
    "GreedyStaticOptimizer": ("repro.optimizers.greedy_static", "GreedyStaticOptimizer"),
    "SketchOnlineOptimizer": ("repro.optimizers.sketch_online", "SketchOnlineOptimizer"),
    "PredicateTransferOptimizer": ("repro.optimizers.transfer", "PredicateTransferOptimizer"),
    "PlannerToolkit": ("repro.algebra.toolkit", "PlannerToolkit"),
    "alias_stats_key": ("repro.algebra.toolkit", "alias_stats_key"),
    "best_bushy_plan": ("repro.optimizers.enumeration", "best_bushy_plan"),
    "from_order_plan": ("repro.optimizers.from_order", "from_order_plan"),
}


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names in registry (paper-presentation) order.

    The single source every sweep enumerates from — benches that need a
    stable display order use this tuple directly; benches that sweep
    exhaustively sort it.
    """
    return tuple(OPTIMIZERS)


def optimizer_class(name: str):
    """Resolve a registered optimizer name to its class."""
    try:
        module_name, class_name = OPTIMIZERS[name]
    except KeyError:
        raise OptimizationError(
            f"unknown optimizer {name!r}; choose from {sorted(OPTIMIZERS)}"
        ) from None
    return getattr(import_module(module_name), class_name)


def make_optimizer(name: str, **options) -> Optimizer:
    """Instantiate a registered optimizer by name."""
    return optimizer_class(name)(**options)


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "OPTIMIZERS",
    "Optimizer",
    "available_strategies",
    "execute_tree",
    "make_optimizer",
    "optimizer_class",
    "single_job_stages",
    *sorted(_LAZY_EXPORTS),
]
