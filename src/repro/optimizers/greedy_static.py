"""Greedy static optimizer: the dynamic policy without the feedback.

Plans with exactly the dynamic approach's greedy rule — repeatedly merge the
pair with the smallest estimated join result — but from ingestion-time
statistics only, in one shot, executed as a single pipelined job. It
completes the ablation spectrum:

    cost_based  : exhaustive search, static estimates
    greedy_static: greedy search, static estimates      <- this module
    dynamic     : greedy search, *measured* feedback

Comparing greedy_static against dynamic isolates the value of runtime
feedback; comparing it against cost_based isolates search quality.
"""

from __future__ import annotations

from repro.core.driver import greedy_full_plan
from repro.lang.ast import Query
from repro.optimizers.base import Optimizer, single_job_stages


class GreedyStaticOptimizer(Optimizer):
    """One-shot greedy planning from ingestion statistics."""

    name = "greedy_static"

    def __init__(self, inl_enabled: bool = False) -> None:
        self.inl_enabled = inl_enabled
        self.last_tree = None

    def stages(self, query: Query, session, namespace: str = ""):
        plan = greedy_full_plan(
            query, session, session.statistics.copy(), self.inl_enabled
        )
        self.last_tree = plan
        return (yield from single_job_stages(plan, query, session, label="greedy-static"))
