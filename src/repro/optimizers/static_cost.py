"""Static cost-based optimization baseline.

Statistics are collected on the base datasets during ingestion and the
complete execution plan is formed up front (Section 7.2: "we collected
statistics on the base datasets during the ingestion phase and we formed the
complete execution plan at the beginning"). Complex predicates fall back to
the Selinger default selectivity factors, multiple predicates multiply under
the independence assumption, and join estimates propagate through formula (1)
with inherited distinct counts — all of which the dynamic approach's runtime
feedback sidesteps.
"""

from __future__ import annotations

from repro.algebra.toolkit import PlannerToolkit
from repro.lang.ast import Query
from repro.optimizers.base import Optimizer, single_job_stages
from repro.optimizers.enumeration import best_bushy_plan


class CostBasedOptimizer(Optimizer):
    """System-R style exhaustive static optimization, one pipelined job."""

    name = "cost_based"

    def __init__(self, inl_enabled: bool = False, movement_aware: bool = False) -> None:
        self.inl_enabled = inl_enabled
        #: ablation switch: cost plans with the engine-mirroring model
        #: instead of the paper's cardinality cost.
        self.movement_aware = movement_aware
        self.last_tree = None

    def stages(self, query: Query, session, namespace: str = ""):
        toolkit = PlannerToolkit(
            query,
            session,
            session.statistics.copy(),
            self.inl_enabled,
            # Classic Selinger: composite join conjuncts multiply under the
            # independence assumption (see PlanEstimator.composite_rule).
            composite_rule="product",
        )
        plan = best_bushy_plan(toolkit, movement_aware=self.movement_aware)
        self.last_tree = plan
        return (yield from single_job_stages(plan, query, session, label="cost-based"))
