"""Stock-AsterixDB baseline: join order follows the FROM clause.

Section 3: "the join order in AsterixDB currently depends on the order of
the datasets in the FROM clause of the query (i.e., datasets are picked in
the order they appear in it)"; hash join is the default "unless there are
query hints that make the optimizer pick one of the other two algorithms".

This strategy underlies both user-order baselines: best-order feeds it the
dynamic plan's order + broadcast hints; worst-order feeds it the most
expensive right-deep order with no hints.
"""

from __future__ import annotations

from repro.algebra.plan import PlanNode
from repro.algebra.toolkit import PlannerToolkit
from repro.common.errors import OptimizationError
from repro.lang.ast import Query
from repro.optimizers.base import Optimizer, single_job_stages


def from_order_plan(
    toolkit: PlannerToolkit, honor_hints: bool = True, force_hash: bool = False
) -> PlanNode:
    """Fold the FROM clause into a linear join tree.

    Tables join in FROM order; a table with no join condition against the
    accumulated tree is deferred until one connects (cross products are
    rejected, as in the real system without special handling).
    """
    pending = list(toolkit.query.aliases)
    if not pending:
        raise OptimizationError("query has no FROM entries")
    current: PlanNode = toolkit.leaf(pending.pop(0))
    guard = 0
    while pending:
        guard += 1
        if guard > len(toolkit.query.aliases) ** 2 + 10:
            raise OptimizationError("join graph is disconnected (cross product)")
        alias = pending.pop(0)
        conditions = toolkit.conditions_across(
            current.aliases, frozenset((alias,))
        )
        if not conditions:
            pending.append(alias)
            continue
        current = toolkit.make_join(
            current,
            toolkit.leaf(alias),
            conditions,
            honor_hints_only=honor_hints and not force_hash,
            force_hash=force_hash,
            build_side="left",
        )
    return current


class FromOrderOptimizer(Optimizer):
    """Execute the query exactly as written: FROM order + hints only."""

    name = "from_order"

    def __init__(self, inl_enabled: bool = False, force_hash: bool = False) -> None:
        self.inl_enabled = inl_enabled
        self.force_hash = force_hash
        self.last_tree = None

    def stages(self, query: Query, session, namespace: str = ""):
        toolkit = PlannerToolkit(
            query, session, session.statistics.copy(), self.inl_enabled
        )
        plan = from_order_plan(toolkit, force_hash=self.force_hash)
        self.last_tree = plan
        return (yield from single_job_stages(plan, query, session, label="from-order"))
