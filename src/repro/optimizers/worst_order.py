"""Worst-order baseline.

Section 7.2: "for the worst-order plan, we enforce a right-deep tree plan
that schedules the joins in decreasing order of join result sizes (the size
of the join results was computed during our optimization)" — i.e. the order
is chosen with *accurate* knowledge (true post-predicate cardinalities) so it
is reliably the expensive end of the spectrum, and no broadcast hints are
given, so every join is a hash join.
"""

from __future__ import annotations

from repro.algebra.plan import PlanNode
from repro.algebra.toolkit import PlannerToolkit
from repro.common.errors import OptimizationError
from repro.lang.ast import EvaluationContext, Query
from repro.optimizers.base import Optimizer, single_job_stages
from repro.stats.estimation import resolve_field


def true_filtered_rows(query: Query, alias: str, session) -> float:
    """Exact post-predicate cardinality, obtained by evaluating the local
    predicates on the stored rows (the worst-order oracle's knowledge)."""
    table = query.table(alias)
    dataset = session.datasets.get(table.dataset)
    predicates = query.predicates_for(alias)
    if not predicates:
        return float(dataset.row_count)
    context = EvaluationContext(query.parameters, session.udfs)
    prefix = f"{alias}."
    count = 0
    for row in dataset.rows():
        qualified = {prefix + key: value for key, value in row.items()}
        if all(p.evaluate(qualified, context) for p in predicates):
            count += 1
    return float(count)


def worst_order_aliases(toolkit: PlannerToolkit, session) -> list[str]:
    """Greedy order maximizing each next join's (accurate) result estimate."""
    query = toolkit.query
    rows = {a: true_filtered_rows(query, a, session) for a in query.aliases}

    def distinct(alias: str, column: str) -> float:
        stats = toolkit.table_statistics(alias)
        field = resolve_field(stats, column)
        if field is None or len(field.distinct) == 0:
            return max(1.0, rows[alias])
        return max(1.0, min(field.distinct_count, max(1.0, rows[alias])))

    def scale_of(alias: str) -> float:
        return toolkit.table_statistics(alias).scale

    def pair_result(
        a_rows: float, a_aliases: frozenset, a_scale: float, b: str
    ) -> float | None:
        conditions = toolkit.conditions_across(a_aliases, frozenset((b,)))
        if not conditions:
            return None
        result = a_rows * rows[b]
        for condition in conditions:
            left, right = toolkit.resolver.join_sides(condition)
            col_a, col_b = (
                (condition.left, condition.right)
                if right == b
                else (condition.right, condition.left)
            )
            provider_a = left if right == b else right
            result /= max(distinct(provider_a, col_a), distinct(b, col_b), 1.0)
        return result * max(a_scale, scale_of(b))

    # Seed: the pair with the largest join result.
    best_seed = None
    aliases = list(query.aliases)
    for i, a in enumerate(aliases):
        for b in aliases[i + 1 :]:
            estimate = pair_result(rows[a], frozenset((a,)), scale_of(a), b)
            if estimate is None:
                continue
            if best_seed is None or estimate > best_seed[0]:
                best_seed = (estimate, a, b)
    if best_seed is None:
        raise OptimizationError("query has no join conditions")
    _, a, b = best_seed
    order = [a, b]
    joined = frozenset(order)
    current_scale = max(scale_of(a), scale_of(b))
    current_rows = best_seed[0] / current_scale
    remaining = [x for x in aliases if x not in joined]
    while remaining:
        best_next = None
        for candidate in remaining:
            estimate = pair_result(current_rows, joined, current_scale, candidate)
            if estimate is None:
                continue
            if best_next is None or estimate > best_next[0]:
                best_next = (estimate, candidate)
        if best_next is None:
            raise OptimizationError("join graph is disconnected (cross product)")
        modeled, nxt = best_next
        current_scale = max(current_scale, scale_of(nxt))
        current_rows = modeled / current_scale
        order.append(nxt)
        joined |= {nxt}
        remaining.remove(nxt)
    return order


class WorstOrderOptimizer(Optimizer):
    """Right-deep, hash-only plan over the worst join order."""

    name = "worst_order"

    def __init__(self, inl_enabled: bool = False) -> None:
        # INL never triggers without hints (Section 7.2.2 excludes
        # worst-order from the INL experiments); the flag is accepted for
        # interface uniformity.
        self.inl_enabled = inl_enabled
        self.last_tree = None

    def stages(self, query: Query, session, namespace: str = ""):
        toolkit = PlannerToolkit(query, session, session.statistics.copy())
        order = worst_order_aliases(toolkit, session)
        current: PlanNode = toolkit.leaf(order[0])
        for alias in order[1:]:
            conditions = toolkit.conditions_across(
                current.aliases, frozenset((alias,))
            )
            # Right-deep compilation builds on the accumulated input — with
            # the worst order that is a never-pruned fact-sized intermediate,
            # so every join both reshuffles and spills it.
            current = toolkit.make_join(
                current,
                toolkit.leaf(alias),
                conditions,
                force_hash=True,
                build_side="left",
            )
        self.last_tree = current
        return (yield from single_job_stages(current, query, session, label="worst-order"))
