"""Reference query evaluation for correctness checking.

``evaluate_reference`` executes a query by brute force — qualify every row,
apply all local predicates, nested-loop all joins, then the group-by /
order-by / limit tail — with no optimizer, no partitioning and no cost model
involved. Every optimizer's output must match it row-for-row; the test suite
and downstream users use it as the ground truth oracle.
"""

from __future__ import annotations

from repro.common.errors import QueryError
from repro.lang.ast import EvaluationContext, Query
from repro.lang.binding import ColumnResolver


def _qualified_rows(session, query: Query, alias: str) -> list[dict]:
    table = query.table(alias)
    dataset = session.datasets.get(table.dataset)
    prefix = f"{alias}."
    if dataset.is_intermediate:
        return [dict(row) for row in dataset.rows()]
    return [{prefix + key: value for key, value in row.items()} for row in dataset.rows()]


def evaluate_reference(query: Query, session) -> list[dict]:
    """Brute-force evaluation of ``query`` against the session's datasets.

    Suitable for the scaled-down test universes only: the join is a
    filter-then-nested-loop over the cross product of FROM entries, pruned
    pairwise to keep small cases fast.
    """
    context = EvaluationContext(query.parameters, session.udfs)
    resolver = ColumnResolver(query, session.datasets.schema_lookup)

    per_alias: dict[str, list[dict]] = {}
    for alias in query.aliases:
        rows = _qualified_rows(session, query, alias)
        predicates = query.predicates_for(alias)
        if predicates:
            rows = [
                row
                for row in rows
                if all(p.evaluate(row, context) for p in predicates)
            ]
        per_alias[alias] = rows

    # Join greedily along the join graph (pairwise hash joins on exact
    # values) to avoid materializing the cross product.
    remaining = dict(per_alias)
    graph = resolver.join_graph()
    if not graph and len(remaining) > 1:
        raise QueryError("reference evaluator does not support cross products")

    merged_aliases: dict[str, frozenset] = {a: frozenset((a,)) for a in remaining}
    conditions = list(query.joins)
    while conditions:
        progressed = False
        for condition in list(conditions):
            left_alias = resolver.provider(condition.left)
            right_alias = resolver.provider(condition.right)
            left_key = next(k for k, v in merged_aliases.items() if left_alias in v)
            right_key = next(k for k, v in merged_aliases.items() if right_alias in v)
            if left_key == right_key:
                # Sides already merged: apply as a residual filter.
                remaining[left_key] = [
                    row
                    for row in remaining[left_key]
                    if row.get(condition.left) == row.get(condition.right)
                    and row.get(condition.left) is not None
                ]
                conditions.remove(condition)
                progressed = True
                continue
            index: dict = {}
            for row in remaining[left_key]:
                index.setdefault(row.get(condition.left), []).append(row)
            joined = []
            for row in remaining[right_key]:
                for match in index.get(row.get(condition.right), ()):
                    if row.get(condition.right) is None:
                        continue
                    combined = dict(match)
                    combined.update(row)
                    joined.append(combined)
            new_key = left_key
            merged_aliases[new_key] = merged_aliases[left_key] | merged_aliases.pop(
                right_key
            )
            remaining[new_key] = joined
            del remaining[right_key]
            conditions.remove(condition)
            progressed = True
        if not progressed:
            raise QueryError("join graph is disconnected (cross product)")

    if len(remaining) != 1:
        raise QueryError("join graph is disconnected (cross product)")
    rows = next(iter(remaining.values()))

    if query.group_by:
        groups: dict[tuple, int] = {}
        for row in rows:
            key = tuple(row.get(k) for k in query.group_by)
            groups[key] = groups.get(key, 0) + 1
        rows = [
            {**dict(zip(query.group_by, key, strict=True)), "count": count}
            for key, count in groups.items()
        ]
    else:
        rows = [{name: row.get(name) for name in query.select} for row in rows]

    if query.order_by:
        rows.sort(key=lambda row: tuple(_key(row.get(k)) for k in query.order_by))
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def _key(value: object) -> tuple:
    if value is None:
        return (0, "")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))


def rows_equal_unordered(left: list[dict], right: list[dict]) -> bool:
    """Multiset comparison of result rows (optimizers may order differently)."""

    def canon(rows):
        # Sort via _key's total order: comparing raw values across rows
        # raises TypeError on mixed types (None next to an int, say), and a
        # NULLable column yields exactly that mix. Equality still compares
        # the actual values, so 1 and "1" remain distinct rows.
        return sorted(
            (tuple(sorted(row.items(), key=lambda kv: kv[0])) for row in rows),
            key=lambda items: tuple((name,) + _key(value) for name, value in items),
        )

    return canon(left) == canon(right)
