"""Typed planner specification: the public optimizer-selection API.

:class:`PlannerSpec` replaces the stringly-typed
``Session.execute(query, optimizer="dynamic", **options)`` surface: a frozen
dataclass naming a registered strategy plus validated options (including a
:class:`~repro.core.policy.ReplanPolicy`). Construction validates eagerly —
an unknown strategy or an option the strategy's constructor does not accept
raises :class:`~repro.common.errors.OptimizationError` at spec-build time,
not when the query runs. All four :class:`~repro.session.Session` entry
points (``execute``/``submit``/``explain``/``explain_analyze``) resolve their
arguments through :func:`resolve_planner`, so they validate identically. A
bare strategy-name string is still accepted positionally; the old
``optimizer=``/loose-keyword form (deprecated since the spec landed) was
removed and now fails fast with the equivalent spec spelled out in the
error.

    from repro import PlannerSpec, ReplanPolicy, Session

    spec = PlannerSpec.of("dynamic", policy=ReplanPolicy.default())
    result = Session().execute(query, spec)
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.common.errors import OptimizationError
from repro.core.policy import ReplanPolicy


@dataclass(frozen=True)
class PlannerSpec:
    """A validated (strategy, options) pair selecting an optimizer.

    ``options`` is stored as a sorted tuple of ``(name, value)`` pairs so
    specs stay hashable and order-insensitive; build them with :meth:`of`.
    """

    strategy: str = "dynamic"
    options: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        from repro.optimizers import optimizer_class  # late import: avoids a cycle

        cls = optimizer_class(self.strategy)  # raises on unknown strategies
        allowed = {
            name
            for name in inspect.signature(cls.__init__).parameters
            if name != "self"
        }
        unknown = sorted(key for key, _ in self.options if key not in allowed)
        if unknown:
            raise OptimizationError(
                f"optimizer {self.strategy!r} does not accept option(s) "
                f"{unknown}; accepted: {sorted(allowed)}"
            )
        seen: set[str] = set()
        for key, value in self.options:
            if key in seen:
                raise OptimizationError(f"duplicate option {key!r}")
            seen.add(key)
            if key == "policy" and value is not None:
                if not isinstance(value, ReplanPolicy):
                    raise OptimizationError(
                        "the 'policy' option must be a ReplanPolicy "
                        f"(got {type(value).__name__})"
                    )

    @classmethod
    def of(cls, strategy: str = "dynamic", **options) -> PlannerSpec:
        """Build a spec from keyword options (the usual constructor)."""
        return cls(strategy, tuple(sorted(options.items())))

    def with_options(self, **options) -> PlannerSpec:
        """A copy with ``options`` merged over the existing ones."""
        merged = dict(self.options)
        merged.update(options)
        return PlannerSpec(self.strategy, tuple(sorted(merged.items())))

    def as_dict(self) -> dict:
        """Plain-dict view (strategy + options), e.g. for logging."""
        return {"strategy": self.strategy, "options": dict(self.options)}

    @property
    def policy(self) -> ReplanPolicy | None:
        """The attached re-planning policy, if any."""
        value = dict(self.options).get("policy")
        return value if isinstance(value, ReplanPolicy) else None

    def make(self):
        """Instantiate the configured optimizer strategy."""
        from repro.optimizers import make_optimizer

        return make_optimizer(self.strategy, **dict(self.options))


def resolve_planner(
    planner=None,
    optimizer: str | None = None,
    options: dict | None = None,
    entry: str = "execute",
) -> PlannerSpec:
    """Normalize any Session entry-point arguments into a :class:`PlannerSpec`.

    ``planner`` may be a spec (the usual API), a strategy name string
    (positional shorthand for an option-less spec), or ``None`` (the default
    spec). The removed legacy ``optimizer=`` keyword and loose ``**options``
    fail fast with :class:`~repro.common.errors.OptimizationError` spelling
    out the equivalent :meth:`PlannerSpec.of` call.
    """
    options = dict(options or {})
    if isinstance(planner, PlannerSpec):
        if optimizer is not None or options:
            raise OptimizationError(
                f"Session.{entry}: pass options inside the PlannerSpec, "
                "not alongside it"
            )
        return planner
    if optimizer is not None or options:
        name = optimizer if optimizer is not None else planner
        rendered = ", ".join(
            [repr(name if isinstance(name, str) else "dynamic")]
            + [f"{key}=..." for key in sorted(options)]
        )
        raise OptimizationError(
            f"Session.{entry}: the legacy optimizer=/keyword-option form was "
            f"removed; pass a PlannerSpec instead, e.g. "
            f"PlannerSpec.of({rendered})"
        )
    if planner is None:
        return PlannerSpec()
    if not isinstance(planner, str):
        raise OptimizationError(
            f"Session.{entry}: planner must be a PlannerSpec or a "
            f"strategy name (got {type(planner).__name__})"
        )
    return PlannerSpec.of(planner)
