"""Algebricks-like layer: plans, estimation, rewrite rules, job generation."""

from repro.algebra.estimation import NodeEstimate, PlanEstimator
from repro.algebra.jobgen import (
    build_final_job,
    build_pushdown_job,
    build_sink_job,
    compile_plan,
)
from repro.algebra.plan import JoinNode, LeafNode, PlanNode, is_bushy, is_right_deep

__all__ = [
    "JoinNode",
    "LeafNode",
    "NodeEstimate",
    "PlanEstimator",
    "PlanNode",
    "build_final_job",
    "build_pushdown_job",
    "build_sink_job",
    "compile_plan",
    "is_bushy",
    "is_right_deep",
]
