"""Join-tree plans: the artifact every optimizer produces.

A plan is a binary tree whose leaves are FROM-clause entries (base datasets
or materialized intermediates, with their local predicates) and whose inner
nodes are joins annotated with key columns, algorithm, and build/probe
orientation. ``describe()`` renders the appendix notation: ``⋈`` hash,
``⋈b`` broadcast, ``⋈i`` indexed nested loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.engine.operators.joins import JoinAlgorithm
from repro.lang.ast import Predicate


@dataclass(frozen=True)
class PlanNode:
    """Base class for plan-tree nodes."""

    @property
    def aliases(self) -> frozenset:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def join_nodes(self) -> list["JoinNode"]:
        return []

    def leaves(self) -> list["LeafNode"]:
        return []


@dataclass(frozen=True)
class LeafNode(PlanNode):
    """One FROM-clause entry with its local predicates."""

    alias: str
    dataset: str
    predicates: tuple[Predicate, ...] = ()
    is_intermediate: bool = False

    @property
    def aliases(self) -> frozenset:
        return frozenset((self.alias,))

    def describe(self) -> str:
        if self.predicates:
            return f"σ({self.alias})"
        return self.alias

    def leaves(self) -> list["LeafNode"]:
        return [self]


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """A join with resolved orientation: ``build`` is the (smaller) side the
    algorithm builds from, ``probe`` the side it streams."""

    build: PlanNode
    probe: PlanNode
    build_keys: tuple[str, ...]
    probe_keys: tuple[str, ...]
    algorithm: JoinAlgorithm = JoinAlgorithm.HASH
    estimated_rows: float = field(default=0.0, compare=False)
    #: Modeled byte size of the build side at the moment the algorithm was
    #: chosen (``PlannerToolkit.make_join``). The plan verifier replays the
    #: broadcast-budget decision from this record: the statistics behind it
    #: (measured intermediates, pilot samples) may no longer exist by the
    #: time the plan is verified or executed. ``-1`` = not recorded.
    decided_build_bytes: float = field(default=-1.0, compare=False)

    @property
    def aliases(self) -> frozenset:
        return self.build.aliases | self.probe.aliases

    def describe(self) -> str:
        marker = self.algorithm.plan_marker
        return f"({self.build.describe()} ⋈{marker} {self.probe.describe()})"

    def join_nodes(self) -> list["JoinNode"]:
        return self.build.join_nodes() + self.probe.join_nodes() + [self]

    def leaves(self) -> list[LeafNode]:
        return self.build.leaves() + self.probe.leaves()

    def with_algorithm(self, algorithm: JoinAlgorithm) -> JoinNode:
        return replace(self, algorithm=algorithm)


def is_right_deep(node: PlanNode) -> bool:
    """True when every join's build side is a leaf (no bushy subtrees)."""
    if isinstance(node, LeafNode):
        return True
    assert isinstance(node, JoinNode)
    return isinstance(node.build, LeafNode) and is_right_deep(node.probe)


def is_bushy(node: PlanNode) -> bool:
    """True when some join has joins on both sides."""
    if isinstance(node, LeafNode):
        return False
    assert isinstance(node, JoinNode)
    both = isinstance(node.build, JoinNode) and isinstance(node.probe, JoinNode)
    return both or is_bushy(node.build) or is_bushy(node.probe)
