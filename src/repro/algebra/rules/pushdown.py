"""PushDownPredicateRule: carve out single-variable predicate queries.

Section 5.1: datasets with multiple local predicates or at least one complex
predicate are "wrapped around single variable queries" (the INGRES
decomposition); the SELECT clause keeps only "attributes that participate in
the remaining query (i.e in the projection list, in join predicates, or in
any other clause of the main query)". This module builds those subqueries and
decides which FROM entries qualify.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Predicate, Query, TableRef


@dataclass(frozen=True)
class PushdownCandidate:
    """One FROM entry whose predicates should be pre-executed."""

    table: TableRef
    predicates: tuple[Predicate, ...]
    keep_columns: tuple[str, ...]


def needs_pushdown(
    predicates: tuple[Predicate, ...], min_predicates: int = 2
) -> bool:
    """Algorithm 1 lines 6-9: enough simple predicates, or any complex one.

    The paper's rule is ``min_predicates=2`` ("more than one predicate, or
    any complex one"). Feedback policies may lower it to 1 — pre-executing
    *every* predicated table — when the session's misestimate history shows
    chronic estimation error: exact post-predicate cardinalities are the
    cheapest estimate repair available.
    """
    if len(predicates) >= max(1, min_predicates):
        return True
    return any(p.is_complex for p in predicates)


def surviving_columns(query: Query, alias_columns: set[str]) -> tuple[str, ...]:
    """Columns of one FROM entry still referenced by the rest of the query."""
    referenced: list[str] = []
    seen = set()

    def keep(column: str) -> None:
        if column in alias_columns and column not in seen:
            seen.add(column)
            referenced.append(column)

    for column in query.select:
        keep(column)
    for condition in query.joins:
        keep(condition.left)
        keep(condition.right)
    for column in query.group_by:
        keep(column)
    for column in query.order_by:
        keep(column)
    return tuple(referenced)


def pushdown_candidates(
    query: Query,
    columns_of_alias: dict[str, set[str]],
    min_predicates: int = 2,
) -> list[PushdownCandidate]:
    """All FROM entries qualifying for predicate pre-execution.

    ``columns_of_alias`` maps each alias to the qualified columns it
    provides (from the column resolver).
    """
    candidates = []
    for table in query.tables:
        predicates = query.predicates_for(table.alias)
        if not predicates or not needs_pushdown(predicates, min_predicates):
            continue
        keep = surviving_columns(query, columns_of_alias[table.alias])
        candidates.append(PushdownCandidate(table, predicates, keep))
    return candidates
