"""Optimizer rewrite rules (Figure 2 additions)."""

from repro.algebra.rules.join_algorithm import (
    INL_SIZE_FACTOR,
    AlgorithmChoice,
    JoinSide,
    choose_algorithm,
)
from repro.algebra.rules.pushdown import (
    PushdownCandidate,
    needs_pushdown,
    pushdown_candidates,
    surviving_columns,
)

__all__ = [
    "INL_SIZE_FACTOR",
    "AlgorithmChoice",
    "JoinSide",
    "PushdownCandidate",
    "choose_algorithm",
    "needs_pushdown",
    "pushdown_candidates",
    "surviving_columns",
]
