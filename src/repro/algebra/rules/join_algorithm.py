"""JoinAlgorithmRule: pick hash / broadcast / indexed nested loop + orientation.

Reproduces Section 6.1.2:

- hash join is the default;
- broadcast when one side's (estimated or measured) byte size fits the
  per-node join memory budget — the big side then never crosses the network;
- indexed nested loop when, additionally, the probe side is a *base* dataset
  with a secondary index on the join field and the broadcast side is
  filtered ("during the index lookup of a large dataset there will be no
  need for all the pages to be accessed"). An unfiltered broadcast side
  means too many index lookups: "scanning the whole dataset once is
  preferred" (the Q8 supplier ⋈ nation case).

The same rule serves every optimizer; they differ only in the fidelity of
the :class:`JoinSide` numbers they feed it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.config import ClusterConfig
from repro.engine.operators.joins import JoinAlgorithm

#: The INL build side must satisfy the same memory budget as a broadcast
#: build ("knowing that the cardinality of one of the datasets is small
#: enough to be broadcast also opens opportunities for performing the
#: indexed nested loop join", Section 6.1.2) — this is why Q8's filtered
#: part table, too large to broadcast, never triggers INL.
INL_SIZE_FACTOR = 1.0


@dataclass(frozen=True)
class JoinSide:
    """What the rule needs to know about one join input."""

    rows: float
    byte_size: float
    #: True when this side is a stored base dataset scan (indexes intact).
    is_base: bool = False
    dataset: str | None = None
    alias: str | None = None
    #: Plain field names carrying secondary indexes (INL probe candidates).
    indexed_fields: frozenset = frozenset()
    #: True when local predicates restrict this side (INL build requirement).
    filtered: bool = False
    #: True when the side has no local predicates pending (INL inner must be
    #: probed as-stored; pending filters would need a residual pass).
    predicate_free: bool = True
    #: User-supplied broadcast hint (AsterixDB query hint).
    broadcast_hint: bool = False


@dataclass(frozen=True)
class AlgorithmChoice:
    algorithm: JoinAlgorithm
    build_is_left: bool


def choose_algorithm(
    left: JoinSide,
    right: JoinSide,
    left_fields: tuple[str, ...],
    right_fields: tuple[str, ...],
    cluster: ClusterConfig,
    inl_enabled: bool = False,
    honor_hints_only: bool = False,
) -> AlgorithmChoice:
    """Pick the algorithm and which side builds.

    ``left_fields`` / ``right_fields`` are the *plain* join field names of
    each side (for the index check). With ``honor_hints_only`` the rule acts
    like stock AsterixDB: hash unless a side carries a broadcast hint.
    """
    threshold = cluster.broadcast_threshold_bytes

    if honor_hints_only:
        if left.broadcast_hint or right.broadcast_hint:
            build_is_left = left.broadcast_hint
            build, probe = (left, right) if build_is_left else (right, left)
            probe_fields = right_fields if build_is_left else left_fields
            if _inl_applicable(build, probe, probe_fields, threshold, inl_enabled):
                return AlgorithmChoice(JoinAlgorithm.INDEX_NESTED_LOOP, build_is_left)
            return AlgorithmChoice(JoinAlgorithm.BROADCAST, build_is_left)
        return AlgorithmChoice(JoinAlgorithm.HASH, left.byte_size <= right.byte_size)

    build_is_left = left.byte_size <= right.byte_size
    build, probe = (left, right) if build_is_left else (right, left)
    probe_fields = right_fields if build_is_left else left_fields

    if _inl_applicable(build, probe, probe_fields, threshold, inl_enabled):
        return AlgorithmChoice(JoinAlgorithm.INDEX_NESTED_LOOP, build_is_left)
    if build.byte_size <= threshold:
        return AlgorithmChoice(JoinAlgorithm.BROADCAST, build_is_left)
    return AlgorithmChoice(JoinAlgorithm.HASH, build_is_left)


def _inl_applicable(
    build: JoinSide,
    probe: JoinSide,
    probe_fields: tuple[str, ...],
    threshold: float,
    inl_enabled: bool,
) -> bool:
    if not inl_enabled:
        return False
    if not probe.is_base or not probe.predicate_free:
        return False
    if not probe_fields or probe_fields[0] not in probe.indexed_fields:
        return False
    if not build.filtered:
        # Unfiltered broadcast side: every inner page would be touched anyway.
        return False
    return build.byte_size <= threshold * INL_SIZE_FACTOR
