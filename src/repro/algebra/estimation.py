"""Plan-level estimation: cardinalities, widths and costs of join trees.

This is the machinery the *static* optimizers run on: leaf cardinalities from
ingestion-time statistics (with the independence assumption and default
factors for complex predicates — the very weaknesses the paper exploits), join
cardinalities from formula (1) with distinct counts inherited from base
datasets, and an analytic cost built from the same cost-model formulas the
engine charges.

The dynamic optimizer uses the same join-cardinality formula but feeds it
*measured* statistics of materialized inputs, so its one-join-ahead estimates
are far more accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.plan import JoinNode, LeafNode, PlanNode
from repro.cluster.config import ClusterConfig
from repro.cluster.cost import CostModel
from repro.common.errors import PlanError
from repro.engine.operators.joins import JoinAlgorithm
from repro.stats.catalog import StatisticsCatalog
from repro.stats.estimation import filtered_cardinality, resolve_field


@dataclass(frozen=True)
class NodeEstimate:
    """Estimated physical properties of a plan node's output.

    ``rows`` is in stored (simulated) units; ``scale`` converts to the
    modeled full-scale dataset (DESIGN.md §2). Size-based decisions —
    broadcast eligibility, cost formulas — use the modeled quantities.
    """

    rows: float
    row_width: int
    scale: float = 1.0

    @property
    def modeled_rows(self) -> float:
        return self.rows * self.scale

    @property
    def byte_size(self) -> float:
        """Modeled full-scale byte size."""
        return self.modeled_rows * self.row_width


class PlanEstimator:
    """Estimates cardinalities and costs over plan trees.

    ``alias_datasets`` maps each FROM alias to the statistics-catalog entry
    to use for it — the level of indirection that lets the dynamic approach
    swap a base dataset for its post-predicate materialization.
    """

    def __init__(
        self,
        statistics: StatisticsCatalog,
        alias_datasets: dict[str, str],
        cluster: ClusterConfig,
        cost: CostModel,
        composite_rule: str = "max",
    ) -> None:
        if composite_rule not in ("max", "product"):
            raise PlanError(f"unknown composite rule {composite_rule!r}")
        self.statistics = statistics
        self.alias_datasets = alias_datasets
        self.cluster = cluster
        self.cost = cost
        #: How multi-conjunct join estimates combine: "max" divides by the
        #: most selective single conjunct (the runtime planner's conservative
        #: reading of formula (1)); "product" multiplies every conjunct's
        #: factor under independence — the classic Selinger behavior the
        #: static baseline inherits, which collapses correlated composite
        #: keys (TPC-DS ticket/item/customer) toward zero and makes
        #: fact-to-fact joins look free.
        self.composite_rule = composite_rule

    # -- cardinalities ------------------------------------------------------

    def leaf_estimate(self, leaf: LeafNode) -> NodeEstimate:
        stats = self.statistics.get(self.alias_datasets[leaf.alias])
        return NodeEstimate(
            filtered_cardinality(stats, leaf.predicates), stats.row_width, stats.scale
        )

    def estimate(self, node: PlanNode) -> NodeEstimate:
        if isinstance(node, LeafNode):
            return self.leaf_estimate(node)
        if not isinstance(node, JoinNode):
            raise PlanError(f"cannot estimate node type {type(node).__name__}")
        build = self.estimate(node.build)
        probe = self.estimate(node.probe)
        divisor = 1.0
        for build_key, probe_key in zip(
            node.build_keys, node.probe_keys, strict=False
        ):
            u_build = self.column_distinct(node.build, build_key, build.rows)
            u_probe = self.column_distinct(node.probe, probe_key, probe.rows)
            if self.composite_rule == "product":
                divisor *= max(u_build, u_probe, 1.0)
            else:
                divisor = max(divisor, u_build, u_probe)
        rows = build.rows * probe.rows / divisor
        # Static plans pipeline full concatenated rows; this width inflation
        # (vs the narrow projected intermediates the dynamic approach
        # materializes) is one reason static misses broadcast opportunities.
        width = build.row_width + probe.row_width
        return NodeEstimate(max(0.0, rows), width, max(build.scale, probe.scale))

    def column_distinct(self, node: PlanNode, column: str, node_rows: float) -> float:
        """U(column) at this node: inherited from the providing leaf, capped
        by the node's row count (the standard System-R propagation)."""
        for leaf in node.leaves():
            stats = self.statistics.get(self.alias_datasets[leaf.alias])
            field = resolve_field(stats, column)
            if field is not None and len(field.distinct) > 0:
                return max(1.0, min(field.distinct_count, node_rows))
        return max(1.0, node_rows)

    # -- costs --------------------------------------------------------------

    def cout_cost(self, node: PlanNode) -> float:
        """Classic cardinality cost: the sum of estimated intermediate sizes.

        This is the metric the paper's static cost-based baseline minimizes
        ("to assign a cost for each plan ... depends heavily on statistical
        information"): every join contributes its estimated (modeled) output
        volume. It carries no awareness of partitioning or data movement —
        that fidelity gap, plus the default selectivity factors, is what the
        runtime dynamic approach exploits.
        """
        if isinstance(node, LeafNode):
            return 0.0
        if not isinstance(node, JoinNode):
            raise PlanError(f"cannot cost node type {type(node).__name__}")
        out = self.estimate(node)
        return (
            self.cout_cost(node.build)
            + self.cout_cost(node.probe)
            + out.modeled_rows * out.row_width
        )

    def plan_cost(self, node: PlanNode) -> float:
        """Movement-aware execution-cost estimate of a full plan (mirrors the
        engine's cost model; used by ablations, not the paper baseline)."""
        cost, _ = self._cost(node)
        return cost

    def _cost(self, node: PlanNode) -> tuple[float, NodeEstimate]:
        if isinstance(node, LeafNode):
            estimate = self.leaf_estimate(node)
            stats = self.statistics.get(self.alias_datasets[leaf_alias(node)])
            modeled = stats.row_count * stats.scale
            seconds = self.cost.scan(modeled, stats.row_width)
            if node.predicates:
                seconds += self.cost.predicate_eval(modeled, len(node.predicates))
            return seconds, estimate
        if not isinstance(node, JoinNode):
            raise PlanError(f"cannot cost node type {type(node).__name__}")
        build_cost, build = self._cost(node.build)
        probe_cost, probe = self._cost(node.probe)
        out = self.estimate(node)
        seconds = build_cost + probe_cost
        if node.algorithm is JoinAlgorithm.HASH:
            seconds += self.cost.hash_exchange(build.modeled_rows, build.row_width)
            seconds += self.cost.hash_exchange(probe.modeled_rows, probe.row_width)
            seconds += self.cost.hash_build(build.modeled_rows)
            seconds += self.cost.probe(probe.modeled_rows + out.modeled_rows)
            seconds += self.cost.spill(build.byte_size, probe.byte_size)
        elif node.algorithm is JoinAlgorithm.BROADCAST:
            seconds += self.cost.broadcast_exchange(
                build.modeled_rows, build.row_width
            )
            seconds += self.cost.broadcast_build(build.modeled_rows)
            seconds += self.cost.probe(probe.modeled_rows + out.modeled_rows)
        else:  # INL: no scan of the inner side — subtract the probe scan cost.
            seconds -= probe_cost
            seconds += self.cost.broadcast_exchange(
                build.modeled_rows, build.row_width
            )
            seconds += self.cost.index_lookups(build.modeled_rows)
            seconds += self.cost.probe(out.modeled_rows)
        return seconds, out


def leaf_alias(node: LeafNode) -> str:
    return node.alias
