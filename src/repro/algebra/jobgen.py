"""Job construction: compile plan trees into runnable Hyracks jobs.

Covers the three settings of Section 6.3: (1) jobs whose output must be
materialized for future use (Sink), (2) jobs consuming previously
materialized outputs (Reader), and (3) the final job returning results to the
user (DistributeResult). Also builds the Phase-1 predicate push-down jobs of
Figure 4 (Scan → Select → Sink).
"""

from __future__ import annotations

from repro.algebra.plan import JoinNode, LeafNode, PlanNode
from repro.common.errors import PlanError
from repro.engine.job import Job
from repro.engine.operators.joins import (
    BroadcastJoinOp,
    HashJoinOp,
    IndexNestedLoopJoinOp,
    JoinAlgorithm,
)
from repro.engine.operators.base import PhysicalOperator
from repro.engine.operators.filters import SemiJoinFilterOp
from repro.engine.operators.scan import ReaderOp, ScanOp
from repro.engine.operators.select import ProjectOp, SelectOp
from repro.engine.operators.sink import DistributeResultOp, SinkOp
from repro.engine.operators.tail import GroupByOp, LimitOp, OrderByOp
from repro.lang.ast import Predicate, Query, TableRef, split_column
from repro.storage.catalog import DatasetCatalog


def leaf_provides(leaf: LeafNode, datasets: DatasetCatalog) -> set[str]:
    """Qualified columns one leaf contributes to the dataflow."""
    dataset = datasets.get(leaf.dataset)
    if dataset.is_intermediate:
        return set(dataset.schema.field_names)
    return {f"{leaf.alias}.{name}" for name in dataset.schema.field_names}


def node_provides(node: PlanNode, datasets: DatasetCatalog) -> set[str]:
    if isinstance(node, LeafNode):
        return leaf_provides(node, datasets)
    if isinstance(node, JoinNode):
        return node_provides(node.build, datasets) | node_provides(
            node.probe, datasets
        )
    raise PlanError(f"cannot analyze node type {type(node).__name__}")


def compile_leaf(
    leaf: LeafNode, datasets: DatasetCatalog, required: set[str] | None = None
):
    """One leaf: Scan/Reader plus its pushed-down Select.

    ``required`` (qualified columns the consumer needs from this leaf) turns
    into the source's ``live`` set — required plus the predicate columns the
    Select itself reads — so the vectorized scan materializes only referenced
    columns. ``None`` keeps every column alive; results are identical either
    way.
    """
    dataset = datasets.get(leaf.dataset)
    live = None
    if required is not None:
        keep = required & leaf_provides(leaf, datasets)
        if keep:
            live = tuple(
                sorted(keep | {p.column for p in leaf.predicates})
            )
    if dataset.is_intermediate:
        source = ReaderOp(leaf.dataset, live=live)
    else:
        source = ScanOp(leaf.dataset, leaf.alias, live=live)
    if leaf.predicates:
        return SelectOp(source, leaf.predicates)
    return source


def compile_plan(
    plan: PlanNode, datasets: DatasetCatalog, required: set[str] | None = None
):
    """Compile a join tree into an operator tree (no tail, no sink).

    ``required`` is the set of qualified columns the consumer above still
    needs; when given, projections are pushed down so scans and exchanges
    carry only live columns (AsterixDB's rule-based optimizer does the same
    — without this, pipelined single-job plans would pay for dead columns
    that the dynamic approach's narrow materialized intermediates never
    carry).
    """
    if isinstance(plan, LeafNode):
        op = compile_leaf(plan, datasets, required)
        if required is not None:
            keep = sorted(required & leaf_provides(plan, datasets))
            if keep:
                op = ProjectOp(op, tuple(keep))
        return op
    if not isinstance(plan, JoinNode):
        raise PlanError(f"cannot compile node type {type(plan).__name__}")

    child_required = None
    if required is not None:
        child_required = set(required) | set(plan.build_keys) | set(plan.probe_keys)

    build_op = compile_plan(plan.build, datasets, child_required)
    if plan.algorithm is JoinAlgorithm.INDEX_NESTED_LOOP:
        if not isinstance(plan.probe, LeafNode):
            raise PlanError("INL probe side must be a base-dataset leaf")
        if plan.probe.predicates:
            raise PlanError("INL probe side must not carry local predicates")
        inner_fields = tuple(split_column(c)[1] for c in plan.probe_keys)
        op = IndexNestedLoopJoinOp(
            build_op,
            plan.probe.dataset,
            plan.probe.alias,
            plan.build_keys,
            inner_fields,
        )
    else:
        probe_op = compile_plan(plan.probe, datasets, child_required)
        op_type = (
            BroadcastJoinOp
            if plan.algorithm is JoinAlgorithm.BROADCAST
            else HashJoinOp
        )
        op = op_type(build_op, probe_op, plan.build_keys, plan.probe_keys)
    # Carry the planner's cardinality estimate onto the physical operator so
    # the tracer can pair it with the measured output (estimate accuracy).
    op.estimated_rows = plan.estimated_rows
    if required is not None:
        keep = sorted(required & node_provides(plan, datasets))
        if keep:
            op = ProjectOp(op, tuple(keep))
    return op


def query_required_columns(query: Query) -> set[str]:
    """Columns the query tail consumes from the join output."""
    required = set(query.select) | set(query.group_by) | set(query.order_by)
    return required


def build_final_job(plan: PlanNode, query: Query, datasets: DatasetCatalog) -> Job:
    """The last job: joins, the query tail, and DistributeResult."""
    op = compile_plan(plan, datasets, query_required_columns(query))
    if query.group_by:
        op = GroupByOp(op, query.group_by)
        if query.order_by:
            op = OrderByOp(op, query.order_by)
    else:
        if query.order_by:
            op = OrderByOp(op, query.order_by)
        op = ProjectOp(op, query.select)
    if query.limit is not None:
        op = LimitOp(op, query.limit)
    return Job(
        DistributeResultOp(op),
        label=f"final {plan.describe()}",
        phase="final",
        plan=plan,
    )


def build_sink_job(
    plan: PlanNode,
    name: str,
    keep_columns: tuple[str, ...],
    stats_columns: tuple[str, ...],
    datasets: DatasetCatalog,
    phase: str = "join",
) -> Job:
    """An intermediate job whose output is materialized for later stages."""
    op = compile_plan(plan, datasets, set(keep_columns) | set(stats_columns))
    sink = SinkOp(op, name, keep_columns, stats_columns)
    return Job(sink, label=f"{name} = {plan.describe()}", phase=phase, plan=plan)


def build_transfer_job(
    source_name: str,
    alias: str,
    is_intermediate: bool,
    predicates: tuple[Predicate, ...],
    filters: tuple,
    keep_columns: tuple[str, ...],
    name: str,
    stats_columns: tuple[str, ...],
    phase: str,
) -> Job:
    """One predicate-transfer reduce job:
    Scan/Reader → Select → SemiJoinFilter → Sink.

    ``filters`` is the ordered ``(qualified probe column, BloomFilter)``
    tuple the partners transferred; ``source_name`` is the base dataset (with
    ``alias`` and local ``predicates``) on the first reduction of a FROM
    entry, or the previous transfer intermediate (already filtered, so no
    predicates re-run) on later reductions.
    """
    live = tuple(
        sorted(
            set(keep_columns)
            | set(stats_columns)
            | {p.column for p in predicates}
            | {column for column, _ in filters}
        )
    )
    source: PhysicalOperator
    if is_intermediate:
        source = ReaderOp(source_name, live=live)
    else:
        source = ScanOp(source_name, alias, live=live)
    filtered: PhysicalOperator = source
    if predicates:
        filtered = SelectOp(filtered, predicates)
    filtered = SemiJoinFilterOp(filtered, filters)
    sink = SinkOp(filtered, name, keep_columns, stats_columns)
    return Job(sink, label=f"{name} = transfer({alias})", phase=phase)


def build_pushdown_job(
    table: TableRef,
    predicates: tuple[Predicate, ...],
    keep_columns: tuple[str, ...],
    name: str,
    stats_columns: tuple[str, ...],
) -> Job:
    """Phase 1 of Figure 4: Scan -> Select -> Sink for one filtered dataset."""
    live = tuple(
        sorted(
            set(keep_columns)
            | set(stats_columns)
            | {p.column for p in predicates}
        )
    )
    scan = ScanOp(table.dataset, table.alias, live=live)
    select = SelectOp(scan, predicates)
    sink = SinkOp(select, name, keep_columns, stats_columns)
    return Job(sink, label=f"{name} = σ({table.alias})", phase="pushdown")
