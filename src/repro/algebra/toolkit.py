"""Shared planning toolkit used by every optimizer.

Wraps a query + session + statistics source and provides the operations all
strategies need: the join graph, per-leaf cardinality estimates, formula-(1)
pair estimates, join-condition orientation, and construction of
algorithm-annotated :class:`JoinNode` objects via the JoinAlgorithmRule.

Optimizers differ in *which statistics catalog* feeds the toolkit (ingestion
sketches, pilot-run samples, or measured re-optimization statistics) and in
how they rank candidate joins — not in this machinery.
"""

from __future__ import annotations

from repro.algebra.estimation import PlanEstimator
from repro.algebra.plan import JoinNode, LeafNode, PlanNode
from repro.algebra.rules.join_algorithm import JoinSide, choose_algorithm
from repro.common.errors import OptimizationError
from repro.lang.ast import JoinCondition, Query, split_column
from repro.lang.binding import ColumnResolver
from repro.stats.catalog import StatisticsCatalog
from repro.stats.estimation import filtered_cardinality, join_cardinality


def alias_stats_key(alias: str) -> str:
    """Catalog key for per-alias statistics overrides."""
    return f"__alias_stats_{alias}"


class PlannerToolkit:
    """Planning utilities bound to one query + statistics snapshot."""

    def __init__(
        self,
        query: Query,
        session,
        statistics: StatisticsCatalog | None = None,
        inl_enabled: bool = False,
        composite_rule: str = "max",
        broadcast_budget_bytes: float | None = None,
    ) -> None:
        self.query = query
        self.session = session
        self.statistics = statistics if statistics is not None else session.statistics
        self.inl_enabled = inl_enabled
        self.resolver = ColumnResolver(query, session.datasets.schema_lookup)
        # Planning-side view of the cluster: a feedback policy may hand the
        # planner a tighter broadcast/join-memory budget than the cluster's
        # configured one (execution-side charging is unchanged).
        cluster = session.cluster
        cost = session.executor.cost
        if broadcast_budget_bytes is not None:
            from dataclasses import replace

            from repro.cluster.cost import CostModel

            cluster = replace(
                cluster, broadcast_budget_bytes=broadcast_budget_bytes
            )
            cost = CostModel(
                cluster, cost.params, join_budget_bytes=broadcast_budget_bytes
            )
        self.cluster = cluster
        self.estimator = PlanEstimator(
            self.statistics,
            {t.alias: self._stats_name(t.alias, t.dataset) for t in query.tables},
            cluster,
            cost,
            composite_rule=composite_rule,
        )

    def _stats_name(self, alias: str, dataset: str) -> str:
        """Statistics entry for one FROM entry.

        Per-alias overrides (``__alias_stats_<alias>``, registered e.g. by
        pilot runs) shadow the dataset-level entry — the indirection that
        lets one dataset appear under several aliases with different
        sample-estimated cardinalities.
        """
        override = alias_stats_key(alias)
        if self.statistics.has(override):
            return override
        return dataset

    # -- leaves ---------------------------------------------------------------

    def leaf(self, alias: str) -> LeafNode:
        table = self.query.table(alias)
        dataset = self.session.datasets.get(table.dataset)
        return LeafNode(
            alias=alias,
            dataset=table.dataset,
            predicates=self.query.predicates_for(alias),
            is_intermediate=dataset.is_intermediate,
        )

    def table_statistics(self, alias: str):
        table = self.query.table(alias)
        return self.statistics.get(self._stats_name(alias, table.dataset))

    def leaf_rows(self, alias: str) -> float:
        """S(x): qualified rows of one FROM entry under current statistics."""
        return filtered_cardinality(
            self.table_statistics(alias), self.query.predicates_for(alias)
        )

    # -- join graph -------------------------------------------------------------

    def join_graph(self) -> dict[frozenset, list[JoinCondition]]:
        return self.resolver.join_graph()

    def estimate_pair(self, a: str, b: str, conditions) -> float:
        """Formula (1) for joining FROM entries ``a`` and ``b``."""
        stats_a = self.table_statistics(a)
        stats_b = self.table_statistics(b)
        oriented = [self._orient_condition(c, a) for c in conditions]
        sim_estimate = join_cardinality(
            stats_a,
            stats_b,
            oriented,
            left_rows=self.leaf_rows(a),
            right_rows=self.leaf_rows(b),
        )
        # Report in modeled full-scale rows so ranks compare consistently
        # across tables with different per-row scales.
        return sim_estimate * max(stats_a.scale, stats_b.scale)

    def input_cardinality(self, a: str, b: str) -> float:
        """INGRES-style rank: just the input sizes, no result estimation."""
        return (
            self.leaf_rows(a) * self.table_statistics(a).scale
            + self.leaf_rows(b) * self.table_statistics(b).scale
        )

    def _orient_condition(self, condition: JoinCondition, left_alias: str) -> JoinCondition:
        provider_left = self.resolver.provider(condition.left)
        if provider_left == left_alias:
            return condition
        return JoinCondition(condition.right, condition.left)

    def oriented_keys(
        self, conditions, build_aliases: frozenset
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Split each condition's columns into (build_keys, probe_keys)."""
        build_keys, probe_keys = [], []
        for condition in conditions:
            left_provider = self.resolver.provider(condition.left)
            if left_provider in build_aliases:
                build_keys.append(condition.left)
                probe_keys.append(condition.right)
            else:
                build_keys.append(condition.right)
                probe_keys.append(condition.left)
        return tuple(build_keys), tuple(probe_keys)

    # -- algorithm annotation -----------------------------------------------------

    def side_for(self, node: PlanNode, rows: float | None = None) -> JoinSide:
        """Describe one join input for the JoinAlgorithmRule."""
        estimate = self.estimator.estimate(node)
        if rows is None:
            rows = estimate.rows
        byte_size = rows * estimate.row_width * estimate.scale
        if isinstance(node, LeafNode):
            dataset = self.session.datasets.get(node.dataset)
            table = self.query.table(node.alias)
            return JoinSide(
                rows=rows,
                byte_size=byte_size,
                is_base=not dataset.is_intermediate,
                dataset=node.dataset,
                alias=node.alias,
                indexed_fields=frozenset(dataset.indexes),
                filtered=bool(node.predicates) or dataset.is_intermediate,
                predicate_free=not node.predicates,
                broadcast_hint=table.broadcast_hint,
            )
        return JoinSide(rows=rows, byte_size=byte_size, filtered=True)

    def make_join(
        self,
        left: PlanNode,
        right: PlanNode,
        conditions,
        honor_hints_only: bool = False,
        force_hash: bool = False,
        build_side: str = "auto",
        estimated_rows: float | None = None,
    ) -> JoinNode:
        """Orient + annotate a join between two subtrees.

        ``build_side``: "auto" lets the algorithm rule pick the smaller
        input; "left" pins the left subtree as the build (stock AsterixDB's
        right-deep compilation builds on the accumulated input — Figure 4),
        unless a broadcast hint on the right side overrides it.
        """
        if not conditions:
            raise OptimizationError(
                f"no join condition between {sorted(left.aliases)} and "
                f"{sorted(right.aliases)} (cross products unsupported)"
            )
        left_keys, right_keys = self.oriented_keys(conditions, left.aliases)
        left_side = self.side_for(left)
        right_side = self.side_for(right)
        left_fields = tuple(split_column(c)[1] for c in left_keys)
        right_fields = tuple(split_column(c)[1] for c in right_keys)

        if force_hash:
            build_is_left = (
                True
                if build_side == "left"
                else left_side.byte_size <= right_side.byte_size
            )
            algorithm = None
        else:
            choice = choose_algorithm(
                left_side,
                right_side,
                left_fields,
                right_fields,
                self.cluster,
                inl_enabled=self.inl_enabled,
                honor_hints_only=honor_hints_only,
            )
            build_is_left = choice.build_is_left
            algorithm = choice.algorithm
            from repro.engine.operators.joins import JoinAlgorithm as _JA

            if (
                build_side == "left"
                and algorithm is _JA.HASH
                and not (honor_hints_only and right_side.broadcast_hint)
            ):
                # Right-deep compilation: the accumulated (left) input feeds
                # the build step unless a hint redirected the join.
                build_is_left = True

        if build_is_left:
            build, probe = left, right
            build_keys, probe_keys = left_keys, right_keys
        else:
            build, probe = right, left
            build_keys, probe_keys = right_keys, left_keys

        from repro.engine.operators.joins import JoinAlgorithm

        if estimated_rows is None:
            estimate = self.estimator.estimate(
                JoinNode(build, probe, build_keys, probe_keys)
            )
            estimated_rows = estimate.modeled_rows
        return JoinNode(
            build=build,
            probe=probe,
            build_keys=build_keys,
            probe_keys=probe_keys,
            algorithm=algorithm or JoinAlgorithm.HASH,
            estimated_rows=estimated_rows,
            decided_build_bytes=(
                left_side if build_is_left else right_side
            ).byte_size,
        )

    def conditions_across(
        self, left_aliases: frozenset, right_aliases: frozenset
    ) -> list[JoinCondition]:
        """Join conditions connecting two disjoint alias sets."""
        across = []
        for condition in self.query.joins:
            a, b = self.resolver.join_sides(condition)
            if (a in left_aliases and b in right_aliases) or (
                a in right_aliases and b in left_aliases
            ):
                across.append(condition)
        return across
