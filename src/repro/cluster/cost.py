"""Analytic cost model: translates operator work into simulated seconds.

The paper measures wall-clock execution time on a 10-node cluster; we charge
each unit of work (tuples scanned, bytes shuffled, bytes materialized, index
lookups, sketch updates, job launches) against calibrated constants and report
*simulated seconds*. Partitioned work runs in parallel, so wall time for a
partitioned stage is its total work divided by the partition count; broadcast
reception and per-partition builds are charged at full size because every
node performs them.

All constants are per *simulated* tuple/byte: the workload generators produce
one self-consistent scaled-down universe (see DESIGN.md section 2), and the
constants are calibrated so the simulated clock lands in the same ranges as
the paper's figures (tens of seconds at SF 100, thousands at SF 1000).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.config import ClusterConfig
from repro.common.errors import ReproError


@dataclass(frozen=True)
class CostParameters:
    """Calibrated unit costs, in simulated seconds per unit of work."""

    #: CPU time to pass one (modeled) tuple through one operator.
    cpu_tuple: float = 1.0e-6
    #: Extra CPU to evaluate one predicate / UDF on a tuple.
    cpu_predicate: float = 2.5e-7
    #: Disk read/write time per byte (per partition, sequential; ~60MB/s
    #: effective per core including deserialization).
    disk_byte: float = 1.7e-8
    #: Network transfer time per byte (per partition link; ~10MB/s effective
    #: including serialization, the shared-nothing bottleneck).
    network_byte: float = 1.0e-7
    #: One secondary-index lookup against the in-memory component of an LSM
    #: index (~10us) — INL wins when lookups ≪ inner-scan tuples.
    index_lookup: float = 1.0e-5
    #: Sketch-update time per (tuple, tracked attribute) pair.
    stats_value: float = 2.0e-6
    #: Fixed cost of compiling + launching one Hyracks job, including the
    #: blocking re-optimization round trip through the planner.
    job_startup: float = 1.0


class CostModel:
    """Accumulates simulated time for engine activity on a given cluster.

    ``partitions`` (when given) narrows the *compute* view of the cluster to
    a partition slice: the space-shared scheduler assigns each concurrent
    cluster job a disjoint subset of partitions, so partitioned work divides
    by the slice width rather than the full cluster, and the per-job join
    memory budget shrinks proportionally (spill pressure rises as slices
    shrink). Data placement is unaffected — storage stays partitioned over
    the whole cluster; only the degree of parallelism charged to this job's
    clock changes.
    """

    def __init__(
        self,
        cluster: ClusterConfig,
        params: CostParameters | None = None,
        join_budget_bytes: float | None = None,
        partitions: int | None = None,
    ) -> None:
        self.cluster = cluster
        self.params = params or CostParameters()
        #: optional override of the cluster-derived join build budget —
        #: feedback policies shrink it when observed spills show the
        #: cluster-derived default was too optimistic.
        self.join_budget_bytes = join_budget_bytes
        if partitions is not None and partitions < 1:
            raise ReproError("a partition slice needs at least one partition")
        self._partitions = partitions

    @property
    def partitions(self) -> int:
        """Degree of parallelism this view charges against (slice or full)."""
        if self._partitions is not None:
            return self._partitions
        return self.cluster.partitions

    def with_partitions(self, partitions: int) -> CostModel:
        """A view of this model restricted to a ``partitions``-wide slice.

        Returns ``self`` unchanged for a full-width slice so serial
        scheduling keeps the exact same object (and float arithmetic) as
        before space sharing existed.
        """
        if partitions >= self.cluster.partitions and self._partitions is None:
            return self
        return CostModel(
            self.cluster,
            self.params,
            join_budget_bytes=self.join_budget_bytes,
            partitions=min(max(1, partitions), self.cluster.partitions),
        )

    # Each method returns the *wall-clock* seconds the activity contributes.

    def scan(self, rows: float, row_width: int) -> float:
        """Full partitioned scan of a stored dataset."""
        per_partition_rows = rows / self.partitions
        return per_partition_rows * (
            self.params.cpu_tuple + row_width * self.params.disk_byte
        )

    def predicate_eval(self, rows: float, predicate_count: int = 1) -> float:
        return (rows / self.partitions) * self.params.cpu_predicate * max(
            1, predicate_count
        )

    def hash_exchange(self, rows: float, row_width: int) -> float:
        """Re-partition rows by hash: every row crosses the network once,
        links operate in parallel."""
        per_partition_bytes = rows * row_width / self.partitions
        return per_partition_bytes * self.params.network_byte + (
            rows / self.partitions
        ) * self.params.cpu_tuple

    def broadcast_exchange(self, rows: float, row_width: int) -> float:
        """Replicate rows to every node: each node receives the full input,
        so wall time is the *full* byte volume over one link."""
        return rows * row_width * self.params.network_byte + rows * self.params.cpu_tuple

    def hash_build(self, rows: float) -> float:
        """Build side of a partitioned hash join (parallel across partitions)."""
        return (rows / self.partitions) * self.params.cpu_tuple

    @property
    def join_memory_bytes(self) -> float:
        """Cluster-wide in-memory budget for one hash join's build side.

        Each partition may hold as much build data as one broadcast build
        (the same budget the broadcast rule checks), so the partitioned
        build capacity is that budget times the partition count. An
        explicit ``join_budget_bytes`` (per-partition) takes precedence
        over the cluster-derived default.
        """
        if self.join_budget_bytes is not None:
            return self.join_budget_bytes * self.partitions
        return self.cluster.broadcast_threshold_bytes * self.partitions

    def spill(self, build_bytes: float, probe_bytes: float) -> float:
        """Grace-hash-join overflow cost (Section 3: "the rest (if any) in
        overflow partitions on disk").

        When the build side exceeds the in-memory budget, the overflowing
        fraction of *both* inputs is written to disk and read back once.
        This is what makes hash joins between two unpruned fact tables —
        the signature of the worst-order baseline — disproportionately
        expensive, exactly as in the paper's Figure 7.
        """
        capacity = self.join_memory_bytes
        if build_bytes <= capacity or build_bytes <= 0:
            return 0.0
        spilled_fraction = 1.0 - capacity / build_bytes
        spilled_bytes = (build_bytes + probe_bytes) * spilled_fraction
        return 2.0 * spilled_bytes / self.partitions * self.params.disk_byte

    def broadcast_build(self, rows: float) -> float:
        """Each partition builds a hash table over the *entire* broadcast
        input — in parallel, so wall time is one full build."""
        return rows * self.params.cpu_tuple

    def probe(self, rows: float) -> float:
        return (rows / self.partitions) * self.params.cpu_tuple

    def index_lookups(self, lookups: float) -> float:
        """INL probes; every partition performs lookups for all broadcast
        rows it received, in parallel across partitions."""
        return lookups * self.params.index_lookup

    def materialize(self, rows: float, row_width: int) -> float:
        """Sink: write intermediate data to per-partition temp storage."""
        per_partition_bytes = rows * row_width / self.partitions
        return per_partition_bytes * self.params.disk_byte + (
            rows / self.partitions
        ) * self.params.cpu_tuple

    def read_materialized(self, rows: float, row_width: int) -> float:
        """Reader: scan back a previously materialized intermediate."""
        return self.materialize(rows, row_width)

    def bloom_build(self, rows: float, filters: int = 1) -> float:
        """Insert ``rows`` keys into ``filters`` Bloom filters, partitioned.

        One filter insertion per (row, filter) pair at hash-table-build CPU
        cost — predicate transfer is charged like the hash work it is, never
        treated as free (the Jahangiri et al. robust-hybrid-hash analysis).
        """
        return (rows / self.partitions) * self.params.cpu_tuple * max(1, filters)

    def bloom_transfer(self, filter_bytes: float) -> float:
        """Ship Bloom filters to a probe job: broadcast-style, every node
        receives the full filter bytes over one link."""
        return filter_bytes * self.params.network_byte

    def bloom_probe(self, rows: float, filters: int = 1) -> float:
        """Probe ``filters`` membership filters per row, in parallel across
        partitions — one predicate-evaluation-weight test per (row, filter)."""
        return (rows / self.partitions) * self.params.cpu_predicate * max(1, filters)

    def statistics(self, rows: float, tracked_fields: int) -> float:
        """Online sketch maintenance, overlapped across partitions."""
        return (rows / self.partitions) * tracked_fields * self.params.stats_value

    def result_output(self, rows: float, row_width: int) -> float:
        """DistributeResult: funnel final rows back to the coordinator."""
        return rows * row_width * self.params.network_byte * 0.1

    def job_startup(self) -> float:
        return self.params.job_startup
