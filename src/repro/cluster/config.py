"""Simulated shared-nothing cluster topology.

Models the paper's experimental configuration: "a cluster of 10 AWS nodes,
each with a 4-core CPU, 16GB of RAM and 2TB SSD". A *partition* is one
core-bound data partition (AsterixDB runs one per core), so the default
cluster executes 40-way parallel jobs.

Only two numbers matter to the optimizer itself: the partition count (degree
of parallelism for the cost model) and the broadcast memory budget (how big a
build side may be and still be replicated to every node).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and memory parameters of the simulated cluster."""

    nodes: int = 10
    cores_per_node: int = 4
    memory_per_node_mb: float = 16 * 1024.0
    #: Fraction of a node's memory one join build may occupy before the
    #: optimizer refuses to broadcast it. AsterixDB budgets joins to a small
    #: slice of the JVM heap; 0.02 of 16GB ~ 320MB per build.
    broadcast_memory_fraction: float = 0.02
    #: Direct override of the broadcast build budget, in modeled bytes
    #: (row_count * scale * row_width). ``default_cluster`` pins this to
    #: 40MB — the build-side budget at which the paper's per-scale broadcast
    #: flips (item at SF 10/100 but not 1000, filtered part likewise,
    #: dimension tables always) all fall on the right side.
    broadcast_budget_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ReproError("cluster needs at least one node and one core")
        if self.memory_per_node_mb <= 0:
            raise ReproError("node memory must be positive")
        if not 0 < self.broadcast_memory_fraction <= 1:
            raise ReproError("broadcast_memory_fraction must be in (0, 1]")

    @property
    def partitions(self) -> int:
        """Total data partitions (degree of parallelism)."""
        return self.nodes * self.cores_per_node

    @property
    def broadcast_threshold_bytes(self) -> float:
        """Maximum build-side byte size eligible for a broadcast join."""
        if self.broadcast_budget_bytes is not None:
            return self.broadcast_budget_bytes
        return self.memory_per_node_mb * 1024 * 1024 * self.broadcast_memory_fraction


def default_cluster() -> ClusterConfig:
    """The paper's 10-node/4-core configuration with a 40MB join-build
    broadcast budget (see DESIGN.md §2)."""
    return ClusterConfig(broadcast_budget_bytes=40e6)
