"""Simulated shared-nothing cluster: topology and cost model."""

from repro.cluster.config import ClusterConfig, default_cluster
from repro.cluster.cost import CostModel, CostParameters

__all__ = ["ClusterConfig", "CostModel", "CostParameters", "default_cluster"]
