"""Result and intermediate caches with ingest-driven invalidation.

Two caches, both LRU-bounded and both validated against
:class:`~repro.storage.catalog.DatasetCatalog` versions:

- The **result cache** answers a repeated query (same text, same bound
  parameters, same planner spec) at admission time without creating its
  driver: the scheduler's ``on_admit`` hook returns a manufactured
  :class:`~repro.engine.metrics.ExecutionResult` carrying the cached rows
  and *zero* metrics — a hit consumes no simulated cluster time.
- The **intermediate cache** replays materialized pushdown filters across
  queries: a :class:`~repro.engine.scheduler.request.JobRequest` whose
  ``cache_token`` matches a previously stored materialization re-registers
  the stored partitions and statistics under the requesting query's own
  namespace at zero cost, skipping the scan entirely.

Invalidation is two-layered: every entry records the ``(dataset, version)``
pairs it was computed from and is revalidated on fetch, and the owning
service subscribes the cache to the dataset catalog so a re-ingest evicts
dependents eagerly. Rows handed out on a hit are the stored row dicts in
fresh list containers — row dicts are immutable by library convention, and
fresh containers keep one consumer's reordering from leaking into the next.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.metrics import ExecutionResult, JobMetrics
from repro.stats.catalog import DatasetStatistics
from repro.storage.ingest import register_intermediate


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for one service cache."""

    result_hits: int = 0
    result_misses: int = 0
    intermediate_hits: int = 0
    intermediate_misses: int = 0
    #: entries evicted because a dependency dataset was re-ingested (both
    #: eager subscription evictions and stale-on-fetch drops).
    invalidations: int = 0

    @property
    def result_hit_rate(self) -> float:
        lookups = self.result_hits + self.result_misses
        return self.result_hits / lookups if lookups else 0.0

    @property
    def intermediate_hit_rate(self) -> float:
        lookups = self.intermediate_hits + self.intermediate_misses
        return self.intermediate_hits / lookups if lookups else 0.0


@dataclass
class _CachedResult:
    """One stored query answer + the catalog versions it depends on."""

    rows: list[dict]
    plan_description: str
    deps: tuple[tuple[str, int], ...]

    def materialize(self) -> ExecutionResult:
        """A fresh result object per hit (the scheduler sets ``schedule``
        on it, so sharing one object across hits would clobber records)."""
        return ExecutionResult(
            rows=list(self.rows),
            metrics=JobMetrics(),
            plan_description=self.plan_description,
            phases=["cache-hit"],
        )


@dataclass
class _CachedIntermediate:
    """One stored pushdown materialization, namespace-free."""

    schema: object
    partitions: list[list[dict]]
    partition_key: str | None
    scale: float
    stats: DatasetStatistics
    modeled_rows: float
    deps: tuple[tuple[str, int], ...]


class _ReplayedData:
    """Stand-in for a replayed job's output data.

    The request runner only reads ``modeled_rows`` (estimate-accuracy
    recording); pushdown drivers consume the registered catalog entries,
    never the outcome payload, so a hit need not rebuild the operator data.
    """

    __slots__ = ("modeled_rows",)

    def __init__(self, modeled_rows: float) -> None:
        self.modeled_rows = modeled_rows


class ServiceCache:
    """LRU result + intermediate caches bound to one dataset catalog."""

    def __init__(
        self,
        datasets,
        result_entries: int = 128,
        intermediate_entries: int = 64,
    ) -> None:
        if result_entries < 1 or intermediate_entries < 1:
            raise ValueError("cache capacities must be >= 1")
        self.datasets = datasets
        self.result_entries = result_entries
        self.intermediate_entries = intermediate_entries
        self.stats = CacheStats()
        self._results: OrderedDict[object, _CachedResult] = OrderedDict()
        self._intermediates: OrderedDict[str, _CachedIntermediate] = OrderedDict()

    # -- dependency versioning ------------------------------------------------

    def _deps_for(self, names: tuple[str, ...]) -> tuple[tuple[str, int], ...]:
        return tuple((name, self.datasets.version(name)) for name in sorted(names))

    def _fresh(self, deps: tuple[tuple[str, int], ...]) -> bool:
        return all(self.datasets.version(name) == version for name, version in deps)

    def invalidate_dataset(self, name: str) -> None:
        """Evict every entry computed from ``name`` (catalog listener)."""
        doomed = [k for k, e in self._results.items() if self._depends(e, name)]
        for key in doomed:
            del self._results[key]
        doomed_tokens = [
            t for t, e in self._intermediates.items() if self._depends(e, name)
        ]
        for token in doomed_tokens:
            del self._intermediates[token]
        self.stats.invalidations += len(doomed) + len(doomed_tokens)

    @staticmethod
    def _depends(entry, name: str) -> bool:
        return any(dep_name == name for dep_name, _ in entry.deps)

    # -- result cache ---------------------------------------------------------

    def lookup_result(self, key) -> ExecutionResult | None:
        """The cached answer for ``key``, revalidated against the catalog."""
        entry = self._results.get(key)
        if entry is None:
            self.stats.result_misses += 1
            return None
        if not self._fresh(entry.deps):
            del self._results[key]
            self.stats.invalidations += 1
            self.stats.result_misses += 1
            return None
        self._results.move_to_end(key)
        self.stats.result_hits += 1
        return entry.materialize()

    def store_result(
        self, key, result: ExecutionResult, datasets: tuple[str, ...]
    ) -> None:
        self._results[key] = _CachedResult(
            rows=list(result.rows),
            plan_description=result.plan_description,
            deps=self._deps_for(datasets),
        )
        self._results.move_to_end(key)
        while len(self._results) > self.result_entries:
            self._results.popitem(last=False)

    # -- intermediate (pushdown) cache ----------------------------------------

    def fetch_intermediate(self, executor, request):
        """Replay a stored materialization for ``request``, if fresh.

        On a hit the stored partitions are re-registered as an intermediate
        dataset under the request's own sink name, its statistics land in the
        request's working catalog, and the returned ``(data, metrics)`` pair
        charges nothing. Returns ``None`` on miss/stale.
        """
        token = request.cache_token
        entry = self._intermediates.get(token)
        if entry is None:
            self.stats.intermediate_misses += 1
            return None
        if not self._fresh(entry.deps):
            del self._intermediates[token]
            self.stats.invalidations += 1
            self.stats.intermediate_misses += 1
            return None
        name = request.job.root.name
        register_intermediate(
            name=name,
            schema=entry.schema,
            partitions=[list(partition) for partition in entry.partitions],
            partition_key=entry.partition_key,
            datasets=executor.datasets,
            scale=entry.scale,
        )
        if request.statistics is not None:
            stats = entry.stats
            request.statistics.register(
                DatasetStatistics(
                    name=name,
                    row_count=stats.row_count,
                    row_width=stats.row_width,
                    fields=dict(stats.fields),
                    predicates_applied=stats.predicates_applied,
                    scale=stats.scale,
                )
            )
        self._intermediates.move_to_end(token)
        self.stats.intermediate_hits += 1
        return _ReplayedData(entry.modeled_rows), JobMetrics()

    def store_intermediate(self, executor, request) -> None:
        """Capture the materialization the request's sink just registered."""
        name = request.job.root.name
        dataset = executor.datasets.get(name)
        stats = None
        if request.statistics is not None and request.statistics.has(name):
            stats = request.statistics.get(name)
        if stats is None:
            return  # nothing to replay without statistics: skip caching
        base = request.batch_key
        deps = self._deps_for((base,)) if base is not None else ()
        self._intermediates[request.cache_token] = _CachedIntermediate(
            schema=dataset.schema,
            partitions=dataset.partitions,
            partition_key=dataset.partition_key,
            scale=dataset.scale,
            stats=DatasetStatistics(
                name=stats.name,
                row_count=stats.row_count,
                row_width=stats.row_width,
                fields=dict(stats.fields),
                predicates_applied=stats.predicates_applied,
                scale=stats.scale,
            ),
            modeled_rows=dataset.modeled_rows,
            deps=deps,
        )
        self._intermediates.move_to_end(request.cache_token)
        while len(self._intermediates) > self.intermediate_entries:
            self._intermediates.popitem(last=False)
