"""Multi-tenant query service layer (DESIGN.md §11).

Public surface:

- :class:`QueryService` / :class:`ServiceConfig` — the shared scheduler +
  catalogs + caches serving many tenant sessions.
- :class:`ServiceCache` / :class:`CacheStats` — result + intermediate
  caching with invalidation on dataset ingest.
- :class:`ServiceStore` / :class:`StoredFeedback` — persistent per-dataset
  feedback and ingestion-sketch store with JSON round-tripping.
"""

from repro.service.cache import CacheStats, ServiceCache
from repro.service.service import (
    QueryService,
    ServiceConfig,
    default_service_scheduler_config,
)
from repro.service.store import ServiceStore, StoredFeedback, ingest_token

__all__ = [
    "CacheStats",
    "QueryService",
    "ServiceCache",
    "ServiceConfig",
    "ServiceStore",
    "StoredFeedback",
    "default_service_scheduler_config",
    "ingest_token",
]
