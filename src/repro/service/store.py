"""Persistent per-dataset feedback and sketch store.

A :class:`~repro.session.Session`'s :class:`~repro.core.policy.FeedbackLog`
dies with the process, and its ingestion-time GK/HLL sketches are recollected
on every restart. The query service keys both by *dataset* instead:

- :class:`StoredFeedback` is a drop-in ``FeedbackLog`` that additionally
  routes every observation into a per-dataset-group sub-log (the sorted
  FROM-clause datasets of the observed query). Adaptive policies resolving
  thresholds for a query whose dataset group has enough history derive from
  that group's window — TPC-H misestimates stop inflating the trigger
  threshold of TPC-DS queries — and fall back to the combined window below
  ``min_history``.
- :class:`ServiceStore` bundles the feedback log with persisted ingestion
  sketches keyed by dataset name + a *content token*, plus JSON
  ``save``/``load`` round-tripping. Restoring sketches is only sound when
  the dataset's rows are byte-identical to the collection pass — which is
  exactly what the content token proves — so a restored service derives the
  same :class:`~repro.core.policy.RuntimeThresholds` and the same
  cardinality estimates as the process that saved it.
"""

from __future__ import annotations

import json
import os
import warnings

from repro.common.errors import StatisticsError
from repro.common.rng import stable_hash
from repro.common.types import Schema
from repro.core.policy import FeedbackLog, ReplanPolicy, RuntimeThresholds
from repro.stats.catalog import DatasetStatistics

#: bump when the on-disk layout changes; mismatched files are rejected.
STORE_FORMAT_VERSION = 1


def dataset_group_key(datasets: tuple[str, ...]) -> str:
    """Stable key for one dataset group (sorted names joined by ``+``)."""
    return "+".join(sorted(datasets))


def query_group_key(query) -> str:
    """The dataset-group key of a query's FROM clause."""
    tables = getattr(query, "tables", ())
    return dataset_group_key(tuple({table.dataset for table in tables}))


def ingest_token(schema: Schema, rows: list[dict], scale: float) -> str:
    """Content token of one ingestion: schema layout + every row + scale.

    Two ingestions with equal tokens produce byte-identical datasets and
    therefore byte-identical ingestion sketches, so the store may hand back
    persisted sketches instead of recollecting. The fold visits rows in
    ingestion order — order changes partition layouts, so it must (and does)
    change the token.
    """
    acc = stable_hash(
        (
            tuple(schema.field_names),
            schema.row_width,
            tuple(schema.primary_key),
            repr(scale),
        )
    )
    for row in rows:
        acc = stable_hash((acc, tuple(sorted((k, repr(v)) for k, v in row.items()))))
    return f"{acc:016x}"


class StoredFeedback(FeedbackLog):
    """Feedback history keyed by dataset group, drop-in for ``FeedbackLog``.

    The combined (superclass) window still sees every observation, so code
    that reads ``session.feedback`` aggregates keeps working; per-group
    sub-logs narrow adaptive derivation to the datasets the query touches.
    """

    def __init__(self, window: int = 64) -> None:
        super().__init__(window)
        #: dataset-group key -> that group's own history window.
        self.groups: dict[str, FeedbackLog] = {}

    def observe_result(self, result, datasets: tuple[str, ...] = ()) -> None:
        super().observe_result(result, datasets=datasets)
        if not datasets:
            return
        key = dataset_group_key(datasets)
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = FeedbackLog(self.window)
        group.observe_result(result, datasets=datasets)

    def derive(
        self, policy: ReplanPolicy, cluster=None, query=None
    ) -> RuntimeThresholds:
        """Thresholds from the query's dataset group when it has history.

        Falls back to the combined window when the query is unknown or its
        group has fewer than ``policy.min_history`` finite records — a cold
        group behaves exactly like a plain session-wide log.
        """
        if query is not None:
            group = self.groups.get(query_group_key(query))
            if group is not None and group.records >= policy.min_history:
                return group.derive(policy, cluster)
        return super().derive(policy, cluster)

    # -- persistence ----------------------------------------------------------

    def to_state(self) -> dict:
        state = super().to_state()
        state["groups"] = {
            key: log.to_state() for key, log in sorted(self.groups.items())
        }
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.groups = {
            key: FeedbackLog.from_state(group_state)
            for key, group_state in state.get("groups", {}).items()
        }


class ServiceStore:
    """Feedback + ingestion-sketch persistence for one query service."""

    def __init__(self, window: int = 64) -> None:
        self.feedback = StoredFeedback(window)
        #: dataset name -> {"token": content token, "stats": to_state() dict}.
        self._sketches: dict[str, dict] = {}

    # -- sketches -------------------------------------------------------------

    def sketches_for(self, name: str, token: str) -> DatasetStatistics | None:
        """Persisted ingestion statistics for ``name``, iff content matches.

        Each call materializes a fresh :class:`DatasetStatistics` (sketches
        included) from the stored state, so callers may mutate their copy —
        e.g. re-registering under a different name — without corrupting the
        store.
        """
        entry = self._sketches.get(name)
        if entry is None or entry["token"] != token:
            return None
        return DatasetStatistics.from_state(entry["stats"])

    def remember_sketches(
        self, name: str, token: str, stats: DatasetStatistics
    ) -> None:
        """Persist one ingestion's statistics under its content token."""
        self._sketches[name] = {"token": token, "stats": stats.to_state()}

    def sketched_datasets(self) -> list[str]:
        return sorted(self._sketches)

    # -- persistence ----------------------------------------------------------

    def to_state(self) -> dict:
        return {
            "version": STORE_FORMAT_VERSION,
            "feedback": self.feedback.to_state(),
            "sketches": {
                name: self._sketches[name] for name in sorted(self._sketches)
            },
        }

    def restore_state(self, state: dict) -> None:
        version = state.get("version")
        if version != STORE_FORMAT_VERSION:
            raise StatisticsError(
                f"unsupported service-store format {version!r} "
                f"(this build reads version {STORE_FORMAT_VERSION})"
            )
        self.feedback.restore_state(state["feedback"])
        self._sketches = dict(state["sketches"])

    def save(self, path: str) -> None:
        """Write the store as JSON (atomically: temp file + rename).

        A failure mid-write (serialization error, disk full, interrupt) must
        not leave a half-written ``.tmp`` orphan behind: the temp file is
        removed on any exit path where the rename did not happen.
        """
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(self.to_state(), handle, indent=1, sort_keys=True)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)

    def load(self, path: str) -> None:
        with open(path, encoding="utf-8") as handle:
            self.restore_state(json.load(handle))

    @classmethod
    def open(cls, path: str, window: int = 64) -> ServiceStore:
        """A store loaded from ``path`` when it exists, else a fresh one.

        An unreadable store (truncated or corrupt JSON from a crashed
        writer, a wrong-format file, an unsupported version) degrades to a
        fresh store with a warning: persisted feedback is an optimization,
        never a correctness input, so refusing to start over it would be
        strictly worse than starting cold. ``load`` may have partially
        mutated the store before raising, so the fallback is a new instance.
        """
        store = cls(window)
        if os.path.exists(path):
            try:
                store.load(path)
            except (OSError, ValueError, KeyError, TypeError, StatisticsError) as exc:
                warnings.warn(
                    f"service store {path!r} is unreadable ({exc}); "
                    "starting fresh",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return cls(window)
        return store
